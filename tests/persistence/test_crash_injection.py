"""Crash-recovery sweeps: kill every fault point, always load clean.

For each journaled operation (store creation, insert append, delete
append, compaction/base-rewrite) the sweep first counts the operation's
OS-primitive calls, then re-runs it once per call with an injected
fault at exactly that call.  After every simulated crash the store must
load to either the pre-operation or the post-operation state — never a
torn in-between — which is the whole durability claim of the v4 format.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro.core.journal import IndexJournal
from repro.core.maintenance import compact_index, delete_vector, insert_vector
from repro.core.errors import CiphertextFormatError
from repro.core.persistence import load_index

from tests.persistence.conftest import make_fitted_scheme, state_digest
from tests.persistence.faultfs import CountingOps, FaultyOps, InjectedFault

#: One monolithic graph configuration and one sharded flat one — the
#: two structurally different persistence layouts (v2 vs v3 base).
CONFIGS = [("hnsw", None), ("bruteforce", 2)]


def _prepared_store(tmp_path, kind, shards):
    """A journaled store with a few segments and one pending tombstone."""
    scheme, database = make_fitted_scheme(kind, shards, seed=7)
    store = tmp_path / "pristine"
    scheme.enable_journal(store)
    mutation_rng = np.random.default_rng(99)
    for _ in range(3):
        scheme.insert(mutation_rng.normal(size=scheme.owner.dim))
    scheme.delete(0)
    return scheme, store


def _operations(owner):
    """The journaled operations the sweep crashes, by name."""
    vector = np.linspace(-1.0, 1.0, owner.dim)
    return {
        "insert": lambda index, journal: insert_vector(
            owner, index, vector, journal=journal
        ),
        "delete": lambda index, journal: delete_vector(
            index, 1, journal=journal
        ),
        "compact": lambda index, journal: compact_index(
            index, rng=np.random.default_rng(5), journal=journal
        ),
    }


@pytest.mark.parametrize("kind,shards", CONFIGS)
@pytest.mark.parametrize("op_name", ["insert", "delete", "compact"])
@pytest.mark.parametrize("torn", [False, True])
def test_every_fault_point_recovers(tmp_path, kind, shards, op_name, torn):
    scheme, store = _prepared_store(tmp_path, kind, shards)
    operation = _operations(scheme.owner)[op_name]
    digest_before = state_digest(load_index(store))

    # Counting pass: learn how many primitive calls the operation makes.
    probe = tmp_path / "probe"
    shutil.copytree(store, probe)
    counter = CountingOps()
    operation(load_index(probe), IndexJournal.open(probe, counter))
    assert counter.calls > 0

    for fail_at in range(1, counter.calls + 1):
        work = tmp_path / f"crash-{fail_at}"
        shutil.copytree(store, work)
        index = load_index(work)
        journal = IndexJournal.open(work, FaultyOps(fail_at, torn=torn))
        with pytest.raises(InjectedFault):
            operation(index, journal)
        # The in-memory index was mutated before the crash; the store
        # must come back as either that state or the untouched one.
        recovered = load_index(work)
        assert state_digest(recovered) in {digest_before, state_digest(index)}, (
            f"torn state after fault at primitive call {fail_at}"
        )
        shutil.rmtree(work)


@pytest.mark.parametrize("kind,shards", CONFIGS)
def test_create_crash_leaves_store_absent_or_complete(tmp_path, kind, shards):
    scheme, _ = make_fitted_scheme(kind, shards, seed=3)
    index = scheme.server.index
    live = state_digest(index)

    counter = CountingOps()
    IndexJournal.create(tmp_path / "count", index, ops=counter)
    assert state_digest(load_index(tmp_path / "count")) == live

    for fail_at in range(1, counter.calls + 1):
        target = tmp_path / f"create-{fail_at}"
        with pytest.raises(InjectedFault):
            IndexJournal.create(target, index, ops=FaultyOps(fail_at))
        # Pre-crash state is "no store": loading must either fail with
        # the format error (no committed manifest yet) or hand back the
        # complete index — never something in between.
        try:
            recovered = load_index(target)
        except CiphertextFormatError:
            continue
        assert state_digest(recovered) == live
