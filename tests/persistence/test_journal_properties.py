"""Property tests: journal replay is bit-identical, compaction is safe.

Two harnesses over arbitrary mutation interleavings (insert / delete /
compact), all four backend kinds, monolithic and sharded:

1. **Replay faithfulness** — after any interleaving, loading the v4
   store (base + delta replay) produces the same persisted-state digest
   as the live index, and as a full npz save/load of it.  The HNSW
   level recorded per insert segment is what makes this exact.
2. **Compaction correctness** — compacting drops every pending
   tombstone into the retired set, never resurrects an id, and (for
   the exact brute-force backend, where candidate sets are stable)
   preserves query answers bit-identically.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.persistence import load_index, save_index

from tests.persistence.conftest import ALL_KINDS, make_fitted_scheme, state_digest

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: One mutation step: ("insert", seed) | ("delete", pick) | ("compact",).
mutation_steps = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 2**31 - 1)),
        st.tuples(st.just("delete"), st.integers(0, 2**31 - 1)),
        st.tuples(st.just("compact")),
    ),
    min_size=1,
    max_size=10,
)


def _apply_steps(scheme, steps, dim):
    """Run a mutation interleaving, keeping at least one vector live."""
    applied = []
    for step in steps:
        if step[0] == "insert":
            vec_rng = np.random.default_rng(step[1])
            scheme.insert(vec_rng.normal(size=dim))
            applied.append("insert")
        elif step[0] == "delete":
            index = scheme.server.index
            live = [i for i in range(index.sap_vectors.shape[0]) if index.is_live(i)]
            if len(live) <= 1:
                continue
            scheme.delete(live[step[1] % len(live)])
            applied.append("delete")
        else:
            scheme.compact()
            applied.append("compact")
    return applied


@given(steps=mutation_steps, kind=st.sampled_from(ALL_KINDS), sharded=st.booleans())
@_SETTINGS
def test_journal_replay_bit_identical(steps, kind, sharded):
    dim = 6
    scheme, _ = make_fitted_scheme(
        kind, shards=2 if sharded else None, seed=11, n=12, dim=dim
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = Path(tmp) / "store"
        scheme.enable_journal(store)
        _apply_steps(scheme, steps, dim)
        live = state_digest(scheme.server.index)
        # Base + delta replay reproduces the live persisted state...
        assert state_digest(load_index(store)) == live
        # ...and agrees with a full npz rewrite of the same index.
        npz = Path(tmp) / "full.npz"
        save_index(npz, scheme.server.index)
        assert state_digest(load_index(npz)) == live


@given(
    seed=st.integers(0, 2**31 - 1),
    kind=st.sampled_from(ALL_KINDS),
    sharded=st.booleans(),
    num_deletes=st.integers(1, 6),
)
@_SETTINGS
def test_compaction_drops_all_tombstones(seed, kind, sharded, num_deletes):
    scheme, _ = make_fitted_scheme(
        kind, shards=2 if sharded else None, seed=seed % 1000, n=14, dim=6
    )
    index = scheme.server.index
    pick_rng = np.random.default_rng(seed)
    victims = sorted(
        int(i) for i in pick_rng.choice(14, size=num_deletes, replace=False)
    )
    for victim in victims:
        scheme.delete(victim)
    report = scheme.compact()
    assert report.tombstones_dropped == num_deletes
    assert index.tombstones == frozenset()
    assert index.retired == frozenset(victims)
    assert len(index) == 14 - num_deletes
    for victim in victims:
        assert not index.is_live(victim)
    # The rebuilt filter structures hold exactly the live rows.
    if sharded:
        backend_rows = sum(len(shard) for shard in index.shards)
    else:
        backend_rows = index.backend.vectors.shape[0]
    assert backend_rows == 14 - num_deletes


@given(seed=st.integers(0, 2**31 - 1), sharded=st.booleans())
@_SETTINGS
def test_compaction_preserves_bruteforce_answers(seed, sharded):
    """Exact-scan answers must not change when tombstones are dropped.

    Scoped to the brute-force backend: graph rebuilds legitimately
    change candidate composition, but a linear scan's top-k over the
    same live set is a pure function of the data — any drift would mean
    the compaction mapped ids wrong.  Compared as *sets*: the refine
    engine emits ids in heap-extraction order, which tracks candidate
    arrival order for near-tied distances, and compaction changes
    arrival order by dropping tombstoned slots.  ``ratio_k`` keeps k'
    above k + #deleted so the pre-compaction candidate pool already
    covers every live answer.
    """
    n, dim, k = 24, 6, 4
    scheme, database = make_fitted_scheme(
        "bruteforce", shards=2 if sharded else None, seed=seed % 1000, n=n, dim=dim
    )
    pick_rng = np.random.default_rng(seed)
    victims = set(int(v) for v in pick_rng.choice(n, size=5, replace=False))
    for victim in sorted(victims):
        scheme.delete(victim)
    queries = database[:4] + 0.01
    before = [scheme.query(q, k=k, ratio_k=4) for q in queries]
    scheme.compact()
    after = [scheme.query(q, k=k, ratio_k=4) for q in queries]
    for query, want, got in zip(queries, before, after):
        assert set(int(i) for i in want) == set(int(i) for i in got)
        # Anchor against the exact plaintext answer whenever the k-th /
        # (k+1)-th live distances are unambiguous (no near-tie a DCE
        # float comparison could legally resolve either way).
        dists = ((database - query) ** 2).sum(axis=1)
        live_order = [i for i in np.argsort(dists) if int(i) not in victims]
        if dists[live_order[k]] - dists[live_order[k - 1]] > 1e-9:
            assert set(int(i) for i in got) == set(int(i) for i in live_order[:k])


@given(
    steps=mutation_steps,
    kind=st.sampled_from(("hnsw", "ivf")),
)
@_SETTINGS
def test_no_dead_ids_ever_surface(steps, kind):
    """Approximate backends: deleted/retired ids never appear in answers."""
    dim = 6
    scheme, database = make_fitted_scheme(kind, seed=23, n=16, dim=dim)
    _apply_steps(scheme, steps, dim)
    index = scheme.server.index
    dead = index.tombstones | index.retired
    for query in database[:3]:
        ids = scheme.query(query + 0.01, k=3)
        assert not (set(int(i) for i in ids) & dead)
