"""Crash injection for the journal's durability protocol.

The journal performs every OS mutation through the five primitives of
:class:`repro.core.journal.FileOps` (write / fsync / replace /
fsync_dir / unlink).  That makes "a crash at any point" a *finite*
space: run the operation once under :class:`CountingOps` to learn how
many primitive calls it makes, then re-run it once per call index under
:class:`FaultyOps`, which raises :class:`InjectedFault` at exactly that
call — simulating power loss at that instant.  ``torn=True``
additionally leaves half-written bytes behind on a faulted ``write``,
modeling a torn page.
"""

from __future__ import annotations

from repro.core.journal import FileOps
from repro.testing.faults import CallTrigger, InjectedFault

__all__ = ["InjectedFault", "CountingOps", "FaultyOps"]


class CountingOps(FileOps):
    """Counts primitive calls so a sweep knows every fault point."""

    def __init__(self) -> None:
        self.calls = 0

    def write(self, fh, data):
        self.calls += 1
        super().write(fh, data)

    def fsync(self, fh):
        self.calls += 1
        super().fsync(fh)

    def replace(self, src, dst):
        self.calls += 1
        super().replace(src, dst)

    def fsync_dir(self, directory):
        self.calls += 1
        super().fsync_dir(directory)

    def unlink(self, path):
        self.calls += 1
        super().unlink(path)


class FaultyOps(FileOps):
    """Raises :class:`InjectedFault` at the Nth primitive call (1-based).

    The faulted primitive does *not* perform its effect — except
    ``write`` with ``torn=True``, which writes a prefix of the data
    first, simulating a torn write the checksums must catch if the file
    were ever trusted.
    """

    def __init__(self, fail_at: int, torn: bool = False) -> None:
        self._trigger = CallTrigger(fail_at)
        self.fail_at = fail_at
        self.torn = torn

    @property
    def calls(self) -> int:
        return self._trigger.calls

    def _trip(self) -> bool:
        return self._trigger.observe()

    def write(self, fh, data):
        if self._trip():
            if self.torn and len(data):
                fh.write(data[: len(data) // 2])
            raise InjectedFault(f"write faulted at call {self.calls}")
        super().write(fh, data)

    def fsync(self, fh):
        if self._trip():
            raise InjectedFault(f"fsync faulted at call {self.calls}")
        super().fsync(fh)

    def replace(self, src, dst):
        if self._trip():
            raise InjectedFault(f"replace faulted at call {self.calls}")
        super().replace(src, dst)

    def fsync_dir(self, directory):
        if self._trip():
            raise InjectedFault(f"fsync_dir faulted at call {self.calls}")
        super().fsync_dir(directory)

    def unlink(self, path):
        if self._trip():
            raise InjectedFault(f"unlink faulted at call {self.calls}")
        super().unlink(path)
