"""Shared helpers for the incremental-persistence suite.

The suite's central predicate is *persisted-state equality*:
:func:`state_digest` hashes every array :func:`save_index` would write
(sorted key order, dtype and shape included), so "bit-identical" claims
about journal replay and crash recovery reduce to digest comparison —
internal buffer capacities and other non-persisted scratch are excluded
by construction.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.core import PPANNS
from repro.core.persistence import _index_arrays
from repro.hnsw.graph import HNSWParams
from repro.hnsw.ivf import IVFParams
from repro.hnsw.nsg import NSGParams

#: Tiny construction parameters per backend kind — the suite builds
#: many indexes, so they must be cheap.
TINY_PARAMS = {
    "hnsw": HNSWParams(m=4, ef_construction=16),
    "nsg": NSGParams(knn=4, max_degree=4),
    "ivf": IVFParams(num_lists=2, train_iterations=2),
    "bruteforce": None,
}

ALL_KINDS = ("hnsw", "nsg", "ivf", "bruteforce")


def state_digest(index) -> str:
    """BLAKE2b over the exact array payload persistence would write."""
    digest = hashlib.blake2b(digest_size=16)
    arrays = _index_arrays(index)
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def make_fitted_scheme(
    kind: str = "hnsw",
    shards: "int | None" = None,
    seed: int = 42,
    n: int = 20,
    dim: int = 8,
) -> tuple[PPANNS, np.ndarray]:
    """A small fitted scheme plus its plaintext database."""
    data_rng = np.random.default_rng(seed + 1000)
    database = data_rng.normal(size=(n, dim))
    scheme = PPANNS(
        dim=dim,
        beta=1.0,
        hnsw_params=TINY_PARAMS["hnsw"],
        backend=kind,
        backend_params=None if kind == "hnsw" else TINY_PARAMS[kind],
        shards=shards,
        rng=np.random.default_rng(seed),
    )
    scheme.fit(database)
    return scheme, database
