"""Satellite 3: the frontend keeps answering while shards compact.

Compaction swaps rebuilt backends behind atomic view/shard swaps, so an
online :class:`~repro.serve.frontend.ServingFrontend` never has to stop
admitting.  These tests stream queries through a frontend while
``scheme.compact()`` runs concurrently and assert the two halves of the
claim:

* **No dropped or incorrect answers** — every future resolves, and for
  the exact brute-force backend every answer *set* matches the
  sequential pre-compaction answer (a linear scan's top-k over the live
  set is a pure function of the data, whichever side of the swap a
  micro-batch lands on).
* **No stale repopulation** — the compaction flush bumps the cache
  generation, so an in-flight answer computed against the pre-swap
  index is dropped at ``put`` instead of poisoning the cache.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.cache import query_digest

from tests.persistence.conftest import make_fitted_scheme


def _expected_sets(scheme, queries, k):
    return [
        set(int(i) for i in scheme.query(q, k=k, ratio_k=4)) for q in queries
    ]


def test_streamed_answers_survive_concurrent_compaction():
    n, dim, k = 24, 6, 4
    scheme, database = make_fitted_scheme("bruteforce", shards=2, seed=31, n=n, dim=dim)
    victims = {0, 5, 11, 17, 22}
    for victim in sorted(victims):
        scheme.delete(victim)
    queries = [database[i] + 0.01 for i in range(4)]
    expected = _expected_sets(scheme, queries, k)

    compacted = threading.Event()

    def compact_now():
        report = scheme.compact()
        compacted.report = report
        compacted.set()

    with scheme.serve(
        max_batch_size=4, batch_window_seconds=0.005, cache_size=8
    ) as frontend:
        generation_before = frontend.cache.generation
        # Keep the queue busy: many in-flight futures drain through
        # 5 ms micro-batch windows while the compactor swaps shards.
        futures, want = [], []
        threading.Thread(target=compact_now, daemon=True).start()
        for round_id in range(10):
            for query, expect in zip(queries, expected):
                futures.append(
                    frontend.submit(scheme.user.encrypt_query(query, k=k, ratio_k=4))
                )
                want.append(expect)
        results = [future.result(timeout=30) for future in futures]

    assert compacted.wait(timeout=30)
    assert compacted.report.tombstones_dropped == len(victims)
    index = scheme.server.index
    assert index.tombstones == frozenset() and index.retired == frozenset(victims)
    for result, expect in zip(results, want):
        got = set(int(i) for i in result.ids)
        assert got == expect
        assert not (got & victims)
    # Every admitted query was answered — nothing dropped at the swap.
    assert len(results) == 40
    # The compaction flush bumped the generation at least once.
    assert frontend.cache.generation > generation_before


def test_compaction_flush_prevents_stale_repopulation():
    scheme, database = make_fitted_scheme("bruteforce", shards=2, seed=33)
    scheme.delete(2)
    with scheme.serve(cache_size=4, batch_window_seconds=0.0) as frontend:
        encrypted = scheme.user.encrypt_query(database[1] + 0.01, k=3)
        stale_answer = frontend.answer(encrypted, timeout=30)
        assert len(frontend.cache) == 1
        stale_generation = frontend.cache.generation

        report = scheme.compact()
        assert report.tombstones_dropped == 1
        # The flush emptied the cache and bumped its generation.
        assert len(frontend.cache) == 0
        assert frontend.cache.generation == stale_generation + 1

        # An in-flight answer admitted before the flush carries the old
        # generation; its store must be dropped, not repopulate.
        frontend.cache.put(query_digest(encrypted), stale_answer, stale_generation)
        assert len(frontend.cache) == 0

        # A post-flush submission is recomputed and cached under the
        # new generation.
        fresh = frontend.answer(encrypted, timeout=30)
        assert len(frontend.cache) == 1
        assert set(int(i) for i in fresh.ids) == set(int(i) for i in stale_answer.ids)


def test_approximate_backend_serves_no_dead_ids_across_compaction():
    """HNSW shards: rebuilt graphs may legally change answer composition,
    but a dead id surfacing mid-swap would mean a torn view."""
    scheme, database = make_fitted_scheme("hnsw", shards=2, seed=37, n=20, dim=8)
    victims = {1, 4, 9}
    for victim in sorted(victims):
        scheme.delete(victim)
    with scheme.serve(max_batch_size=4, batch_window_seconds=0.005) as frontend:
        futures = []
        compactor = threading.Thread(target=scheme.compact, daemon=True)
        compactor.start()
        for round_id in range(8):
            futures.append(
                frontend.submit(
                    scheme.user.encrypt_query(database[round_id % 4] + 0.01, k=3)
                )
            )
        results = [future.result(timeout=30) for future in futures]
        compactor.join(timeout=30)
    assert not compactor.is_alive()
    for result in results:
        assert not (set(int(i) for i in result.ids) & victims)
