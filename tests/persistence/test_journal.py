"""Unit tests for the v4 journaled store and its failure modes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.errors import CiphertextFormatError, ParameterError
from repro.core.journal import IndexJournal, JOURNAL_FORMAT_VERSION
from repro.core.maintenance import compact_index, delete_vector, insert_vector
from repro.core.persistence import load_index, save_index

from tests.persistence.conftest import ALL_KINDS, make_fitted_scheme, state_digest


def _journaled_scheme(tmp_path, kind="hnsw", shards=None, seed=42):
    scheme, database = make_fitted_scheme(kind, shards, seed=seed)
    store = tmp_path / "store"
    scheme.enable_journal(store)
    return scheme, database, store


class TestJournalRoundtrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_empty_journal_loads_base(self, tmp_path, kind):
        scheme, _, store = _journaled_scheme(tmp_path, kind)
        assert state_digest(load_index(store)) == state_digest(scheme.server.index)

    def test_segments_replay_in_order(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        mutation_rng = np.random.default_rng(5)
        inserted = [
            scheme.insert(mutation_rng.normal(size=scheme.owner.dim))
            for _ in range(4)
        ]
        scheme.delete(inserted[1])
        scheme.delete(2)
        assert scheme.journal.num_segments == 6
        loaded = load_index(store)
        assert state_digest(loaded) == state_digest(scheme.server.index)
        assert loaded.tombstones == {inserted[1], 2}

    def test_compaction_folds_journal_into_new_generation(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        scheme.insert(np.zeros(scheme.owner.dim))
        scheme.delete(0)
        assert scheme.journal.generation == 0
        scheme.compact()
        assert scheme.journal.generation == 1
        assert scheme.journal.num_segments == 0
        # Only the new generation's files remain.
        assert sorted(p.name for p in store.iterdir() if p.is_file()) == [
            "MANIFEST.json",
            "base-1.npz",
        ]
        assert not list((store / "journal").iterdir())
        assert state_digest(load_index(store)) == state_digest(scheme.server.index)

    def test_mutations_after_compaction_journal_onward(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        scheme.delete(1)
        scheme.compact()
        scheme.insert(np.ones(scheme.owner.dim))
        scheme.delete(3)
        assert scheme.journal.num_segments == 2
        assert state_digest(load_index(store)) == state_digest(scheme.server.index)


class TestJournalFailureModes:
    def test_open_requires_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(CiphertextFormatError, match="MANIFEST"):
            IndexJournal.open(tmp_path / "empty")

    def test_open_rejects_unknown_format_version(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        manifest = json.loads((store / "MANIFEST.json").read_bytes())
        manifest["format_version"] = JOURNAL_FORMAT_VERSION + 1
        (store / "MANIFEST.json").write_text(json.dumps(manifest))
        with pytest.raises(CiphertextFormatError, match="version"):
            IndexJournal.open(store)

    def test_open_rejects_garbled_manifest(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        (store / "MANIFEST.json").write_text("{not json")
        with pytest.raises(CiphertextFormatError, match="corrupt manifest"):
            IndexJournal.open(store)

    def test_corrupted_segment_is_detected(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        scheme.insert(np.zeros(scheme.owner.dim))
        segment = next((store / "journal").glob("seg-*.npz"))
        blob = bytearray(segment.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        segment.write_bytes(bytes(blob))
        with pytest.raises(CiphertextFormatError, match="checksum"):
            load_index(store)

    def test_corrupted_base_is_detected(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        base = store / "base-0.npz"
        blob = bytearray(base.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        base.write_bytes(bytes(blob))
        with pytest.raises(CiphertextFormatError, match="checksum"):
            load_index(store)

    def test_missing_segment_file_is_detected(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        scheme.insert(np.zeros(scheme.owner.dim))
        next((store / "journal").glob("seg-*.npz")).unlink()
        with pytest.raises(CiphertextFormatError, match="missing file"):
            load_index(store)

    def test_orphan_segment_is_ignored(self, tmp_path):
        """A segment written but never committed to the manifest (the
        crash window) must not affect loading."""
        scheme, _, store = _journaled_scheme(tmp_path)
        scheme.insert(np.zeros(scheme.owner.dim))
        orphan = store / "journal" / "seg-0-999.npz"
        orphan.write_bytes(b"leftover from a crashed append")
        assert state_digest(load_index(store)) == state_digest(scheme.server.index)


class TestJournalStats:
    def test_stats_accounting(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        empty = scheme.journal.stats()
        assert empty.generation == 0
        assert empty.num_segments == 0
        assert empty.journal_bytes == 0
        assert empty.base_bytes == (store / "base-0.npz").stat().st_size
        scheme.insert(np.zeros(scheme.owner.dim))
        scheme.delete(0)
        stats = scheme.journal.stats()
        assert stats.num_segments == 2
        assert stats.journal_bytes > 0
        assert stats.total_bytes == stats.base_bytes + stats.journal_bytes
        assert stats.path == str(store)


class TestCompactedNpzRoundtrip:
    """The v2/v3 npz formats must carry a compacted index faithfully."""

    @pytest.mark.parametrize("shards", [None, 2])
    def test_save_load_after_compaction(self, tmp_path, shards):
        scheme, _ = make_fitted_scheme("hnsw", shards=shards, seed=9)
        scheme.delete(0)
        scheme.delete(5)
        scheme.compact()
        scheme.delete(7)  # a fresh, uncompacted tombstone rides along
        path = tmp_path / "compacted.npz"
        save_index(path, scheme.server.index)
        loaded = load_index(path)
        assert state_digest(loaded) == state_digest(scheme.server.index)
        assert loaded.retired == {0, 5}
        assert loaded.tombstones == {7}
        assert len(loaded) == len(scheme.server.index)

    def test_monolithic_cannot_compact_to_empty(self):
        scheme, _ = make_fitted_scheme("hnsw", seed=9, n=3)
        for vector_id in range(3):
            scheme.delete(vector_id)
        with pytest.raises(ParameterError, match="zero live"):
            scheme.compact()


class TestMaintenanceWithoutJournal:
    def test_journal_parameter_is_optional(self, tmp_path):
        """insert/delete/compact still work with no journal attached."""
        scheme, _ = make_fitted_scheme("hnsw", seed=13)
        new_id = insert_vector(
            scheme.owner, scheme.server.index, np.zeros(scheme.owner.dim)
        )
        delete_vector(scheme.server.index, new_id)
        report = compact_index(scheme.server.index, rng=np.random.default_rng(0))
        assert report.tombstones_dropped == 1
        assert report.shards_compacted == 1
        assert report.seconds >= 0.0

    def test_server_compact_entry_point(self):
        scheme, _ = make_fitted_scheme("bruteforce", shards=2, seed=13)
        scheme.delete(1)
        report = scheme.server.compact()
        assert report.tombstones_dropped == 1
        assert scheme.server.index.retired == {1}

    def test_noop_compaction_keeps_generation(self, tmp_path):
        scheme, _, store = _journaled_scheme(tmp_path)
        before = sorted(p.name for p in store.iterdir() if p.is_file())
        report = compact_index(scheme.server.index, journal=scheme.journal)
        assert report.tombstones_dropped == 0
        assert scheme.journal.generation == 0
        assert sorted(p.name for p in store.iterdir() if p.is_file()) == before
