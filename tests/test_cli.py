"""CLI tests: build / query / demo round trip through real files."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import write_fvecs


@pytest.fixture(scope="module")
def cli_workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    rng = np.random.default_rng(0)
    database = rng.standard_normal((120, 10)) * 2.0
    queries = database[:3] + 0.01
    np.save(root / "db.npy", database)
    write_fvecs(root / "queries.fvecs", queries)
    return root, database, queries


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_args(self):
        args = build_parser().parse_args(
            ["build", "db.npy", "--index", "i.npz", "--keys", "k.npz", "--beta", "1.0"]
        )
        assert args.command == "build"
        assert args.beta == 1.0

    def test_refine_engine_choices(self):
        args = build_parser().parse_args(
            ["query", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy",
             "--refine-engine", "heap"]
        )
        assert args.refine_engine == "heap"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--index", "i.npz", "--keys", "k.npz",
                 "--queries", "q.npy", "--refine-engine", "quantum"]
            )

    def test_executor_choices(self):
        # The knob rides query, serve, and listen alike.
        for base in (
            ["query", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy"],
            ["serve", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy"],
            ["listen", "--index", "i.npz"],
        ):
            args = build_parser().parse_args(
                [*base, "--executor", "processes", "--workers", "4"]
            )
            assert args.executor == "processes"
            assert args.workers == 4
        # Default: server-side resolution (threads), pool-width workers.
        args = build_parser().parse_args(
            ["query", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy"]
        )
        assert args.executor is None and args.workers is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--index", "i.npz", "--keys", "k.npz",
                 "--queries", "q.npy", "--executor", "fibers"]
            )


class TestBuildAndQuery:
    def test_roundtrip(self, cli_workspace, capsys):
        root, database, queries = cli_workspace
        index_path = str(root / "index.npz")
        keys_path = str(root / "keys.npz")
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", index_path,
                "--keys", keys_path,
                "--beta", "0.2",
                "--m", "8",
                "--ef-construction", "40",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built index over n=120 d=10" in out

        code = main(
            [
                "query",
                "--index", index_path,
                "--keys", keys_path,
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--ef-search", "60",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("query")]
        assert len(lines) == 3
        # Self-queries: query i is database[i] + epsilon, so id i must appear.
        for i, line in enumerate(lines):
            ids = [int(x) for x in line.split(":")[1].split()]
            assert i in ids

    def test_sharded_roundtrip(self, cli_workspace, capsys):
        root, database, queries = cli_workspace
        index_path = str(root / "sharded_index.npz")
        keys_path = str(root / "sharded_keys.npz")
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", index_path,
                "--keys", keys_path,
                "--beta", "0.2",
                "--backend", "bruteforce",
                "--shards", "3",
                "--shard-strategy", "hash",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=3 (hash)" in out

        code = main(
            [
                "query",
                "--index", index_path,
                "--keys", keys_path,
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--json",
                "--seed", "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 3
        assert set(payload["shard_seconds"]) == {"0", "1", "2"}
        assert payload["gather_bytes"] > 0
        # Stage timings account for the whole pipeline and name the
        # refine engine that produced the answer.
        assert payload["refine_engine"] == "vectorized"
        assert payload["refine_kernel_seconds"] <= payload["refine_seconds"]
        assert payload["wall_seconds"] > 0
        assert payload["server_seconds"] == pytest.approx(
            payload["filter_seconds"]
            + payload["mask_seconds"]
            + payload["refine_seconds"]
        )
        for i, ids in enumerate(payload["ids"]):
            assert i in ids

    def test_process_executor_matches_threads(self, cli_workspace, capsys):
        from repro.core.plane import process_plane_available

        if not process_plane_available():
            pytest.skip("process data plane unavailable on this host")
        root, database, queries = cli_workspace
        index_path = str(root / "exec_index.npz")
        keys_path = str(root / "exec_keys.npz")
        assert main(
            ["build", str(root / "db.npy"), "--index", index_path,
             "--keys", keys_path, "--beta", "0.2", "--backend", "bruteforce",
             "--shards", "2", "--seed", "1"]
        ) == 0
        capsys.readouterr()

        # Same seed on both runs: identical ciphertexts, so the executor
        # modes must agree bit-for-bit, counters included.
        def run(extra):
            assert main(
                ["query", "--index", index_path, "--keys", keys_path,
                 "--queries", str(root / "queries.fvecs"), "-k", "5",
                 "--json", "--seed", "7", *extra]
            ) == 0
            return json.loads(capsys.readouterr().out)

        threads = run([])
        procs = run(["--executor", "processes", "--workers", "2"])
        assert threads["executor"] == "threads"
        assert procs["executor"] == "processes"
        assert procs["ids"] == threads["ids"]
        assert procs["refine_comparisons"] == threads["refine_comparisons"]
        from repro.core.shm import active_arenas

        assert not active_arenas()

    def test_build_json_report(self, cli_workspace, capsys):
        root, database, _ = cli_workspace
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", str(root / "json_index.npz"),
                "--keys", str(root / "json_keys.npz"),
                "--beta", "0.2",
                "--backend", "bruteforce",
                "--shards", "3",
                "--build-workers", "2",
                "--build-mode", "bulk",
                "--json",
                "--seed", "1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "bruteforce"
        assert payload["shards"] == 3
        assert payload["build_workers"] == 2
        assert payload["build_mode"] == "bulk"
        assert payload["encrypt_seconds"] > 0
        assert payload["total_seconds"] == pytest.approx(
            payload["encrypt_seconds"] + payload["build_seconds"]
        )
        assert [t["shard_id"] for t in payload["shard_timings"]] == [0, 1, 2]
        assert sum(t["num_vectors"] for t in payload["shard_timings"]) == 120

    def test_build_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "db.npy", "--index", "i.npz", "--keys", "k.npz",
                 "--beta", "1.0", "--build-mode", "turbo"]
            )

    def test_bulk_build_answers_identically(self, cli_workspace, capsys):
        """Same seed, both build modes: the served ids must agree."""
        root, _, _ = cli_workspace
        ids_by_mode = {}
        for mode in ("sequential", "bulk"):
            code = main(
                [
                    "build",
                    str(root / "db.npy"),
                    "--index", str(root / f"{mode}_index.npz"),
                    "--keys", str(root / f"{mode}_keys.npz"),
                    "--beta", "0.2",
                    "--m", "8",
                    "--ef-construction", "40",
                    "--build-mode", mode,
                    "--seed", "1",
                ]
            )
            assert code == 0
            capsys.readouterr()
            code = main(
                [
                    "query",
                    "--index", str(root / f"{mode}_index.npz"),
                    "--keys", str(root / f"{mode}_keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                    "-k", "5",
                    "--json",
                    "--seed", "2",
                ]
            )
            assert code == 0
            ids_by_mode[mode] = json.loads(capsys.readouterr().out)["ids"]
        assert ids_by_mode["sequential"] == ids_by_mode["bulk"]

    def test_refine_engines_agree_end_to_end(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        index_path = str(root / "sharded_index.npz")
        keys_path = str(root / "sharded_keys.npz")
        payloads = {}
        for engine in ("heap", "vectorized"):
            code = main(
                [
                    "query",
                    "--index", index_path,
                    "--keys", keys_path,
                    "--queries", str(root / "queries.fvecs"),
                    "-k", "5",
                    "--json",
                    "--refine-engine", engine,
                    "--seed", "2",
                ]
            )
            assert code == 0
            payloads[engine] = json.loads(capsys.readouterr().out)
        assert payloads["heap"]["ids"] == payloads["vectorized"]["ids"]
        assert payloads["heap"]["refine_engine"] == "heap"
        assert payloads["heap"]["refine_kernel_seconds"] == 0.0
        assert (
            payloads["heap"]["refine_comparisons"]
            == payloads["vectorized"]["refine_comparisons"]
        )

    def test_refine_engine_with_filter_only_rejected(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit, match="no effect"):
            main(
                [
                    "query",
                    "--index", str(root / "index.npz"),
                    "--keys", str(root / "keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                    "--filter-only",
                    "--refine-engine", "heap",
                ]
            )

    def test_unsupported_format(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit):
            main(
                [
                    "build",
                    str(root / "db.csv"),
                    "--index", str(root / "x.npz"),
                    "--keys", str(root / "y.npz"),
                    "--beta", "1.0",
                ]
            )


class TestInfo:
    def test_info_human_readable(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        code = main(["info", "--index", str(root / "sharded_index.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=bruteforce" in out
        assert "shards=3 (hash" in out
        assert "build metadata: mode=sequential" in out

    def test_info_json_reports_layout_and_build_metadata(
        self, cli_workspace, capsys
    ):
        root, _, _ = cli_workspace
        code = main(["info", "--index", str(root / "json_index.npz"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "bruteforce"
        assert payload["shards"] == 3
        assert payload["shard_strategy"] == "round_robin"
        assert sum(payload["shard_sizes"]) == 120
        assert payload["num_vectors"] == 120
        assert payload["live_vectors"] == 120
        assert payload["tombstones"] == 0
        build = payload["build_report"]
        assert build["build_mode"] == "bulk"
        assert build["build_workers"] == 2
        assert build["encrypt_seconds"] > 0
        assert build["total_seconds"] == pytest.approx(
            build["encrypt_seconds"] + build["build_seconds"]
        )

    def test_info_monolithic_index(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        code = main(["info", "--index", str(root / "index.npz"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "hnsw"
        assert payload["shards"] == 1
        assert payload["shard_strategy"] is None
        assert payload["build_report"]["shards"] == 1

    def test_info_reports_tenancy_view(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        code = main(["info", "--index", str(root / "index.npz"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tenancy"]["key_ids"] == [payload["dce_key_id"]]
        default = payload["tenancy"]["default_tenant"]
        assert default["key_id"] == payload["dce_key_id"]
        assert default["authenticated"] is False
        assert default["max_in_flight"] is None
        capsys.readouterr()
        main(["info", "--index", str(root / "index.npz")])
        assert (
            f"tenancy: default tenant key_id={payload['dce_key_id']}"
            in capsys.readouterr().out
        )


class TestServe:
    def test_serve_matches_query_ids(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        common = [
            "--index", str(root / "sharded_index.npz"),
            "--keys", str(root / "sharded_keys.npz"),
            "--queries", str(root / "queries.fvecs"),
            "-k", "5",
            "--json",
            "--seed", "2",
        ]
        code = main(["query", *common])
        assert code == 0
        offline = json.loads(capsys.readouterr().out)
        code = main(
            ["serve", *common, "--max-batch", "2", "--batch-window", "0.05"]
        )
        assert code == 0
        served = json.loads(capsys.readouterr().out)
        assert served["ids"] == offline["ids"]
        assert served["num_queries"] == 3
        assert served["served_qps"] > 0
        metrics = served["metrics"]
        assert metrics["completed"] == 3
        assert metrics["batches"] >= 2  # size cap 2 over 3 queries
        assert set(metrics["stage_seconds"]) >= {"filter", "refine"}

    def test_serve_human_summary(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        code = main(
            [
                "serve",
                "--index", str(root / "index.npz"),
                "--keys", str(root / "keys.npz"),
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--rate", "500",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 3 queries" in out
        assert "latency p50/p95/p99" in out


class TestServeTenancy:
    def test_serve_json_reports_tenancy_view(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        code = main(
            [
                "serve",
                "--index", str(root / "index.npz"),
                "--keys", str(root / "keys.npz"),
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--json",
                "--seed", "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        tenancy = payload["tenancy"]
        assert len(tenancy["key_ids"]) == 1
        tenant = tenancy["tenants"][str(tenancy["key_ids"][0])]
        assert tenant["completed"] == 3
        assert tenant["rejected"] == 0
        assert tenant["max_in_flight"] is None
        assert tenant["in_flight"] == 0

    def test_serve_needs_index_or_connect(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit, match="--index .*--connect|--connect"):
            main(
                [
                    "serve",
                    "--keys", str(root / "keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                ]
            )


class TestNetworkServe:
    def test_remote_serve_matches_local_ids(self, cli_workspace, capsys):
        """serve --connect against an in-process listen server: same
        queries, same seed -> bit-identical ids to the local path."""
        from repro.core.persistence import load_index
        from repro.core.roles import CloudServer
        from repro.net import NetServer, TenantConfig

        root, _, _ = cli_workspace
        common = [
            "--keys", str(root / "keys.npz"),
            "--queries", str(root / "queries.fvecs"),
            "-k", "5",
            "--json",
            "--seed", "2",
        ]
        code = main(["serve", "--index", str(root / "index.npz"), *common])
        assert code == 0
        local = json.loads(capsys.readouterr().out)

        index = load_index(str(root / "index.npz"))
        server = CloudServer(index)
        with server.serving_frontend(
            max_batch_size=32, batch_window_seconds=0.002
        ) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(int(index.dce_database.key_id), token="tok")],
            ) as net:
                host, port = net.address
                code = main(
                    [
                        "serve",
                        "--connect", f"{host}:{port}",
                        "--token", "tok",
                        *common,
                    ]
                )
        assert code == 0
        remote = json.loads(capsys.readouterr().out)
        assert remote["ids"] == local["ids"]
        assert remote["remote"] == f"{host}:{port}"
        tenant = remote["tenancy"]["tenants"][
            str(remote["tenancy"]["key_ids"][0])
        ]
        assert tenant["completed"] == 3
        assert tenant["authenticated"] is True

    def test_listen_parser_defaults(self):
        args = build_parser().parse_args(["listen", "--index", "i.npz"])
        assert args.command == "listen"
        assert args.host == "127.0.0.1"
        assert args.tenant == []
        assert args.frame_timeout > 0

    def test_tenant_spec_parsing(self):
        from repro.cli import _parse_tenant_spec

        config = _parse_tenant_spec("42:secret:8")
        assert (config.key_id, config.token, config.max_in_flight) == (
            42, "secret", 8,
        )
        assert _parse_tenant_spec("-7").token is None
        assert _parse_tenant_spec("-7").max_in_flight is None
        assert _parse_tenant_spec("9::3").token is None
        assert _parse_tenant_spec("9::3").max_in_flight == 3
        with pytest.raises(SystemExit):
            _parse_tenant_spec("notakey")
        with pytest.raises(SystemExit):
            _parse_tenant_spec("1:tok:many")
        with pytest.raises(SystemExit):
            _parse_tenant_spec("1:tok:0")

    def test_hostport_parsing(self):
        from repro.cli import _parse_hostport

        assert _parse_hostport("127.0.0.1:7379") == ("127.0.0.1", 7379)
        with pytest.raises(SystemExit):
            _parse_hostport("nocolon")
        with pytest.raises(SystemExit):
            _parse_hostport("host:notaport")


class TestResilienceFlags:
    def test_parser_defaults(self):
        for base in (
            ["query", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy"],
            ["serve", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy"],
        ):
            args = build_parser().parse_args(base)
            assert args.deadline_ms is None
            assert args.retries == 0
            args = build_parser().parse_args(
                [*base, "--deadline-ms", "500", "--retries", "3"]
            )
            assert args.deadline_ms == 500
            assert args.retries == 3
        args = build_parser().parse_args(["listen", "--index", "i.npz"])
        assert args.max_connections is None
        args = build_parser().parse_args(
            ["listen", "--index", "i.npz", "--max-connections", "16"]
        )
        assert args.max_connections == 16

    def test_tenant_rate_spec(self):
        from repro.cli import _parse_tenant_spec

        config = _parse_tenant_spec("42:secret:8:25.5")
        assert (config.key_id, config.token, config.max_in_flight) == (
            42, "secret", 8,
        )
        assert config.rate == 25.5
        # Rate without token or quota: empty segments stay unset.
        config = _parse_tenant_spec("9:::2.5")
        assert config.token is None
        assert config.max_in_flight is None
        assert config.rate == 2.5
        with pytest.raises(SystemExit, match="rate"):
            _parse_tenant_spec("1:tok:2:fast")
        with pytest.raises(SystemExit):
            _parse_tenant_spec("1:tok:2:-3.0")  # TenantConfig refuses

    def test_invalid_deadline_and_retries_fail_fast(self, cli_workspace):
        from repro.core.errors import ParameterError

        root, _, _ = cli_workspace
        base = [
            "query",
            "--index", str(root / "index.npz"),
            "--keys", str(root / "keys.npz"),
            "--queries", str(root / "queries.fvecs"),
        ]
        with pytest.raises(ParameterError, match="deadline-ms"):
            main([*base, "--deadline-ms", "0"])
        with pytest.raises(ParameterError, match="retries"):
            main([*base, "--retries", "-1"])

    def test_serve_retries_needs_connect(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit, match="connect"):
            main(
                [
                    "serve",
                    "--index", str(root / "index.npz"),
                    "--keys", str(root / "keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                    "--retries", "2",
                ]
            )

    def test_query_with_budget_matches_plain_query(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        base = [
            "query",
            "--index", str(root / "index.npz"),
            "--keys", str(root / "keys.npz"),
            "--queries", str(root / "queries.fvecs"),
            "-k", "5",
            "--seed", "2",
        ]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main([*base, "--deadline-ms", "60000", "--retries", "2"]) == 0
        budgeted = capsys.readouterr().out
        plain_ids = [l for l in plain.splitlines() if l.startswith("query")]
        budgeted_ids = [
            l for l in budgeted.splitlines() if l.startswith("query")
        ]
        assert plain_ids == budgeted_ids

    def test_remote_serve_reports_budget_and_retries(
        self, cli_workspace, capsys
    ):
        from repro.core.persistence import load_index
        from repro.core.roles import CloudServer
        from repro.net import NetServer, TenantConfig

        root, _, _ = cli_workspace
        index = load_index(str(root / "index.npz"))
        server = CloudServer(index)
        with server.serving_frontend(batch_window_seconds=0.002) as frontend:
            with NetServer(
                frontend, [TenantConfig(int(index.dce_database.key_id))]
            ) as net:
                host, port = net.address
                code = main(
                    [
                        "serve",
                        "--connect", f"{host}:{port}",
                        "--keys", str(root / "keys.npz"),
                        "--queries", str(root / "queries.fvecs"),
                        "-k", "5",
                        "--json",
                        "--seed", "2",
                        "--deadline-ms", "60000",
                        "--retries", "2",
                    ]
                )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadline_ms"] == 60000
        assert payload["client_retries"] == 0  # healthy run: no retries


class TestWorkload:
    def test_workload_json(self, capsys):
        code = main(
            [
                "workload",
                "-n", "200",
                "--queries", "8",
                "--backend", "bruteforce",
                "--beta", "0.5",
                "--max-batch", "4",
                "--json",
                "--seed", "3",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ids_match"] is True
        assert payload["sequential_qps"] > 0
        assert payload["served_qps"] > 0
        assert payload["metrics"]["completed"] == 8

    def test_workload_human_summary(self, capsys):
        code = main(
            ["workload", "-n", "150", "--queries", "4",
             "--backend", "bruteforce", "--beta", "0.5", "--seed", "3"]
        )
        assert code == 0
        assert "ids match" in capsys.readouterr().out


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(
            ["demo", "--profile", "deep", "-n", "200", "--queries", "3",
             "--beta", "0.5", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recall@10" in out


class TestJournalAndCompactCLI:
    def _build(self, root, index_path, fmt=None, capsys=None):
        argv = [
            "build",
            str(root / "db.npy"),
            "--index", str(index_path),
            "--keys", str(root / "jkeys.npz"),
            "--beta", "0.2",
            "--m", "8",
            "--ef-construction", "40",
            "--seed", "5",
        ]
        if fmt is not None:
            argv += ["--format", fmt]
        assert main(argv) == 0
        if capsys is not None:
            capsys.readouterr()

    def test_journaled_build_query_info_compact(self, cli_workspace, capsys):
        from repro.core.journal import IndexJournal
        from repro.core.maintenance import delete_vector

        root, database, queries = cli_workspace
        store = root / "store"
        self._build(root, store, fmt="journal", capsys=capsys)
        assert store.is_dir()

        # Mutations append delta segments instead of rewriting the base.
        journal = IndexJournal.open(store)
        index = journal.load()
        delete_vector(index, 3, journal=journal)
        delete_vector(index, 9, journal=journal)

        code = main(["info", "--index", str(store), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tombstones"] == 2
        assert payload["journal"]["generation"] == 0
        assert payload["journal"]["num_segments"] == 2
        assert payload["journal"]["journal_bytes"] > 0

        # Queries load the store directory like any index path.
        code = main(
            ["query", "--index", str(store), "--keys", str(root / "jkeys.npz"),
             "--queries", str(root / "queries.fvecs"), "-k", "3", "--json"]
        )
        assert code == 0
        ids = json.loads(capsys.readouterr().out)["ids"]
        assert all(3 not in row and 9 not in row for row in ids)

        code = main(["compact", "--index", str(store), "--seed", "7", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["tombstones_dropped"] == 2
        assert report["journal"] == {"generation": 1, "num_segments": 0}
        assert report["live_vectors"] == 118

        code = main(["info", "--index", str(store), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tombstones"] == 0
        assert payload["live_vectors"] == 118
        assert payload["journal"]["generation"] == 1

    def test_compact_rewrites_npz_in_place(self, cli_workspace, capsys):
        from repro.core.maintenance import delete_vector
        from repro.core.persistence import load_index, save_index

        root, database, queries = cli_workspace
        index_path = root / "compactable.npz"
        self._build(root, index_path, capsys=capsys)

        index = load_index(index_path)
        delete_vector(index, 0)
        save_index(index_path, index)

        code = main(["compact", "--index", str(index_path), "--seed", "7"])
        assert code == 0
        assert "dropped 1 tombstones" in capsys.readouterr().out
        reloaded = load_index(index_path)
        assert reloaded.tombstones == frozenset()
        assert reloaded.retired == {0}

        # Idempotent: a second run has nothing to do.
        code = main(["compact", "--index", str(index_path)])
        assert code == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_npz_index_reports_no_journal(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        index_path = root / "plain.npz"
        self._build(root, index_path, capsys=capsys)
        code = main(["info", "--index", str(index_path), "--json"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["journal"] is None
