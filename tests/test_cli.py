"""CLI tests: build / query / demo round trip through real files."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.datasets.loaders import write_fvecs


@pytest.fixture(scope="module")
def cli_workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli")
    rng = np.random.default_rng(0)
    database = rng.standard_normal((120, 10)) * 2.0
    queries = database[:3] + 0.01
    np.save(root / "db.npy", database)
    write_fvecs(root / "queries.fvecs", queries)
    return root, database, queries


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_build_args(self):
        args = build_parser().parse_args(
            ["build", "db.npy", "--index", "i.npz", "--keys", "k.npz", "--beta", "1.0"]
        )
        assert args.command == "build"
        assert args.beta == 1.0

    def test_refine_engine_choices(self):
        args = build_parser().parse_args(
            ["query", "--index", "i.npz", "--keys", "k.npz", "--queries", "q.npy",
             "--refine-engine", "heap"]
        )
        assert args.refine_engine == "heap"
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["query", "--index", "i.npz", "--keys", "k.npz",
                 "--queries", "q.npy", "--refine-engine", "quantum"]
            )


class TestBuildAndQuery:
    def test_roundtrip(self, cli_workspace, capsys):
        root, database, queries = cli_workspace
        index_path = str(root / "index.npz")
        keys_path = str(root / "keys.npz")
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", index_path,
                "--keys", keys_path,
                "--beta", "0.2",
                "--m", "8",
                "--ef-construction", "40",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "built index over n=120 d=10" in out

        code = main(
            [
                "query",
                "--index", index_path,
                "--keys", keys_path,
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--ef-search", "60",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.startswith("query")]
        assert len(lines) == 3
        # Self-queries: query i is database[i] + epsilon, so id i must appear.
        for i, line in enumerate(lines):
            ids = [int(x) for x in line.split(":")[1].split()]
            assert i in ids

    def test_sharded_roundtrip(self, cli_workspace, capsys):
        root, database, queries = cli_workspace
        index_path = str(root / "sharded_index.npz")
        keys_path = str(root / "sharded_keys.npz")
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", index_path,
                "--keys", keys_path,
                "--beta", "0.2",
                "--backend", "bruteforce",
                "--shards", "3",
                "--shard-strategy", "hash",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=3 (hash)" in out

        code = main(
            [
                "query",
                "--index", index_path,
                "--keys", keys_path,
                "--queries", str(root / "queries.fvecs"),
                "-k", "5",
                "--json",
                "--seed", "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 3
        assert set(payload["shard_seconds"]) == {"0", "1", "2"}
        assert payload["gather_bytes"] > 0
        # Stage timings account for the whole pipeline and name the
        # refine engine that produced the answer.
        assert payload["refine_engine"] == "vectorized"
        assert payload["refine_kernel_seconds"] <= payload["refine_seconds"]
        assert payload["wall_seconds"] > 0
        assert payload["server_seconds"] == pytest.approx(
            payload["filter_seconds"]
            + payload["mask_seconds"]
            + payload["refine_seconds"]
        )
        for i, ids in enumerate(payload["ids"]):
            assert i in ids

    def test_build_json_report(self, cli_workspace, capsys):
        root, database, _ = cli_workspace
        code = main(
            [
                "build",
                str(root / "db.npy"),
                "--index", str(root / "json_index.npz"),
                "--keys", str(root / "json_keys.npz"),
                "--beta", "0.2",
                "--backend", "bruteforce",
                "--shards", "3",
                "--build-workers", "2",
                "--build-mode", "bulk",
                "--json",
                "--seed", "1",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "bruteforce"
        assert payload["shards"] == 3
        assert payload["build_workers"] == 2
        assert payload["build_mode"] == "bulk"
        assert payload["encrypt_seconds"] > 0
        assert payload["total_seconds"] == pytest.approx(
            payload["encrypt_seconds"] + payload["build_seconds"]
        )
        assert [t["shard_id"] for t in payload["shard_timings"]] == [0, 1, 2]
        assert sum(t["num_vectors"] for t in payload["shard_timings"]) == 120

    def test_build_mode_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["build", "db.npy", "--index", "i.npz", "--keys", "k.npz",
                 "--beta", "1.0", "--build-mode", "turbo"]
            )

    def test_bulk_build_answers_identically(self, cli_workspace, capsys):
        """Same seed, both build modes: the served ids must agree."""
        root, _, _ = cli_workspace
        ids_by_mode = {}
        for mode in ("sequential", "bulk"):
            code = main(
                [
                    "build",
                    str(root / "db.npy"),
                    "--index", str(root / f"{mode}_index.npz"),
                    "--keys", str(root / f"{mode}_keys.npz"),
                    "--beta", "0.2",
                    "--m", "8",
                    "--ef-construction", "40",
                    "--build-mode", mode,
                    "--seed", "1",
                ]
            )
            assert code == 0
            capsys.readouterr()
            code = main(
                [
                    "query",
                    "--index", str(root / f"{mode}_index.npz"),
                    "--keys", str(root / f"{mode}_keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                    "-k", "5",
                    "--json",
                    "--seed", "2",
                ]
            )
            assert code == 0
            ids_by_mode[mode] = json.loads(capsys.readouterr().out)["ids"]
        assert ids_by_mode["sequential"] == ids_by_mode["bulk"]

    def test_refine_engines_agree_end_to_end(self, cli_workspace, capsys):
        root, _, _ = cli_workspace
        index_path = str(root / "sharded_index.npz")
        keys_path = str(root / "sharded_keys.npz")
        payloads = {}
        for engine in ("heap", "vectorized"):
            code = main(
                [
                    "query",
                    "--index", index_path,
                    "--keys", keys_path,
                    "--queries", str(root / "queries.fvecs"),
                    "-k", "5",
                    "--json",
                    "--refine-engine", engine,
                    "--seed", "2",
                ]
            )
            assert code == 0
            payloads[engine] = json.loads(capsys.readouterr().out)
        assert payloads["heap"]["ids"] == payloads["vectorized"]["ids"]
        assert payloads["heap"]["refine_engine"] == "heap"
        assert payloads["heap"]["refine_kernel_seconds"] == 0.0
        assert (
            payloads["heap"]["refine_comparisons"]
            == payloads["vectorized"]["refine_comparisons"]
        )

    def test_refine_engine_with_filter_only_rejected(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit, match="no effect"):
            main(
                [
                    "query",
                    "--index", str(root / "index.npz"),
                    "--keys", str(root / "keys.npz"),
                    "--queries", str(root / "queries.fvecs"),
                    "--filter-only",
                    "--refine-engine", "heap",
                ]
            )

    def test_unsupported_format(self, cli_workspace):
        root, _, _ = cli_workspace
        with pytest.raises(SystemExit):
            main(
                [
                    "build",
                    str(root / "db.csv"),
                    "--index", str(root / "x.npz"),
                    "--keys", str(root / "y.npz"),
                    "--beta", "1.0",
                ]
            )


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(
            ["demo", "--profile", "deep", "-n", "200", "--queries", "3",
             "--beta", "0.5", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Recall@10" in out
