"""Smoke tests for the example scripts.

Full example runs are minutes of work (they build real indexes at demo
scale), so the default suite verifies each script compiles and exposes a
``main``; the fastest one is executed end to end.
"""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} lacks main()"


def test_kpa_attack_demo_runs():
    # The attack demo has no index build, so it is fast enough to execute.
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "kpa_attack_demo.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "BROKEN" in result.stdout
    assert "attack fails" in result.stdout
