"""Distance kernel tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hnsw.distance import (
    distance_mac_count,
    pairwise_squared_distances,
    squared_distance,
    squared_distances_to_many,
)


class TestSquaredDistance:
    def test_known_value(self):
        assert squared_distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_zero_for_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert squared_distance(v, v) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((2, 16))
        assert np.isclose(squared_distance(a, b), squared_distance(b, a))

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_matches_numpy(self, dim):
        rng = np.random.default_rng(dim)
        a = rng.standard_normal(dim)
        b = rng.standard_normal(dim)
        assert np.isclose(squared_distance(a, b), np.sum((a - b) ** 2))


class TestBatchKernels:
    def test_to_many_matches_loop(self):
        rng = np.random.default_rng(1)
        q = rng.standard_normal(8)
        vs = rng.standard_normal((20, 8))
        batch = squared_distances_to_many(q, vs)
        for i in range(20):
            assert np.isclose(batch[i], squared_distance(q, vs[i]))

    def test_pairwise_matches_loop(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((6, 5))
        b = rng.standard_normal((9, 5))
        pairwise = pairwise_squared_distances(a, b)
        assert pairwise.shape == (6, 9)
        for i in range(6):
            for j in range(9):
                assert np.isclose(pairwise[i, j], squared_distance(a[i], b[j]), atol=1e-8)

    def test_pairwise_non_negative(self):
        # The expansion ||a||^2 - 2ab + ||b||^2 can dip below 0 in floats;
        # the kernel must clip.
        a = np.ones((3, 4)) * 1e8
        assert np.all(pairwise_squared_distances(a, a) >= 0.0)

    def test_mac_count(self):
        assert distance_mac_count(128) == 128
