"""Flat CSR search modes, the reverse-adjacency map, and tombstone beams.

Covers the filter-engine substrate at the graph layer:

* ``search_mode`` compiles lazily per adjacency generation and any
  mutation invalidates it; ``adopt_search_mode`` installs a published
  snapshot zero-copy and it answers identically to a locally compiled
  one.
* ``in_neighbors`` / ``remove_edges_to`` are served from an
  incrementally maintained reverse-adjacency map; these tests pin their
  answers to a brute-force scan of the forward adjacency (the seed
  implementation) across arbitrary interleaved mutations, so the O(1)
  map can never drift from the O(n * edges) semantics it replaced.
* Tombstones widen the layer-0 beam: ``k`` live results come back even
  when every beam slot would otherwise be occupied by a deleted node.
"""

import numpy as np
import pytest

from repro.hnsw.graph import HNSWIndex, HNSWParams, SearchStats
from repro.hnsw.nsg import NSGIndex, NSGParams


def _deleted(index) -> set:
    return set(index.deleted_ids().tolist())


def _node_count(index: HNSWIndex) -> int:
    """Total slots including tombstones (``size`` counts live only)."""
    return index.vectors.shape[0]


def _reference_in_neighbors(index: HNSWIndex, node: int, layer: int = 0) -> list:
    """The seed's semantics: scan every forward list at ``layer``, sorted."""
    tombstones = _deleted(index)
    found = []
    for source in range(_node_count(index)):
        if source == node or source in tombstones:
            continue
        if layer > index.node_level(source):
            continue
        if node in index.neighbors(source, layer):
            found.append(source)
    return sorted(found)


@pytest.fixture(scope="module")
def medium_graph():
    rng = np.random.default_rng(42)
    vectors = rng.standard_normal((150, 12))
    index = HNSWIndex(12, HNSWParams(m=6, ef_construction=60), rng=rng)
    index.build(vectors)
    return index, vectors


class TestReverseAdjacency:
    def test_in_neighbors_matches_forward_scan(self, medium_graph):
        index, _ = medium_graph
        for node in range(0, _node_count(index), 7):
            for layer in range(min(index.node_level(node), 1) + 1):
                assert index.in_neighbors(node, layer) == _reference_in_neighbors(
                    index, node, layer
                )

    def test_consistent_under_interleaved_mutations(self):
        rng = np.random.default_rng(9)
        index = HNSWIndex(6, HNSWParams(m=4, ef_construction=30), rng=rng)
        index.build(rng.standard_normal((60, 6)))
        for step in range(30):
            if step % 3 == 2:
                live = [
                    n for n in range(_node_count(index)) if not index.is_deleted(n)
                ]
                victim = int(rng.choice(live))
                index.remove_edges_to(victim)
                index.mark_deleted(victim)
            else:
                index.insert(rng.standard_normal(6))
            probe = int(rng.integers(0, _node_count(index)))
            assert index.in_neighbors(probe) == _reference_in_neighbors(index, probe)

    def test_remove_edges_to_repair_semantics_unchanged(self):
        """The Section V-D repair pipeline behaves exactly as the seed's.

        After unlink + tombstone + repair, the victim has no in-edges at
        any layer, the former in-neighbors keep valid (capped,
        victim-free) neighbor lists, and searches never return the
        victim.
        """
        rng = np.random.default_rng(17)
        vectors = rng.standard_normal((120, 8))
        index = HNSWIndex(8, HNSWParams(m=6, ef_construction=50), rng=rng)
        index.build(vectors)
        victim = 11
        in_neighbors = index.in_neighbors(victim)
        assert in_neighbors, "test needs a victim with in-edges"
        index.remove_edges_to(victim)
        index.mark_deleted(victim)
        for neighbor in in_neighbors:
            index.repair_node(neighbor)
        for layer in range(index.max_level + 1):
            assert index.in_neighbors(victim, layer) == []
        for neighbor in in_neighbors:
            for layer in range(index.node_level(neighbor) + 1):
                neighbor_list = index.neighbors(neighbor, layer)
                assert victim not in neighbor_list
                assert len(neighbor_list) <= index.params.max_degree(layer)
        ids, _ = index.search(vectors[victim], 10, ef_search=60)
        assert victim not in ids.tolist()


class TestTombstoneBeam:
    def test_hnsw_returns_k_live_results_despite_tombstones(self):
        """Tombstones inside the ef beam must not starve the answer."""
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((90, 8))
        index = HNSWIndex(8, HNSWParams(m=6, ef_construction=60), rng=rng)
        index.build(vectors)
        query = vectors[0] + 0.01
        # Tombstone the 40 nearest nodes: with ef_search=12 a fixed-width
        # beam would be wall-to-wall tombstones and return far fewer than
        # k live ids.
        near, _ = index.search(query, 40, ef_search=90)
        for node in near.tolist():
            index.mark_deleted(node)
        for method in (index.search, index.search_vectorized):
            ids, dists = method(query, 10, ef_search=12)
            assert ids.shape[0] == 10
            assert not set(ids.tolist()) & _deleted(index)
            assert np.all(np.diff(dists) >= 0)

    def test_nsg_returns_k_live_results_despite_tombstones(self):
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((90, 8))
        index = NSGIndex(vectors, NSGParams(knn=8, max_degree=6))
        query = vectors[0] + 0.01
        near, _ = index.search(query, 40, ef_search=90)
        for node in near.tolist():
            index.mark_deleted(node)
        for method in (index.search, index.search_vectorized):
            ids, dists = method(query, 10, ef_search=12)
            assert ids.shape[0] == 10
            assert not set(ids.tolist()) & _deleted(index)
            assert np.all(np.diff(dists) >= 0)


class TestSearchMode:
    def test_cached_per_generation_and_invalidated_on_mutation(self):
        rng = np.random.default_rng(5)
        index = HNSWIndex(6, HNSWParams(m=4, ef_construction=30), rng=rng)
        index.build(rng.standard_normal((40, 6)))
        mode = index.search_mode()
        assert index.search_mode() is mode  # cached, same generation
        index.insert(rng.standard_normal(6))
        fresh = index.search_mode()
        assert fresh is not mode
        assert fresh.indptr[0].shape[0] == _node_count(index) + 1

    def test_adopted_snapshot_answers_identically(self):
        def build():
            rng = np.random.default_rng(6)
            index = HNSWIndex(6, HNSWParams(m=4, ef_construction=40), rng=rng)
            index.build(np.random.default_rng(7).standard_normal((80, 6)))
            return index

        index, twin = build(), build()
        twin.adopt_search_mode(index.search_mode_arrays())
        # Zero-copy: the twin serves the publisher's arrays themselves.
        assert twin.search_mode().indptr[0] is index.search_mode().indptr[0]
        assert twin.search_mode().indices[0] is index.search_mode().indices[0]
        query = np.random.default_rng(8).standard_normal(6)
        stats_a, stats_b = SearchStats(), SearchStats()
        ids_a, dists_a = index.search_vectorized(query, 5, stats=stats_a)
        ids_b, dists_b = twin.search_vectorized(query, 5, stats=stats_b)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(dists_a, dists_b)
        assert stats_a.distance_computations == stats_b.distance_computations
        assert stats_a.hops == stats_b.hops

    def test_vectorized_matches_heap_on_the_same_graph(self, medium_graph):
        index, vectors = medium_graph
        rng = np.random.default_rng(8)
        for query in rng.standard_normal((5, 12)):
            stats_h, stats_v = SearchStats(), SearchStats()
            ids_h, dists_h = index.search(query, 7, ef_search=40, stats=stats_h)
            ids_v, dists_v = index.search_vectorized(
                query, 7, ef_search=40, stats=stats_v
            )
            assert np.array_equal(ids_h, ids_v)
            assert np.array_equal(dists_h, dists_v)
            assert stats_h.distance_computations == stats_v.distance_computations
            assert stats_h.hops == stats_v.hops

    @pytest.mark.parametrize("with_tombstones", [False, True])
    def test_lockstep_batch_matches_per_query_search(
        self, medium_graph, with_tombstones
    ):
        """``search_batch`` replays each query's solo beam exactly.

        The lockstep rounds fuse distance blocks across queries, so this
        pins the invariant the fusion relies on: per-row reductions are
        independent of batch composition, and every query's ids, dists
        and stats counters equal the single-query call's.
        """
        index, vectors = medium_graph
        if with_tombstones:
            # A private copy so the module-scoped graph stays pristine.
            rng = np.random.default_rng(42)
            index = HNSWIndex(12, HNSWParams(m=6, ef_construction=60), rng=rng)
            index.build(np.random.default_rng(42).standard_normal((150, 12)))
            for node in (3, 17, 40, 41, 99):
                index.mark_deleted(node)
        queries = np.random.default_rng(13).standard_normal((9, 12))
        stats_batch = [SearchStats() for _ in range(9)]
        batched = index.search_batch(queries, 7, ef_search=40, stats_list=stats_batch)
        for row in range(9):
            stats_solo = SearchStats()
            ids, dists = index.search(
                queries[row], 7, ef_search=40, stats=stats_solo
            )
            assert np.array_equal(batched[row][0], ids)
            assert np.array_equal(batched[row][1], dists)
            assert (
                stats_batch[row].distance_computations
                == stats_solo.distance_computations
            )
            assert stats_batch[row].hops == stats_solo.hops

    def test_nsg_lockstep_batch_matches_per_query_search(self):
        rng = np.random.default_rng(21)
        vectors = rng.standard_normal((120, 10))
        index = NSGIndex(vectors, NSGParams(knn=10, max_degree=8))
        for node in (5, 6, 70):
            index.mark_deleted(node)
        queries = rng.standard_normal((6, 10))
        stats_batch = [SearchStats() for _ in range(6)]
        batched = index.search_batch(queries, 5, ef_search=24, stats_list=stats_batch)
        for row in range(6):
            stats_solo = SearchStats()
            ids, dists = index.search(queries[row], 5, ef_search=24, stats=stats_solo)
            assert np.array_equal(batched[row][0], ids)
            assert np.array_equal(batched[row][1], dists)
            assert (
                stats_batch[row].distance_computations
                == stats_solo.distance_computations
            )
            assert stats_batch[row].hops == stats_solo.hops
