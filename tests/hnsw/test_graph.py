"""HNSW graph tests: construction invariants, search quality, maintenance."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import HNSWIndex, HNSWParams, SearchStats


@pytest.fixture(scope="module")
def built_graph():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((400, 16))
    index = HNSWIndex(16, HNSWParams(m=8, ef_construction=80), rng=rng).build(vectors)
    return index, vectors


class TestParams:
    def test_defaults(self):
        params = HNSWParams()
        assert params.m == 16
        assert params.max_degree(0) == 32
        assert params.max_degree(1) == 16

    def test_ml_default(self):
        params = HNSWParams(m=16)
        assert np.isclose(params.ml, 1.0 / np.log(16))

    def test_ml_override(self):
        assert HNSWParams(level_multiplier=0.5).ml == 0.5

    def test_validation(self):
        with pytest.raises(ParameterError):
            HNSWParams(m=1)
        with pytest.raises(ParameterError):
            HNSWParams(ef_construction=0)


class TestConstruction:
    def test_size(self, built_graph):
        index, vectors = built_graph
        assert index.size == vectors.shape[0]

    def test_degree_bounds_respected(self, built_graph):
        index, _ = built_graph
        for node in range(index.size):
            for level in range(index.node_level(node) + 1):
                degree = len(index.neighbors(node, level))
                assert degree <= index.params.max_degree(level)

    def test_edges_point_to_valid_nodes(self, built_graph):
        index, _ = built_graph
        for node in range(index.size):
            for neighbor in index.neighbors(node, 0):
                assert 0 <= neighbor < index.size
                assert neighbor != node

    def test_level_distribution_geometric(self):
        rng = np.random.default_rng(1)
        index = HNSWIndex(4, HNSWParams(m=8, ef_construction=20), rng=rng)
        index.build(rng.standard_normal((600, 4)))
        levels = [index.node_level(i) for i in range(index.size)]
        share_level0 = sum(1 for level in levels if level == 0) / len(levels)
        # With mL = 1/ln(8), P(level=0) = 1 - e^{-ln 8} = 7/8.
        assert 0.8 < share_level0 < 0.95

    def test_entry_point_at_max_level(self, built_graph):
        index, _ = built_graph
        assert index.node_level(index.entry_point) == index.max_level

    def test_empty_graph_search(self):
        index = HNSWIndex(4)
        ids, dists = index.search(np.zeros(4), 3)
        assert ids.shape == (0,)

    def test_single_node_graph(self):
        rng = np.random.default_rng(2)
        index = HNSWIndex(4, rng=rng)
        index.insert(np.ones(4))
        ids, dists = index.search(np.ones(4), 1)
        assert ids.tolist() == [0]
        assert dists[0] == pytest.approx(0.0)

    def test_build_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            HNSWIndex(4).build(np.zeros((3, 5)))

    def test_insert_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            HNSWIndex(4).insert(np.zeros(5))

    def test_nonpositive_dim(self):
        with pytest.raises(ParameterError):
            HNSWIndex(0)


class TestSearch:
    def test_recall_floor(self, built_graph):
        index, vectors = built_graph
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((20, 16))
        recalls = []
        for query in queries:
            found, _ = index.search(query, 10, ef_search=80)
            exact, _ = exact_knn(vectors, query, 10)
            recalls.append(len(set(found.tolist()) & set(exact.tolist())) / 10)
        assert np.mean(recalls) >= 0.9

    def test_results_sorted_by_distance(self, built_graph):
        index, _ = built_graph
        query = np.random.default_rng(4).standard_normal(16)
        _, dists = index.search(query, 10, ef_search=60)
        assert np.all(np.diff(dists) >= 0)

    def test_higher_ef_no_worse(self, built_graph):
        index, vectors = built_graph
        rng = np.random.default_rng(5)
        queries = rng.standard_normal((10, 16))

        def recall(ef):
            total = 0.0
            for query in queries:
                found, _ = index.search(query, 10, ef_search=ef)
                exact, _ = exact_knn(vectors, query, 10)
                total += len(set(found.tolist()) & set(exact.tolist())) / 10
            return total / len(queries)

        assert recall(120) >= recall(12) - 0.05

    def test_self_query(self, built_graph):
        index, vectors = built_graph
        found, dists = index.search(vectors[42], 1, ef_search=40)
        assert found[0] == 42
        assert dists[0] == pytest.approx(0.0)

    def test_stats_populated(self, built_graph):
        index, _ = built_graph
        stats = SearchStats()
        index.search(np.random.default_rng(6).standard_normal(16), 5, ef_search=40, stats=stats)
        assert stats.distance_computations > 0
        assert stats.hops > 0

    def test_stats_scale_with_ef(self, built_graph):
        index, _ = built_graph
        query = np.random.default_rng(7).standard_normal(16)
        low, high = SearchStats(), SearchStats()
        index.search(query, 5, ef_search=10, stats=low)
        index.search(query, 5, ef_search=150, stats=high)
        assert high.distance_computations > low.distance_computations

    def test_k_validation(self, built_graph):
        index, _ = built_graph
        with pytest.raises(ParameterError):
            index.search(np.zeros(16), 0)

    def test_ef_below_k_rejected(self, built_graph):
        index, _ = built_graph
        with pytest.raises(ParameterError):
            index.search(np.zeros(16), 10, ef_search=5)

    def test_query_dim_validation(self, built_graph):
        index, _ = built_graph
        with pytest.raises(DimensionMismatchError):
            index.search(np.zeros(7), 3)


class TestMaintenance:
    @pytest.fixture()
    def small_graph(self):
        rng = np.random.default_rng(8)
        vectors = rng.standard_normal((120, 8))
        index = HNSWIndex(8, HNSWParams(m=6, ef_construction=40), rng=rng).build(vectors)
        return index, vectors

    def test_mark_deleted_hides_from_search(self, small_graph):
        index, vectors = small_graph
        target = 17
        index.mark_deleted(target)
        found, _ = index.search(vectors[target], 5, ef_search=60)
        assert target not in found

    def test_deleted_entry_point_reassigned(self, small_graph):
        index, _ = small_graph
        old_entry = index.entry_point
        index.mark_deleted(old_entry)
        assert index.entry_point != old_entry
        assert not index.is_deleted(index.entry_point)

    def test_remove_edges_to(self, small_graph):
        index, _ = small_graph
        victim = 30
        assert index.in_neighbors(victim)
        index.remove_edges_to(victim)
        assert not index.in_neighbors(victim)

    def test_repair_restores_connectivity(self, small_graph):
        index, vectors = small_graph
        victim = 50
        in_neighbors = index.in_neighbors(victim)
        index.remove_edges_to(victim)
        index.mark_deleted(victim)
        for neighbor in in_neighbors:
            index.repair_node(neighbor)
        for neighbor in in_neighbors[:3]:
            assert index.neighbors(neighbor, 0), "repaired node must have edges"

    def test_mark_deleted_out_of_range(self, small_graph):
        index, _ = small_graph
        with pytest.raises(IndexError):
            index.mark_deleted(1000)

    def test_size_reflects_deletions(self, small_graph):
        index, _ = small_graph
        before = index.size
        index.mark_deleted(3)
        assert index.size == before - 1


class TestIntrospection:
    def test_degree_histogram(self, built_graph):
        index, _ = built_graph
        histogram = index.degree_histogram(0)
        assert sum(histogram.values()) == index.size
        assert max(histogram) <= index.params.max_degree(0)

    def test_edge_count(self, built_graph):
        index, _ = built_graph
        assert index.edge_count(0) == sum(
            degree * count for degree, count in index.degree_histogram(0).items()
        )

    def test_adjacency_arrays_match_neighbor_lists(self, built_graph):
        index, _ = built_graph
        levels, edges = index.adjacency_arrays()
        assert levels.dtype == np.int64 and edges.dtype == np.int64
        assert levels.tolist() == [
            index.node_level(i) for i in range(levels.shape[0])
        ]
        expected = [
            (node, level, neighbor)
            for node in range(levels.shape[0])
            for level in range(index.node_level(node) + 1)
            for neighbor in index.neighbors(node, level)
        ]
        assert [tuple(row) for row in edges.tolist()] == expected

    def test_adjacency_arrays_empty_graph(self):
        levels, edges = HNSWIndex(4).adjacency_arrays()
        assert levels.shape == (0,)
        assert edges.shape == (0, 3)

    def test_deleted_ids_sorted(self):
        rng = np.random.default_rng(3)
        index = HNSWIndex(4, HNSWParams(m=4, ef_construction=10), rng=rng)
        index.build(rng.standard_normal((20, 4)))
        assert index.deleted_ids().tolist() == []
        for node in (7, 2, 11):
            index.mark_deleted(node)
        assert index.deleted_ids().tolist() == [2, 7, 11]
        assert index.deleted_ids().dtype == np.int64


class TestBulkBuild:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParameterError):
            HNSWIndex(4).build(np.zeros((3, 4)), mode="turbo")

    def test_bulk_requires_empty_graph(self):
        rng = np.random.default_rng(0)
        index = HNSWIndex(4, HNSWParams(m=4, ef_construction=10), rng=rng)
        index.insert(np.zeros(4))
        with pytest.raises(ParameterError):
            index.build(rng.standard_normal((5, 4)), mode="bulk")

    def test_bulk_empty_input(self):
        index = HNSWIndex(4).build(np.zeros((0, 4)), mode="bulk")
        assert index.size == 0
        assert index.entry_point is None

    def test_bulk_single_row(self):
        index = HNSWIndex(4, rng=np.random.default_rng(0)).build(
            np.ones((1, 4)), mode="bulk"
        )
        assert index.size == 1
        assert index.entry_point == 0

    def test_bulk_matches_sequential(self):
        rng = np.random.default_rng(9)
        vectors = rng.standard_normal((250, 8))
        sequential = HNSWIndex(
            8, HNSWParams(m=6, ef_construction=30), rng=np.random.default_rng(1)
        ).build(vectors)
        bulk = HNSWIndex(
            8, HNSWParams(m=6, ef_construction=30), rng=np.random.default_rng(1)
        ).build(vectors, mode="bulk")
        assert bulk.entry_point == sequential.entry_point
        seq_levels, seq_edges = sequential.adjacency_arrays()
        bulk_levels, bulk_edges = bulk.adjacency_arrays()
        assert np.array_equal(seq_levels, bulk_levels)
        assert np.array_equal(seq_edges, bulk_edges)

    def test_bulk_graph_supports_maintenance(self):
        rng = np.random.default_rng(4)
        vectors = rng.standard_normal((60, 6))
        index = HNSWIndex(
            6, HNSWParams(m=4, ef_construction=20), rng=rng
        ).build(vectors, mode="bulk")
        # Post-bulk inserts extend the converted graph like any other.
        new_id = index.insert(vectors[0] + 0.01)
        assert new_id == 60
        ids, _ = index.search(vectors[0], 3, ef_search=30)
        assert new_id in ids.tolist() or 0 in ids.tolist()
        index.mark_deleted(0)
        ids, _ = index.search(vectors[0], 3, ef_search=30)
        assert 0 not in ids.tolist()

    def test_bulk_recall_matches_sequential_quality(self):
        rng = np.random.default_rng(11)
        vectors = rng.standard_normal((300, 12))
        queries = rng.standard_normal((10, 12))
        index = HNSWIndex(
            12, HNSWParams(m=8, ef_construction=60), rng=np.random.default_rng(2)
        ).build(vectors, mode="bulk")
        hits = 0
        for query in queries:
            truth = exact_knn(vectors, query, 5)[0]
            found, _ = index.search(query, 5, ef_search=80)
            hits += len(set(found.tolist()) & set(truth.tolist()))
        assert hits / (5 * len(queries)) > 0.8
