"""Exact k-NN tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.bruteforce import BruteForceIndex, exact_knn


class TestExactKnn:
    def test_known_neighbors(self):
        vectors = np.array([[0.0], [1.0], [5.0], [6.0]])
        ids, dists = exact_knn(vectors, np.array([0.9]), 2)
        assert ids.tolist() == [1, 0]
        assert np.allclose(dists, [0.01, 0.81])

    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((100, 6))
        _, dists = exact_knn(vectors, rng.standard_normal(6), 10)
        assert np.all(np.diff(dists) >= 0)

    def test_k_clamped_to_n(self):
        vectors = np.zeros((3, 2))
        ids, _ = exact_knn(vectors, np.zeros(2), 10)
        assert ids.shape[0] == 3

    def test_matches_full_sort(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((200, 4))
        query = rng.standard_normal(4)
        ids, _ = exact_knn(vectors, query, 7)
        full = np.argsort(((vectors - query) ** 2).sum(axis=1), kind="stable")[:7]
        assert ids.tolist() == full.tolist()

    def test_validation(self):
        with pytest.raises(ParameterError):
            exact_knn(np.zeros((3, 2)), np.zeros(2), 0)
        with pytest.raises(DimensionMismatchError):
            exact_knn(np.zeros((3, 2)), np.zeros(3), 1)
        with pytest.raises(ParameterError):
            exact_knn(np.zeros(3), np.zeros(3), 1)


class TestBruteForceIndex:
    def test_search(self):
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((50, 4))
        index = BruteForceIndex(vectors)
        assert index.size == 50
        assert index.dim == 4
        ids, _ = index.search(vectors[7], 1)
        assert ids[0] == 7

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            BruteForceIndex(np.zeros((0, 4)))
