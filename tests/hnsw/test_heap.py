"""Heap tests: numeric bounded heap and the comparison-oracle heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hnsw.heap import BoundedMaxHeap, ComparisonMaxHeap


class TestBoundedMaxHeap:
    def test_keeps_k_smallest(self):
        heap = BoundedMaxHeap(3)
        for value in [9.0, 1.0, 7.0, 3.0, 5.0]:
            heap.push(value, int(value))
        kept = [item for _, item in heap.items_sorted()]
        assert kept == [1, 3, 5]

    def test_top_value_is_bound(self):
        heap = BoundedMaxHeap(2)
        heap.push(4.0, 4)
        heap.push(2.0, 2)
        assert heap.top_value() == 4.0
        heap.push(3.0, 3)
        assert heap.top_value() == 3.0

    def test_push_returns_retention(self):
        heap = BoundedMaxHeap(1)
        assert heap.push(5.0, 5)
        assert not heap.push(9.0, 9)
        assert heap.push(1.0, 1)

    def test_empty_top_raises(self):
        with pytest.raises(IndexError):
            BoundedMaxHeap(2).top_value()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=30, deadline=None)
    def test_matches_sorted_property(self, values, k):
        heap = BoundedMaxHeap(k)
        for i, value in enumerate(values):
            heap.push(value, i)
        kept_values = [v for v, _ in heap.items_sorted()]
        assert kept_values == sorted(values)[:k]


def _oracle_for(dists):
    def is_farther(a: int, b: int) -> bool:
        return dists[a] >= dists[b]

    return is_farther


class TestComparisonMaxHeap:
    def test_keeps_k_nearest_by_oracle(self):
        rng = np.random.default_rng(0)
        dists = rng.uniform(0, 100, size=40)
        heap = ComparisonMaxHeap(5, _oracle_for(dists))
        for item in range(40):
            heap.offer(item)
        expected = set(np.argsort(dists)[:5].tolist())
        assert set(heap.items()) == expected

    def test_top_is_farthest(self):
        dists = {0: 1.0, 1: 9.0, 2: 5.0}
        heap = ComparisonMaxHeap(3, _oracle_for(dists))
        for item in range(3):
            heap.offer(item)
        assert heap.top() == 1

    def test_offer_rejects_farther_when_full(self):
        dists = {0: 1.0, 1: 2.0, 2: 99.0}
        heap = ComparisonMaxHeap(2, _oracle_for(dists))
        assert heap.offer(0)
        assert heap.offer(1)
        assert not heap.offer(2)
        assert set(heap.items()) == {0, 1}

    def test_oracle_calls_logarithmic(self):
        # Each full-heap offer costs at most 1 + O(log k) comparisons.
        rng = np.random.default_rng(1)
        dists = rng.uniform(0, 100, size=200)
        k = 16
        heap = ComparisonMaxHeap(k, _oracle_for(dists))
        for item in range(200):
            heap.offer(item)
        per_offer = heap.oracle_calls / 200
        assert per_offer <= 2 * (np.log2(k) + 1)

    def test_items_sorted_by_oracle(self):
        rng = np.random.default_rng(2)
        dists = rng.uniform(0, 10, size=30)
        heap = ComparisonMaxHeap(6, _oracle_for(dists))
        for item in range(30):
            heap.offer(item)
        ordered = heap.items_sorted_by_oracle()
        ordered_dists = [dists[i] for i in ordered]
        assert ordered_dists == sorted(ordered_dists)

    def test_push_full_raises(self):
        heap = ComparisonMaxHeap(1, _oracle_for({0: 1.0, 1: 2.0}))
        heap.push(0)
        with pytest.raises(IndexError):
            heap.push(1)

    def test_empty_top_raises(self):
        with pytest.raises(IndexError):
            ComparisonMaxHeap(2, _oracle_for({})).top()

    def test_replace_top_empty_raises(self):
        with pytest.raises(IndexError):
            ComparisonMaxHeap(2, _oracle_for({})).replace_top(0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ComparisonMaxHeap(0, _oracle_for({}))

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60,
                    unique=True),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_matches_sorted_property(self, values, k):
        dists = {i: float(v) for i, v in enumerate(values)}
        heap = ComparisonMaxHeap(k, _oracle_for(dists))
        for item in range(len(values)):
            heap.offer(item)
        expected = set(sorted(range(len(values)), key=lambda i: dists[i])[:k])
        assert set(heap.items()) == expected

    def test_never_observes_distance_values(self):
        # The heap's only interface to "distance" is the boolean oracle —
        # verify by feeding an oracle that works on opaque tokens.
        order = ["near", "mid", "far"]
        token_rank = {t: i for i, t in enumerate(order)}

        def is_farther(a, b):
            return token_rank[a] >= token_rank[b]

        heap = ComparisonMaxHeap(2, is_farther)
        for token in ("far", "near", "mid"):
            heap.offer(token)
        assert set(heap.items()) == {"near", "mid"}
