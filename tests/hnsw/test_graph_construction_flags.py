"""HNSW construction-option tests: selection heuristic variants."""

import numpy as np
import pytest

from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import HNSWIndex, HNSWParams


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(0)
    return rng.standard_normal((250, 12))


def _recall(index, vectors, num_queries=12, seed=1):
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(num_queries):
        query = rng.standard_normal(12)
        found, _ = index.search(query, 10, ef_search=60)
        exact, _ = exact_knn(vectors, query, 10)
        total += len(set(found.tolist()) & set(exact.tolist())) / 10
    return total / num_queries


class TestSelectionHeuristicFlags:
    def test_extend_candidates_builds_working_graph(self, vectors):
        index = HNSWIndex(
            12,
            HNSWParams(m=6, ef_construction=40, extend_candidates=True),
            rng=np.random.default_rng(2),
        ).build(vectors)
        assert _recall(index, vectors) >= 0.8

    def test_keep_pruned_false_builds_working_graph(self, vectors):
        index = HNSWIndex(
            12,
            HNSWParams(m=6, ef_construction=40, keep_pruned=False),
            rng=np.random.default_rng(3),
        ).build(vectors)
        assert _recall(index, vectors) >= 0.7

    def test_keep_pruned_false_gives_sparser_graph(self, vectors):
        dense = HNSWIndex(
            12, HNSWParams(m=6, ef_construction=40, keep_pruned=True),
            rng=np.random.default_rng(4),
        ).build(vectors)
        sparse = HNSWIndex(
            12, HNSWParams(m=6, ef_construction=40, keep_pruned=False),
            rng=np.random.default_rng(4),
        ).build(vectors)
        assert sparse.edge_count(0) <= dense.edge_count(0)

    def test_heuristic_diversifies_neighbors(self, vectors):
        # The dominance rule: for a selected neighbor list of a node,
        # each neighbor should not be strictly dominated by another
        # (closer to that other neighbor than to the node) unless it was
        # backfilled.  Check the no-backfill configuration.
        index = HNSWIndex(
            12, HNSWParams(m=6, ef_construction=40, keep_pruned=False),
            rng=np.random.default_rng(5),
        ).build(vectors)
        stored = index.vectors
        violations = 0
        checked = 0
        for node in range(0, 250, 25):
            neighbors = index.neighbors(node, 0)
            for i, a in enumerate(neighbors):
                dist_to_node = ((stored[a] - stored[node]) ** 2).sum()
                for b in neighbors[:i]:
                    checked += 1
                    if ((stored[a] - stored[b]) ** 2).sum() < dist_to_node:
                        violations += 1
        # Insertion order effects allow some violations (links added by
        # later nodes), but the heuristic must keep them a minority.
        assert checked > 0
        assert violations / checked < 0.5


class TestLevelMultiplierOverride:
    def test_zero_multiplier_gives_flat_graph(self, vectors):
        index = HNSWIndex(
            12, HNSWParams(m=6, ef_construction=40, level_multiplier=0.0),
            rng=np.random.default_rng(6),
        ).build(vectors)
        assert index.max_level == 0
        assert _recall(index, vectors) >= 0.7

    def test_large_multiplier_gives_tall_graph(self, vectors):
        index = HNSWIndex(
            12, HNSWParams(m=6, ef_construction=40, level_multiplier=1.5),
            rng=np.random.default_rng(7),
        ).build(vectors)
        assert index.max_level >= 3
