"""NSG-style flat graph tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import SearchStats
from repro.hnsw.nsg import NSGIndex, NSGParams


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((300, 10))
    return NSGIndex(vectors, NSGParams(knn=24, max_degree=12)), vectors


class TestConstruction:
    def test_size_and_medoid(self, built):
        index, vectors = built
        assert index.size == 300
        assert 0 <= index.medoid < 300

    def test_medoid_is_central(self, built):
        index, vectors = built
        totals = ((vectors[:, None, :] - vectors[None, :, :]) ** 2).sum(axis=2).sum(axis=1)
        assert index.medoid == int(np.argmin(totals))

    def test_degree_bound(self, built):
        index, _ = built
        for node in range(index.size):
            # +1 slack: the connectivity pass may add a medoid edge.
            assert len(index.neighbors(node)) <= index._params.max_degree + 1

    def test_all_nodes_reachable_from_medoid(self, built):
        index, _ = built
        seen = {index.medoid}
        frontier = [index.medoid]
        while frontier:
            node = frontier.pop()
            for neighbor in index.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert len(seen) == index.size

    def test_single_vector(self):
        index = NSGIndex(np.zeros((1, 4)))
        ids, _ = index.search(np.zeros(4), 1)
        assert ids.tolist() == [0]

    def test_validation(self):
        with pytest.raises(ParameterError):
            NSGIndex(np.zeros((0, 3)))
        with pytest.raises(ParameterError):
            NSGParams(knn=0)
        with pytest.raises(ParameterError):
            NSGParams(max_degree=0)


class TestSearch:
    def test_recall_floor(self, built):
        index, vectors = built
        rng = np.random.default_rng(1)
        recalls = []
        for _ in range(15):
            query = rng.standard_normal(10)
            found, _ = index.search(query, 10, ef_search=60)
            exact, _ = exact_knn(vectors, query, 10)
            recalls.append(len(set(found.tolist()) & set(exact.tolist())) / 10)
        assert np.mean(recalls) >= 0.85

    def test_sorted_results(self, built):
        index, _ = built
        _, dists = index.search(np.random.default_rng(2).standard_normal(10), 8)
        assert np.all(np.diff(dists) >= 0)

    def test_stats(self, built):
        index, _ = built
        stats = SearchStats()
        index.search(np.zeros(10), 5, ef_search=30, stats=stats)
        assert stats.distance_computations > 0

    def test_validation(self, built):
        index, _ = built
        with pytest.raises(ParameterError):
            index.search(np.zeros(10), 0)
        with pytest.raises(ParameterError):
            index.search(np.zeros(10), 10, ef_search=2)
        with pytest.raises(DimensionMismatchError):
            index.search(np.zeros(5), 3)
