"""IVF-Flat index tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import SearchStats
from repro.hnsw.ivf import IVFFlatIndex, IVFParams, kmeans


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((8, 10)) * 8
    assignments = rng.integers(0, 8, size=400)
    vectors = centers[assignments] + rng.standard_normal((400, 10))
    index = IVFFlatIndex(vectors, IVFParams(num_lists=8, train_iterations=8),
                         rng=np.random.default_rng(1))
    return index, vectors


class TestKMeans:
    def test_partitions_everything(self):
        rng = np.random.default_rng(2)
        vectors = rng.standard_normal((100, 4))
        centroids, assignments = kmeans(vectors, 5, 5, rng)
        assert centroids.shape == (5, 4)
        assert assignments.shape == (100,)
        assert set(np.unique(assignments)) <= set(range(5))

    def test_recovers_separated_clusters(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((50, 3)) + 100
        b = rng.standard_normal((50, 3)) - 100
        vectors = np.vstack([a, b])
        _, assignments = kmeans(vectors, 2, 10, rng)
        assert len(set(assignments[:50])) == 1
        assert len(set(assignments[50:])) == 1
        assert assignments[0] != assignments[50]

    def test_clamps_k_to_n(self):
        rng = np.random.default_rng(4)
        centroids, _ = kmeans(rng.standard_normal((3, 2)), 10, 3, rng)
        assert centroids.shape[0] == 3


class TestIVFIndex:
    def test_all_vectors_in_some_list(self, built):
        index, vectors = built
        assert sum(index.list_sizes()) == vectors.shape[0]

    def test_full_probe_is_exact(self, built):
        index, vectors = built
        rng = np.random.default_rng(5)
        query = rng.standard_normal(10)
        ids, _ = index.search(query, 10, nprobe=index.num_lists)
        exact, _ = exact_knn(vectors, query, 10)
        assert set(ids.tolist()) == set(exact.tolist())

    def test_recall_grows_with_nprobe(self, built):
        index, vectors = built
        rng = np.random.default_rng(6)
        queries = rng.standard_normal((15, 10)) * 4

        def recall(nprobe):
            total = 0.0
            for query in queries:
                ids, _ = index.search(query, 10, nprobe=nprobe)
                exact, _ = exact_knn(vectors, query, 10)
                total += len(set(ids.tolist()) & set(exact.tolist())) / 10
            return total / len(queries)

        assert recall(8) >= recall(1)

    def test_results_sorted(self, built):
        index, _ = built
        _, dists = index.search(np.zeros(10), 10, nprobe=4)
        assert np.all(np.diff(dists) >= 0)

    def test_stats(self, built):
        index, _ = built
        stats = SearchStats()
        index.search(np.zeros(10), 5, nprobe=2, stats=stats)
        assert stats.hops == 2
        assert stats.distance_computations > index.num_lists

    def test_validation(self, built):
        index, _ = built
        with pytest.raises(ParameterError):
            index.search(np.zeros(10), 0)
        with pytest.raises(ParameterError):
            index.search(np.zeros(10), 5, nprobe=0)
        with pytest.raises(DimensionMismatchError):
            index.search(np.zeros(4), 5)
        with pytest.raises(ParameterError):
            IVFFlatIndex(np.zeros((0, 4)))
        with pytest.raises(ParameterError):
            IVFParams(num_lists=0)
        with pytest.raises(ParameterError):
            IVFParams(train_iterations=0)


class TestIVFAsFilterBackend:
    def test_ivf_over_dcpe_ciphertexts(self):
        # Section V-A substitutability: IVF built over DCPE ciphertexts
        # plus DCE refine reaches high recall, like HNSW and NSG.
        from repro.core.dce import DCEScheme, distance_comp
        from repro.core.dcpe import DCPEScheme, dcpe_keygen
        from repro.datasets import compute_ground_truth, make_clustered
        from repro.eval.metrics import recall_at_k
        from repro.hnsw.heap import ComparisonMaxHeap

        rng = np.random.default_rng(7)
        dataset = make_clustered(300, 12, 6, num_clusters=8, value_scale=2.0, rng=rng)
        truth = compute_ground_truth(dataset.database, dataset.queries, 10)
        dcpe = DCPEScheme(12, dcpe_keygen(0.3, rng=rng), rng=rng)
        dce = DCEScheme(12, rng=rng)
        sap = dcpe.encrypt_database(dataset.database)
        dce_db = dce.encrypt_database(dataset.database)
        index = IVFFlatIndex(sap, IVFParams(num_lists=8), rng=rng)

        recalls = []
        for i, query in enumerate(dataset.queries):
            candidates, _ = index.search(dcpe.encrypt(query), 60, nprobe=4)
            trapdoor = dce.trapdoor(query)

            def is_farther(a, b):
                return distance_comp(dce_db[a], dce_db[b], trapdoor) >= 0

            heap = ComparisonMaxHeap(10, is_farther)
            for candidate in candidates:
                heap.offer(int(candidate))
            recalls.append(
                recall_at_k(np.array(heap.items()), truth.for_query(i), 10)
            )
        assert np.mean(recalls) >= 0.8
