"""Product quantization tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.pq import PQIndex, PQParams, ProductQuantizer


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((10, 16)) * 6
    assignments = rng.integers(0, 10, size=500)
    return centers[assignments] + rng.standard_normal((500, 16)) * 0.8


@pytest.fixture(scope="module")
def quantizer(workload):
    return ProductQuantizer(
        workload, PQParams(num_subspaces=4, code_bits=5), rng=np.random.default_rng(1)
    )


class TestParams:
    def test_codebook_size(self):
        assert PQParams(code_bits=6).codebook_size == 64

    def test_validation(self):
        with pytest.raises(ParameterError):
            PQParams(num_subspaces=0)
        with pytest.raises(ParameterError):
            PQParams(code_bits=0)
        with pytest.raises(ParameterError):
            PQParams(code_bits=20)
        with pytest.raises(ParameterError):
            PQParams(train_iterations=0)

    def test_subspaces_must_divide_dim(self, workload):
        with pytest.raises(ParameterError):
            ProductQuantizer(workload, PQParams(num_subspaces=5))


class TestQuantizer:
    def test_code_shape_and_range(self, quantizer, workload):
        codes = quantizer.encode(workload[:50])
        assert codes.shape == (50, 4)
        assert codes.max() < 32

    def test_reconstruction_reduces_error_vs_random(self, quantizer, workload):
        codes = quantizer.encode(workload[:100])
        reconstructed = quantizer.decode(codes)
        pq_error = np.linalg.norm(reconstructed - workload[:100], axis=1).mean()
        random_error = np.linalg.norm(
            workload[:100] - workload[100:200], axis=1
        ).mean()
        assert pq_error < random_error / 2

    def test_adc_matches_explicit_reconstruction(self, quantizer, workload):
        rng = np.random.default_rng(2)
        query = rng.standard_normal(16)
        codes = quantizer.encode(workload[:30])
        table = quantizer.distance_table(query)
        adc = quantizer.adc_distances(table, codes)
        reconstructed = quantizer.decode(codes)
        explicit = ((reconstructed - query) ** 2).sum(axis=1)
        assert np.allclose(adc, explicit, rtol=1e-9)

    def test_dim_validation(self, quantizer):
        with pytest.raises(DimensionMismatchError):
            quantizer.encode(np.zeros((3, 10)))
        with pytest.raises(DimensionMismatchError):
            quantizer.distance_table(np.zeros(10))
        with pytest.raises(ParameterError):
            quantizer.decode(np.zeros((3, 7), dtype=np.uint16))


class TestPQIndex:
    def test_search_recall(self, workload):
        index = PQIndex(
            workload, PQParams(num_subspaces=8, code_bits=6),
            rng=np.random.default_rng(3),
        )
        rng = np.random.default_rng(4)
        recalls = []
        for _ in range(10):
            query = workload[rng.integers(0, 500)] + rng.standard_normal(16) * 0.1
            found, _ = index.search(query, 10)
            exact, _ = exact_knn(workload, query, 10)
            recalls.append(len(set(found.tolist()) & set(exact.tolist())) / 10)
        assert np.mean(recalls) >= 0.5  # approximate distances, small codes

    def test_compression(self, workload):
        index = PQIndex(workload, PQParams(num_subspaces=4, code_bits=4),
                        rng=np.random.default_rng(5))
        assert index.code_bytes_per_vector == 8  # vs 16*8 = 128 raw bytes

    def test_k_validation(self, workload):
        index = PQIndex(workload, PQParams(num_subspaces=4, code_bits=3),
                        rng=np.random.default_rng(6))
        with pytest.raises(ParameterError):
            index.search(workload[0], 0)

    def test_k_clamped(self, workload):
        index = PQIndex(workload[:5], PQParams(num_subspaces=4, code_bits=2),
                        rng=np.random.default_rng(7))
        ids, _ = index.search(workload[0], 10)
        assert ids.shape[0] == 5
