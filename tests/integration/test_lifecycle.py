"""Full deployment-lifecycle test: build -> persist -> reload -> maintain
-> query, across the trust boundary, on a realistic-scale profile."""

import warnings

import numpy as np
import pytest

import repro
from repro.core.maintenance import delete_vector, insert_vector
from repro.core.persistence import load_index, load_keys, save_index, save_keys
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k
from repro.hnsw.graph import HNSWParams


def test_top_level_exports():
    assert repro.__version__ == "1.0.0"
    with warnings.catch_warnings():
        # Deprecated exports (SearchReport) warn on access by design;
        # this test only checks that every export resolves.
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


def test_search_stats_merge():
    from repro.hnsw.graph import SearchStats

    a = SearchStats(distance_computations=5, hops=2)
    b = SearchStats(distance_computations=7, hops=3)
    a.merge(b)
    assert a.distance_computations == 12
    assert a.hops == 5


def test_full_lifecycle(tmp_path):
    """The complete story of one deployment.

    1. owner builds + persists index and keys
    2. server process reloads the index (no keys)
    3. user process reloads the keys, queries
    4. owner inserts a new vector; server deletes another
    5. results stay correct throughout
    """
    rng = np.random.default_rng(2025)
    dataset = make_dataset("sift", num_vectors=300, num_queries=5, rng=rng)
    k = 10
    hnsw = HNSWParams(m=8, ef_construction=50)

    # 1. owner side
    owner = DataOwner(dataset.dim, beta=20.0, hnsw_params=hnsw, rng=rng)
    index = owner.build_index(dataset.database)
    save_index(tmp_path / "index.npz", index)
    save_keys(tmp_path / "keys.npz", owner.authorize_user())

    # 2-3. fresh server and user from disk
    server = CloudServer(load_index(tmp_path / "index.npz"))
    user = QueryUser(load_keys(tmp_path / "keys.npz"), rng=np.random.default_rng(1))

    truth = compute_ground_truth(dataset.database, dataset.queries, k)
    recalls = []
    for i, query in enumerate(dataset.queries):
        report = server.answer(user.encrypt_query(query, k), ef_search=120)
        recalls.append(recall_at_k(report.ids, truth.for_query(i), k))
    assert np.mean(recalls) >= 0.85

    # 4. maintenance on the live server index
    new_vector = dataset.database[0] + 1e-3
    new_id = insert_vector(owner, server.index, new_vector)
    found = server.answer(user.encrypt_query(new_vector, 5), ef_search=100)
    assert new_id in found.ids

    victim = int(truth.for_query(0)[0])
    delete_vector(server.index, victim)
    after = server.answer(user.encrypt_query(dataset.queries[0], k), ef_search=120)
    assert victim not in after.ids

    # 5. persist the maintained index and reload once more
    save_index(tmp_path / "index2.npz", server.index)
    server2 = CloudServer(load_index(tmp_path / "index2.npz"))
    again = server2.answer(user.encrypt_query(dataset.queries[0], k), ef_search=120)
    assert victim not in again.ids
    assert set(again.ids.tolist()) == set(after.ids.tolist())


def test_two_users_one_server(small_dataset, fitted_scheme):
    """Multiple authorized users share a server; results agree."""
    keys = fitted_scheme.owner.authorize_user()
    user_a = QueryUser(keys, rng=np.random.default_rng(10))
    user_b = QueryUser(keys, rng=np.random.default_rng(20))
    query = small_dataset.queries[0]
    report_a = fitted_scheme.server.answer(user_a.encrypt_query(query, 10), ef_search=100)
    report_b = fitted_scheme.server.answer(user_b.encrypt_query(query, 10), ef_search=100)
    # Different trapdoor randomness, same comparisons: same result set.
    assert set(report_a.ids.tolist()) == set(report_b.ids.tolist())
