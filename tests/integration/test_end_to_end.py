"""Cross-module integration tests: full pipelines on every dataset profile."""

import numpy as np
import pytest

from repro import PPANNS
from repro.datasets import DATASET_PROFILES, compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k
from repro.hnsw.graph import HNSWParams

SMALL_HNSW = HNSWParams(m=8, ef_construction=50)


@pytest.mark.parametrize("profile", sorted(DATASET_PROFILES))
def test_full_pipeline_per_profile(profile):
    """Owner->server->user flow reaches high recall on every Table I stand-in."""
    rng = np.random.default_rng(hash(profile) % 2**32)
    dataset = make_dataset(profile, num_vectors=250, num_queries=5, rng=rng)
    # Modest beta relative to each profile's coordinate scale.
    beta = 0.05 * dataset.max_abs_coordinate
    scheme = PPANNS(
        dim=dataset.dim, beta=beta, hnsw_params=SMALL_HNSW, rng=rng
    ).fit(dataset.database)
    truth = compute_ground_truth(dataset.database, dataset.queries, 10)
    recalls = [
        recall_at_k(
            scheme.query(q, k=10, ratio_k=8, ef_search=120), truth.for_query(i), 10
        )
        for i, q in enumerate(dataset.queries)
    ]
    assert np.mean(recalls) >= 0.8, f"profile {profile}: {np.mean(recalls)}"


def test_refine_repairs_filter_noise(small_dataset, small_ground_truth):
    """The core claim of the filter-and-refine design: with heavy DCPE
    noise the filter alone degrades, but DCE refinement restores accuracy
    given enough candidates."""
    from tests.conftest import FAST_HNSW

    scheme = PPANNS(
        dim=small_dataset.dim,
        beta=4.0,
        hnsw_params=FAST_HNSW,
        rng=np.random.default_rng(3),
    ).fit(small_dataset.database)
    filter_recall = np.mean(
        [
            recall_at_k(
                scheme.query_filter_only(q, 10, ef_search=200).ids,
                small_ground_truth.for_query(i),
                10,
            )
            for i, q in enumerate(small_dataset.queries)
        ]
    )
    refined_recall = np.mean(
        [
            recall_at_k(
                scheme.query_with_report(q, 10, ratio_k=16, ef_search=200).ids,
                small_ground_truth.for_query(i),
                10,
            )
            for i, q in enumerate(small_dataset.queries)
        ]
    )
    assert filter_recall < 0.98  # noise must actually bite
    assert refined_recall > filter_recall


def test_communication_is_two_messages(fitted_scheme, small_dataset):
    """Section V-C: one upload (C_SAP(q), T_q, k), one download (k ids)."""
    d = small_dataset.dim
    query = small_dataset.queries[0]
    encrypted = fitted_scheme.user.encrypt_query(query, 10)
    report = fitted_scheme.server.answer(encrypted)
    upload = encrypted.upload_bytes()
    download = report.download_bytes()
    assert upload == 4 * d + 8 * (2 * d + 16) + 4
    assert download == 40
    # Against RS-SANN: candidate vectors would dominate at any useful k'.
    assert upload + download < 100 * d


def test_plaintext_hnsw_vs_encrypted_cost_multiple(small_dataset, small_ground_truth):
    """Section VII-B: PP-ANNS costs a small multiple (paper: 3-7x) of
    plaintext HNSW at matched recall.  We assert the multiple is bounded."""
    import time

    from repro.hnsw.graph import HNSWIndex
    from tests.conftest import FAST_HNSW

    rng = np.random.default_rng(4)
    plain = HNSWIndex(small_dataset.dim, FAST_HNSW, rng=rng).build(small_dataset.database)
    scheme = PPANNS(
        dim=small_dataset.dim, beta=0.3, hnsw_params=FAST_HNSW, rng=rng
    ).fit(small_dataset.database)

    encrypted_queries = [scheme.user.encrypt_query(q, 10) for q in small_dataset.queries]
    start = time.perf_counter()
    for _ in range(3):
        for query in small_dataset.queries:
            plain.search(query, 10, ef_search=100)
    plain_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(3):
        for encrypted in encrypted_queries:
            scheme.server.answer(encrypted, ratio_k=8, ef_search=100)
    encrypted_seconds = time.perf_counter() - start

    multiple = encrypted_seconds / plain_seconds
    assert multiple < 25, f"encrypted pipeline is {multiple:.1f}x plaintext"


def test_alternative_graph_backend(small_dataset, small_ground_truth):
    """Section V-A: the index can substitute NSG for HNSW.  Exercise an
    NSG-filtered pipeline manually and check recall."""
    from repro.core.dce import DCEScheme, distance_comp
    from repro.core.dcpe import DCPEScheme, dcpe_keygen
    from repro.hnsw.heap import ComparisonMaxHeap
    from repro.hnsw.nsg import NSGIndex, NSGParams

    rng = np.random.default_rng(5)
    dcpe = DCPEScheme(small_dataset.dim, dcpe_keygen(0.3, rng=rng), rng=rng)
    dce = DCEScheme(small_dataset.dim, rng=rng)
    sap = dcpe.encrypt_database(small_dataset.database)
    dce_db = dce.encrypt_database(small_dataset.database)
    graph = NSGIndex(sap, NSGParams(knn=24, max_degree=12))

    recalls = []
    for i, query in enumerate(small_dataset.queries):
        candidates, _ = graph.search(dcpe.encrypt(query), 80, ef_search=120)
        trapdoor = dce.trapdoor(query)

        def is_farther(a, b):
            return distance_comp(dce_db[a], dce_db[b], trapdoor) >= 0

        heap = ComparisonMaxHeap(10, is_farther)
        for candidate in candidates:
            heap.offer(int(candidate))
        recalls.append(
            recall_at_k(np.array(heap.items()), small_ground_truth.for_query(i), 10)
        )
    assert np.mean(recalls) >= 0.85
