"""Statistical security-surface tests.

These are not proofs — the paper provides those — but executable sanity
checks that the implementation actually delivers the randomization the
proofs assume: fresh randomness per ciphertext, no plaintext visible in
any stored component, comparison-only leakage through the refine phase.
"""

import numpy as np

from repro.core.dce import DCEScheme, distance_comp
from repro.core.dcpe import DCPEScheme, dcpe_keygen


class TestDCECiphertextRandomness:
    def test_two_encryptions_share_no_component(self):
        rng = np.random.default_rng(0)
        scheme = DCEScheme(16, rng=rng)
        p = rng.standard_normal(16)
        a = scheme.encrypt(p).components
        b = scheme.encrypt(p).components
        # Fresh alpha/r'/r_p randomness: no coordinate may coincide.
        assert not np.any(np.isclose(a, b, rtol=1e-12))

    def test_ciphertext_uncorrelated_with_plaintext_slots(self):
        # Across many encryptions of DIFFERENT plaintexts, no ciphertext
        # slot may be a (strongly) linear function of any plaintext slot:
        # the permutations + matrix mixing must spread every coordinate.
        rng = np.random.default_rng(1)
        scheme = DCEScheme(8, rng=rng)
        plaintexts = rng.standard_normal((300, 8))
        ciphertexts = scheme.encrypt_database(plaintexts).components[:, 0, :]
        correlations = []
        for plain_slot in range(8):
            for cipher_slot in range(ciphertexts.shape[1]):
                corr = np.corrcoef(plaintexts[:, plain_slot], ciphertexts[:, cipher_slot])[0, 1]
                correlations.append(abs(corr))
        # Mixing d=8 slots + randomizers: no near-perfect copies survive.
        assert max(correlations) < 0.9

    def test_z_values_randomized_across_trapdoors(self):
        # The same (o, p) pair under fresh trapdoors must give different Z
        # magnitudes (r_q fresh per query) with stable sign.
        rng = np.random.default_rng(2)
        scheme = DCEScheme(8, rng=rng)
        vectors = rng.standard_normal((2, 8))
        q = rng.standard_normal(8)
        db = scheme.encrypt_database(vectors)
        values = [distance_comp(db[0], db[1], scheme.trapdoor(q)) for _ in range(8)]
        assert len({np.sign(v) for v in values}) == 1
        assert np.std(values) / abs(np.mean(values)) > 0.05


class TestDCPERandomness:
    def test_fresh_noise_per_encryption(self):
        rng = np.random.default_rng(3)
        scheme = DCPEScheme(8, dcpe_keygen(2.0, scale=100.0, rng=rng), rng=rng)
        p = rng.standard_normal(8)
        assert not np.allclose(scheme.encrypt(p), scheme.encrypt(p))


class TestKeySeparation:
    def test_distinct_keys_produce_incompatible_worlds(self):
        rng_a = np.random.default_rng(4)
        rng_b = np.random.default_rng(5)
        scheme_a = DCEScheme(8, rng=rng_a)
        scheme_b = DCEScheme(8, rng=rng_b)
        assert scheme_a.key.key_id != scheme_b.key.key_id
        assert not np.allclose(scheme_a.key.kv1, scheme_b.key.kv1)

    def test_server_view_excludes_key_material(self, fitted_scheme):
        # The EncryptedIndex object graph must not reference the DCE key.
        index = fitted_scheme.server.index
        assert not hasattr(index, "key")
        assert not hasattr(index.dce_database, "key")
        # Only the integer key_id tag (for misuse detection) is visible.
        assert isinstance(index.dce_database.key_id, int)
