"""KPA attack tests: Theorems 1-2 and Corollaries 1-2 executed, plus the
DCE control experiment."""

import numpy as np
import pytest

from repro.attacks.aspe_kpa import (
    ASPEAttacker,
    dce_linear_attack_error,
    required_leak_size,
)
from repro.baselines.aspe import ASPEScheme, DistanceTransform
from repro.core.errors import ParameterError

DIM = 10

ALL_BROKEN = [
    DistanceTransform.LINEAR,
    DistanceTransform.EXPONENTIAL,
    DistanceTransform.LOGARITHMIC,
    DistanceTransform.SQUARE,
]


def _run_attack(transform, seed=0):
    rng = np.random.default_rng(seed)
    scheme = ASPEScheme(DIM, transform, rng)
    attacker = ASPEAttacker(DIM, transform)
    leaked = rng.standard_normal((attacker.required_leak_size + 6, DIM)) * 3.0
    leaked_cts = scheme.encrypt_database(leaked)
    queries = [rng.standard_normal(DIM) * 3.0 for _ in range(DIM + 4)]
    trapdoors = [scheme.trapdoor(q) for q in queries]
    victim = rng.standard_normal(DIM) * 3.0
    victim_ct = scheme.encrypt(victim)
    recoveries, recovered_victim = attacker.full_attack(
        scheme, leaked, leaked_cts, trapdoors, victim_ct
    )
    return queries, recoveries, victim, recovered_victim


class TestQueryRecovery:
    @pytest.mark.parametrize("transform", ALL_BROKEN)
    def test_queries_recovered(self, transform):
        queries, recoveries, _, _ = _run_attack(transform)
        for true_query, recovery in zip(queries, recoveries):
            error = np.linalg.norm(recovery.query - true_query) / np.linalg.norm(true_query)
            assert error < 1e-6, f"{transform.value}: {error}"

    def test_insufficient_leak_rejected(self):
        attacker = ASPEAttacker(DIM, DistanceTransform.LINEAR)
        with pytest.raises(ParameterError):
            attacker.recover_query(np.zeros((3, DIM)), np.zeros(3))


class TestDatabaseRecovery:
    @pytest.mark.parametrize("transform", ALL_BROKEN)
    def test_victim_recovered(self, transform):
        _, _, victim, recovered = _run_attack(transform)
        error = np.linalg.norm(recovered - victim) / np.linalg.norm(victim)
        assert error < 1e-6, f"{transform.value}: {error}"

    def test_insufficient_queries_rejected(self):
        attacker = ASPEAttacker(DIM, DistanceTransform.LINEAR)
        with pytest.raises(ParameterError):
            attacker.recover_database_vector([], np.zeros(0))


class TestLeakSizes:
    def test_linear_family(self):
        for transform in (
            DistanceTransform.LINEAR,
            DistanceTransform.EXPONENTIAL,
            DistanceTransform.LOGARITHMIC,
        ):
            assert required_leak_size(DIM, transform) == DIM + 2

    def test_square_is_quadratic(self):
        # (d+2)(d+3)/2 + 1 = 0.5 d^2 + 2.5 d + 4 unknowns (paper's
        # 0.5 d^2 + 2.5 d + 3 features plus the r3 constant).
        assert required_leak_size(DIM, DistanceTransform.SQUARE) == (DIM + 2) * (DIM + 3) // 2 + 1

    def test_attacker_validation(self):
        with pytest.raises(ParameterError):
            ASPEAttacker(0, DistanceTransform.LINEAR)


class TestDCEResists:
    def test_attack_error_large(self):
        # The identical attack shape against DCE: reconstruction error is
        # ~10 orders of magnitude worse than against any ASPE variant.
        error = dce_linear_attack_error(DIM, num_leaked=80, rng=np.random.default_rng(5))
        assert error > 0.02

    def test_requires_enough_leaks(self):
        with pytest.raises(ParameterError):
            dce_linear_attack_error(DIM, num_leaked=3, rng=np.random.default_rng(0))

    def test_gap_between_aspe_and_dce(self):
        queries, recoveries, _, _ = _run_attack(DistanceTransform.LINEAR, seed=9)
        aspe_error = np.linalg.norm(recoveries[0].query - queries[0]) / np.linalg.norm(queries[0])
        dce_error = dce_linear_attack_error(DIM, num_leaked=80, rng=np.random.default_rng(9))
        assert dce_error / max(aspe_error, 1e-300) > 1e6

    def test_wide_randomizers_harden_further(self):
        # The EXPERIMENTS.md reproduction note: log-uniform randomizers
        # over several decades dilute the |Z|-magnitude signal.
        narrow = np.mean([
            dce_linear_attack_error(DIM, 80, np.random.default_rng(s))
            for s in range(4)
        ])
        wide = np.mean([
            dce_linear_attack_error(
                DIM, 80, np.random.default_rng(s), randomizer_range=(2**-8, 2**8)
            )
            for s in range(4)
        ])
        assert wide > 2 * narrow

    def test_wide_randomizers_keep_comparisons_exact(self):
        from repro.core.dce import DCEScheme, distance_comp

        rng = np.random.default_rng(13)
        scheme = DCEScheme(DIM, rng=rng, randomizer_range=(2**-8, 2**8))
        vectors = rng.standard_normal((15, DIM)) * 4.0
        q = rng.standard_normal(DIM) * 4.0
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(15):
            for j in range(15):
                if i != j:
                    z = distance_comp(db[i], db[j], t)
                    assert (z < 0) == (dists[i] < dists[j])

    def test_invalid_randomizer_range(self):
        from repro.core.dce import DCEScheme

        with pytest.raises(ValueError):
            DCEScheme(8, randomizer_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            DCEScheme(8, randomizer_range=(2.0, 1.0))
