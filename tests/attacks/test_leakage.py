"""Index-leakage quantification tests."""

import numpy as np
import pytest

from repro.attacks.leakage import (
    neighborhood_overlap,
    profile_beta_leakage,
    scaled_reconstruction_error,
)
from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.core.errors import ParameterError
from repro.datasets import make_clustered


@pytest.fixture(scope="module")
def workload():
    return make_clustered(
        num_vectors=250, dim=12, num_queries=5, num_clusters=8,
        value_scale=2.0, rng=np.random.default_rng(21),
    ).database


class TestNeighborhoodOverlap:
    def test_zero_noise_leaks_everything(self, workload):
        scheme = DCPEScheme(12, dcpe_keygen(0.0, scale=64.0),
                            rng=np.random.default_rng(1))
        ciphertexts = scheme.encrypt_database(workload)
        overlap = neighborhood_overlap(workload, ciphertexts, k=10,
                                       sample_size=40, rng=np.random.default_rng(2))
        assert overlap == 1.0

    def test_noise_reduces_overlap(self, workload):
        rng = np.random.default_rng(3)
        noisy = DCPEScheme(12, dcpe_keygen(8.0, scale=64.0, rng=rng), rng=rng)
        ciphertexts = noisy.encrypt_database(workload)
        overlap = neighborhood_overlap(workload, ciphertexts, k=10,
                                       sample_size=40, rng=rng)
        assert overlap < 1.0

    def test_misaligned_inputs_rejected(self, workload):
        with pytest.raises(ParameterError):
            neighborhood_overlap(workload, workload[:-1])

    def test_too_small_database_rejected(self):
        with pytest.raises(ParameterError):
            neighborhood_overlap(np.zeros((5, 3)), np.zeros((5, 3)), k=10)


class TestReconstructionError:
    def test_zero_noise_zero_error(self, workload):
        scheme = DCPEScheme(12, dcpe_keygen(0.0, scale=64.0),
                            rng=np.random.default_rng(4))
        ciphertexts = scheme.encrypt_database(workload)
        assert scaled_reconstruction_error(workload, ciphertexts, 64.0) < 1e-12

    def test_error_grows_with_beta(self, workload):
        errors = []
        for beta in (1.0, 8.0):
            rng = np.random.default_rng(5)
            scheme = DCPEScheme(12, dcpe_keygen(beta, scale=64.0, rng=rng), rng=rng)
            ciphertexts = scheme.encrypt_database(workload)
            errors.append(scaled_reconstruction_error(workload, ciphertexts, 64.0))
        assert errors[1] > errors[0]


class TestProfile:
    def test_monotone_trade_off(self, workload):
        profiles = profile_beta_leakage(
            workload, betas=(0.0, 4.0, 16.0), scale=64.0, k=10,
            sample_size=40, rng=np.random.default_rng(6),
        )
        overlaps = [p.neighborhood_overlap for p in profiles]
        errors = [p.reconstruction_error for p in profiles]
        # Privacy improves (overlap falls, reconstruction error rises)
        # as beta increases — the quantified Section V-A argument.
        assert overlaps[0] >= overlaps[-1]
        assert errors[0] <= errors[-1]
        assert profiles[0].beta == 0.0
