"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.datasets.synthetic import (
    DATASET_PROFILES,
    make_clustered,
    make_dataset,
)


class TestMakeClustered:
    def test_shapes(self):
        dataset = make_clustered(100, 16, 10, rng=np.random.default_rng(0))
        assert dataset.database.shape == (100, 16)
        assert dataset.queries.shape == (10, 16)
        assert dataset.dim == 16
        assert dataset.num_vectors == 100
        assert dataset.num_queries == 10

    def test_deterministic_with_seed(self):
        a = make_clustered(50, 8, 5, rng=np.random.default_rng(7))
        b = make_clustered(50, 8, 5, rng=np.random.default_rng(7))
        assert np.array_equal(a.database, b.database)
        assert np.array_equal(a.queries, b.queries)

    def test_nonnegative_option(self):
        dataset = make_clustered(
            200, 8, 5, nonnegative=True, rng=np.random.default_rng(1)
        )
        assert np.all(dataset.database >= 0)

    def test_clustering_structure(self):
        # Clustered data must have lower nearest-neighbor distances than
        # i.i.d. Gaussian data of the same scale.
        rng = np.random.default_rng(2)
        clustered = make_clustered(
            300, 8, 5, num_clusters=5, cluster_spread=0.1, value_scale=10.0, rng=rng
        )
        from repro.hnsw.bruteforce import exact_knn

        _, cluster_dists = exact_knn(clustered.database[1:], clustered.database[0], 1)
        uniform = rng.standard_normal((300, 8)) * 10.0
        _, uniform_dists = exact_knn(uniform[1:], uniform[0], 1)
        assert cluster_dists[0] < uniform_dists[0]

    def test_max_abs_coordinate(self):
        dataset = make_clustered(50, 4, 5, rng=np.random.default_rng(3))
        assert dataset.max_abs_coordinate == np.max(np.abs(dataset.database))

    def test_validation(self):
        with pytest.raises(ParameterError):
            make_clustered(0, 4, 5)
        with pytest.raises(ParameterError):
            make_clustered(10, 0, 5)
        with pytest.raises(ParameterError):
            make_clustered(10, 4, 0)
        with pytest.raises(ParameterError):
            make_clustered(10, 4, 5, num_clusters=0)


class TestProfiles:
    def test_all_profiles_have_paper_dimensions(self):
        # Table I dimensionalities.
        assert DATASET_PROFILES["sift"].dim == 128
        assert DATASET_PROFILES["gist"].dim == 960
        assert DATASET_PROFILES["glove"].dim == 100
        assert DATASET_PROFILES["deep"].dim == 96

    @pytest.mark.parametrize("name", sorted(DATASET_PROFILES))
    def test_profile_generates(self, name):
        dataset = make_dataset(name, num_vectors=50, num_queries=5,
                               rng=np.random.default_rng(4))
        assert dataset.name == name
        assert dataset.dim == DATASET_PROFILES[name].dim

    def test_sift_like_nonnegative(self):
        dataset = make_dataset("sift", num_vectors=50, num_queries=5,
                               rng=np.random.default_rng(5))
        assert np.all(dataset.database >= 0)

    def test_unknown_profile(self):
        with pytest.raises(ParameterError):
            make_dataset("imagenet")
