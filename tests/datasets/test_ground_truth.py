"""Ground-truth computation tests."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.datasets.ground_truth import compute_ground_truth
from repro.hnsw.bruteforce import exact_knn


class TestComputeGroundTruth:
    def test_matches_exact_knn(self):
        rng = np.random.default_rng(0)
        database = rng.standard_normal((80, 6))
        queries = rng.standard_normal((7, 6))
        gt = compute_ground_truth(database, queries, 5)
        assert len(gt) == 7
        assert gt.k == 5
        for i, query in enumerate(queries):
            expected, _ = exact_knn(database, query, 5)
            assert np.array_equal(gt.for_query(i), expected)

    def test_distances_sorted(self):
        rng = np.random.default_rng(1)
        gt = compute_ground_truth(
            rng.standard_normal((50, 4)), rng.standard_normal((3, 4)), 10
        )
        assert np.all(np.diff(gt.distances, axis=1) >= 0)

    def test_validation(self):
        with pytest.raises(ParameterError):
            compute_ground_truth(np.zeros((5, 4)), np.zeros(4), 3)
