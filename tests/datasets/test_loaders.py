"""fvecs/ivecs/bvecs loader tests."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.datasets.loaders import read_bvecs, read_fvecs, read_ivecs, write_fvecs


class TestFvecsRoundtrip:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((20, 6)).astype(np.float32).astype(np.float64)
        path = tmp_path / "test.fvecs"
        write_fvecs(path, vectors)
        loaded = read_fvecs(path)
        assert np.allclose(loaded, vectors, rtol=1e-6)

    def test_limit(self, tmp_path):
        vectors = np.arange(40, dtype=np.float64).reshape(10, 4)
        path = tmp_path / "test.fvecs"
        write_fvecs(path, vectors)
        loaded = read_fvecs(path, limit=3)
        assert loaded.shape == (3, 4)
        assert np.allclose(loaded, vectors[:3])

    def test_write_validation(self, tmp_path):
        with pytest.raises(ParameterError):
            write_fvecs(tmp_path / "bad.fvecs", np.zeros(4))


class TestIvecs:
    def test_roundtrip_via_manual_write(self, tmp_path):
        ids = np.array([[1, 2, 3], [4, 5, 6]], dtype="<i4")
        path = tmp_path / "gt.ivecs"
        with open(path, "wb") as handle:
            for row in ids:
                handle.write(np.int32(3).tobytes())
                handle.write(row.tobytes())
        loaded = read_ivecs(path)
        assert np.array_equal(loaded, ids)


class TestBvecs:
    def test_roundtrip_via_manual_write(self, tmp_path):
        data = np.array([[0, 128, 255], [1, 2, 3]], dtype=np.uint8)
        path = tmp_path / "base.bvecs"
        with open(path, "wb") as handle:
            for row in data:
                handle.write(np.int32(3).tobytes())
                handle.write(row.tobytes())
        loaded = read_bvecs(path)
        assert np.array_equal(loaded, data.astype(np.float64))


class TestCorruptFiles:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        path.write_bytes(b"\x01")
        with pytest.raises(ParameterError):
            read_fvecs(path)

    def test_bad_dimension(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        path.write_bytes(np.int32(-4).tobytes() + b"\x00" * 16)
        with pytest.raises(ParameterError):
            read_fvecs(path)

    def test_misaligned_size(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        path.write_bytes(np.int32(4).tobytes() + b"\x00" * 15)
        with pytest.raises(ParameterError):
            read_fvecs(path)
