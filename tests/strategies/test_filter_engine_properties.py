"""Property-based tests for the pluggable filter engines.

The contract the vectorized engine promises
(:mod:`repro.core.filterengine`): for *any* index state — every
registered backend, monolithic or sharded, after arbitrary interleaved
inserts and deletes — it returns **bit-identical** answers to the
seed's per-query beam search: the same ids, the same approximate
distances, the same ``distance_computations`` and ``hops``.  The
batched entry point (``filter_search_batch``, one GEMM per micro-batch
on the brute-force / IVF backends) must match the per-query answers
element-wise, and the process data plane must agree with the thread
path for both engines.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.filterengine import (
    FILTER_ENGINES,
    available_filter_engines,
    get_filter_engine,
)
from repro.core.maintenance import delete_vector, insert_vector
from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.hnsw.graph import SearchStats

from tests.strategies import backend_kinds, seeds

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_DIM = 8


@st.composite
def index_scenarios(draw):
    """An index recipe: backend, sharding, and an interleaved mutation tape."""
    backend = draw(backend_kinds)
    shards = draw(st.sampled_from([None, 3]))
    build_seed = draw(seeds)
    mutation_seed = draw(seeds)
    num_rows = draw(st.integers(min_value=24, max_value=48))
    num_inserts = draw(st.integers(min_value=0, max_value=3))
    num_deletes = draw(st.integers(min_value=0, max_value=5))
    return (
        backend, shards, build_seed, mutation_seed,
        num_rows, num_inserts, num_deletes,
    )


def _build_index(scenario):
    """Build the index and replay the scenario's interleaved mutations."""
    (
        backend, shards, build_seed, mutation_seed,
        num_rows, num_inserts, num_deletes,
    ) = scenario
    rng = np.random.default_rng(build_seed)
    owner = DataOwner(_DIM, beta=1.0, backend=backend, shards=shards, rng=rng)
    index = owner.build_index(rng.standard_normal((num_rows, _DIM)) * 2.0)
    mutation_rng = np.random.default_rng(mutation_seed)
    ops = ["insert"] * num_inserts + ["delete"] * num_deletes
    mutation_rng.shuffle(ops)
    for op in ops:
        if op == "insert":
            insert_vector(owner, index, mutation_rng.standard_normal(_DIM) * 2.0)
        else:
            live = [i for i in range(len(index.sap_vectors)) if index.is_live(i)]
            if len(live) > 2:
                delete_vector(index, int(mutation_rng.choice(live)))
    return owner, index


@given(
    scenario=index_scenarios(),
    query_seed=seeds,
    k_prime=st.integers(min_value=1, max_value=8),
    ef_search=st.sampled_from([None, 16, 48]),
)
@_SETTINGS
def test_vectorized_bit_identical_to_heap(scenario, query_seed, k_prime, ef_search):
    """Same ids, dists, distance computations and hops — any index state."""
    owner, index = _build_index(scenario)
    queries = np.random.default_rng(query_seed).standard_normal((3, _DIM)) * 2.0
    sap_queries = np.stack(
        [owner.dcpe_scheme.encrypt(query) for query in queries]
    )
    heap_answers = []
    for row in range(sap_queries.shape[0]):
        heap_stats, vec_stats = SearchStats(), SearchStats()
        heap_ids, heap_dists, _ = index.filter_search(
            sap_queries[row], k_prime, ef_search=ef_search,
            stats=heap_stats, engine="heap",
        )
        vec_ids, vec_dists, _ = index.filter_search(
            sap_queries[row], k_prime, ef_search=ef_search,
            stats=vec_stats, engine="vectorized",
        )
        assert np.array_equal(heap_ids, vec_ids), (
            f"ids diverged: heap={heap_ids.tolist()} "
            f"vectorized={vec_ids.tolist()}"
        )
        assert np.array_equal(heap_dists, vec_dists)
        assert heap_stats.distance_computations == vec_stats.distance_computations
        assert heap_stats.hops == vec_stats.hops
        assert heap_stats.kernel_seconds == 0.0
        assert vec_stats.kernel_seconds >= 0.0
        heap_answers.append((heap_ids, heap_dists, heap_stats))

    # The batched entry point must match the per-query oracle answers
    # element-wise, stats included, on both engines.
    for engine in available_filter_engines():
        stats_list = [SearchStats() for _ in range(sap_queries.shape[0])]
        batched = index.filter_search_batch(
            sap_queries, k_prime, ef_search=ef_search,
            stats_list=stats_list, engine=engine,
        )
        for (ids, dists, _), stats, (heap_ids, heap_dists, heap_stats) in zip(
            batched, stats_list, heap_answers
        ):
            assert np.array_equal(ids, heap_ids)
            assert np.array_equal(dists, heap_dists)
            assert stats.distance_computations == heap_stats.distance_computations
            assert stats.hops == heap_stats.hops


needs_plane = pytest.mark.skipif(
    not process_plane_available(),
    reason="process data plane unavailable on this platform",
)


@needs_plane
@pytest.mark.parametrize("backend", ["hnsw", "bruteforce"])
def test_both_executors_bit_identical_per_engine(backend):
    """threads == processes for each engine (graph CSR and GEMM paths)."""
    rng = np.random.default_rng(11)
    owner = DataOwner(_DIM, beta=1.0, backend=backend, rng=rng)
    index = owner.build_index(rng.standard_normal((60, _DIM)) * 2.0)
    user = QueryUser(owner.authorize_user(), rng=rng)
    batch = user.encrypt_queries(
        rng.standard_normal((6, _DIM)) * 2.0, 4, ef_search=32
    )
    outcomes = {}
    for executor in ("threads", "processes"):
        with CloudServer(index, executor=executor, workers=2) as server:
            for engine in available_filter_engines():
                results = server.answer(batch, filter_engine=engine)
                outcomes[(executor, engine)] = [
                    (
                        result.ids.tolist(),
                        result.filter_stats.distance_computations,
                        result.filter_stats.hops,
                    )
                    for result in results
                ]
                assert all(
                    result.filter_engine == engine for result in results
                )
    baseline = outcomes[("threads", "heap")]
    for key, value in outcomes.items():
        assert value == baseline, f"{key} diverged from threads/heap"


def test_engine_registry_contract():
    """Lookup mirrors the refine-engine registry semantics."""
    from repro.core.errors import ParameterError

    assert available_filter_engines() == ("heap", "vectorized")
    assert get_filter_engine(None).name == "vectorized"
    assert get_filter_engine("heap") is FILTER_ENGINES["heap"]
    instance = FILTER_ENGINES["vectorized"]
    assert get_filter_engine(instance) is instance
    with pytest.raises(ParameterError):
        get_filter_engine("nope")
    with pytest.raises(ParameterError):
        get_filter_engine(42)
