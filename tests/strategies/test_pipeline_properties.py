"""Property-based bit-identity of the staged query pipeline.

PR 5 replaced the monolithic ``filter_and_refine`` body with the staged
``resolve -> filter -> mask -> refine -> respond`` pipeline
(:mod:`repro.core.search`).  The refactor's contract is that staging
changes *structure only*: the returned ids — order included — must be
bit-identical to the seed path for every backend kind, monolithic and
sharded, in both search modes.  The seed body is reimplemented verbatim
here (:func:`_seed_reference_ids`) as the oracle.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.refine import get_refine_engine
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.search import filter_and_refine, filter_only
from repro.hnsw.graph import HNSWParams, SearchStats

from tests.strategies import backend_kinds, databases, ks, ratio_ks, seeds

_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Monolithic plus a proper scatter-gather shard count.
shard_counts = st.sampled_from([1, 3])


def _seed_reference_ids(index, query, k_prime, mode):
    """The seed-era monolithic body: filter -> mask -> (refine), inline.

    A literal transcription of the pre-staging ``_run_single``: k'-ANNS
    over the filter structures, tombstone masking against the liveness
    mask, then either the top-k prefix (filter_only) or the refine
    engine's DCE top-k.
    """
    candidate_ids, _, _ = index.filter_search(
        query.sap_vector, k_prime, ef_search=None, stats=SearchStats()
    )
    live_mask = index.live_mask()
    if candidate_ids.shape[0]:
        candidate_ids = candidate_ids[live_mask[candidate_ids]]
    if mode == "filter_only":
        return candidate_ids[: query.k]
    outcome = get_refine_engine(None).refine(
        index.dce_database, query.trapdoor, candidate_ids, query.k
    )
    return outcome.ids


def _make_actors(database, backend, shards, seed):
    rng = np.random.default_rng(seed)
    owner = DataOwner(
        database.shape[1],
        beta=0.3,
        hnsw_params=_TINY_HNSW,
        backend=backend,
        shards=shards if shards > 1 else None,
        rng=rng,
    )
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return index, user


@_SETTINGS
@given(
    data=databases(dim=8),
    k=ks,
    ratio_k=ratio_ks,
    backend=backend_kinds,
    shards=shard_counts,
    seed=seeds,
)
def test_staged_pipeline_matches_seed_reference(
    data, k, ratio_k, backend, shards, seed
):
    """Staged ids == seed-body ids, order included, full mode."""
    index, user = _make_actors(data, backend, shards, seed)
    queries = np.random.default_rng(seed + 2).standard_normal((3, 8)) * 2.0
    k_prime = ratio_k * k
    for row in queries:
        query = user.encrypt_query(row, k)
        staged = filter_and_refine(index, query, k_prime=k_prime)
        reference = _seed_reference_ids(index, query, k_prime, "full")
        assert np.array_equal(staged.ids, reference), (
            f"staged pipeline diverged from the seed body "
            f"(backend={backend}, shards={shards}, k={k}, k'={k_prime})"
        )


@_SETTINGS
@given(
    data=databases(dim=8),
    k=ks,
    ratio_k=ratio_ks,
    backend=backend_kinds,
    shards=shard_counts,
    seed=seeds,
)
def test_staged_pipeline_matches_seed_reference_filter_only(
    data, k, ratio_k, backend, shards, seed
):
    """Staged ids == seed-body ids in filter_only mode too."""
    index, user = _make_actors(data, backend, shards, seed)
    queries = np.random.default_rng(seed + 3).standard_normal((2, 8)) * 2.0
    k_prime = ratio_k * k
    for row in queries:
        query = user.encrypt_query(row, k, mode="filter_only")
        staged = filter_only(index, query, k_prime=k_prime)
        reference = _seed_reference_ids(index, query, k_prime, "filter_only")
        assert np.array_equal(staged.ids, reference), (
            f"filter-only staged pipeline diverged "
            f"(backend={backend}, shards={shards}, k={k}, k'={k_prime})"
        )


@_SETTINGS
@given(
    data=databases(dim=8),
    k=ks,
    backend=backend_kinds,
    shards=shard_counts,
    seed=seeds,
)
def test_served_frontend_matches_seed_reference(data, k, backend, shards, seed):
    """The online micro-batched path answers bit-identically as well."""
    index, user = _make_actors(data, backend, shards, seed)
    server = CloudServer(index)
    queries = np.random.default_rng(seed + 4).standard_normal((4, 8)) * 2.0
    encrypted = [user.encrypt_query(row, k) for row in queries]
    with server.serving_frontend(
        max_batch_size=4, batch_window_seconds=0.02
    ) as frontend:
        served = [frontend.submit(query) for query in encrypted]
        served = [future.result(timeout=30) for future in served]
    k_prime = server.default_ratio_k * k
    for query, result in zip(encrypted, served):
        reference = _seed_reference_ids(index, query, k_prime, "full")
        assert np.array_equal(result.ids, reference), (
            f"served pipeline diverged from the seed body "
            f"(backend={backend}, shards={shards}, k={k})"
        )
