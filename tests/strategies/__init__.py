"""Hypothesis strategies shared by the property-based tests.

Kept small and bounded so the property suite stays inside tier-1 time
budgets: vectors are low-dimensional, databases are tiny, and every draw
is seeded through numpy from a Hypothesis-chosen integer so failures
shrink deterministically.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core.backends import available_backends

__all__ = [
    "dims",
    "ks",
    "ratio_ks",
    "backend_kinds",
    "seeds",
    "vectors",
    "databases",
    "query_workloads",
]

#: Plaintext dimensionalities, including an odd value to exercise DCE padding.
dims = st.sampled_from([4, 7, 12])

#: Neighbor counts.
ks = st.integers(min_value=1, max_value=5)

#: ``k'/k`` multipliers.
ratio_ks = st.integers(min_value=1, max_value=6)

#: Registered filter-backend kinds.
backend_kinds = st.sampled_from(available_backends())

#: Seeds for numpy generators (numpy randomness stays reproducible and
#: shrinkable because Hypothesis only ever picks this integer).
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def vectors(draw, dim: int | None = None):
    """One float vector of the given (or drawn) dimensionality."""
    d = dim if dim is not None else draw(dims)
    seed = draw(seeds)
    return np.random.default_rng(seed).standard_normal(d) * 2.0


@st.composite
def databases(draw, dim: int | None = None, min_rows: int = 20, max_rows: int = 60):
    """A small ``(n, d)`` database matrix."""
    d = dim if dim is not None else draw(dims)
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    seed = draw(seeds)
    return np.random.default_rng(seed).standard_normal((n, d)) * 2.0


@st.composite
def query_workloads(draw, dim: int, min_queries: int = 1, max_queries: int = 6):
    """A small ``(n, dim)`` query matrix aligned with a database's dim."""
    n = draw(st.integers(min_value=min_queries, max_value=max_queries))
    seed = draw(seeds)
    return np.random.default_rng(seed).standard_normal((n, dim)) * 2.0
