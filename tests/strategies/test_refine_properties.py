"""Property-based tests for the pluggable refine engines.

The contract the vectorized engine promises
(:mod:`repro.core.refine`): for *any* candidate set — any order, any
tie pattern (duplicate database vectors encrypt to distinct ciphertexts
with mathematically equal distances), and any ``k`` including
``k >= len(candidates)`` — it returns **bit-identical** ids to the
comparison-heap reference engine, in the same (heap) order, with the
same equivalent-oracle-call count.

The database deliberately contains many duplicated rows so that exact
distance ties are common, and candidate sets are drawn as arbitrary
permutations of arbitrary subsets so both the nearest-first serving
order and adversarial orders are exercised.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dce import DCEScheme
from repro.core.refine import REFINE_ENGINES

from tests.strategies import seeds

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_DIM = 10
_UNIQUE_VECTORS = 12
_NUM_VECTORS = 36
_NUM_QUERIES = 4

_scheme = DCEScheme(_DIM, rng=np.random.default_rng(606))

# A duplicate-heavy database: 36 rows drawn from 12 distinct vectors,
# so most candidate sets contain exact-distance ties.
_tie_rng = np.random.default_rng(707)
_base = _tie_rng.standard_normal((_UNIQUE_VECTORS, _DIM)) * 2.0
_database = _base[_tie_rng.integers(0, _UNIQUE_VECTORS, size=_NUM_VECTORS)]
_encrypted = _scheme.encrypt_database(_database)
_queries = _tie_rng.standard_normal((_NUM_QUERIES, _DIM)) * 2.0
_trapdoors = [_scheme.trapdoor(query) for query in _queries]


@st.composite
def candidate_sets(draw):
    """A permutation of an arbitrary non-empty subset of the ids."""
    size = draw(st.integers(min_value=1, max_value=_NUM_VECTORS))
    seed = draw(seeds)
    return np.random.default_rng(seed).permutation(_NUM_VECTORS)[:size].astype(
        np.int64
    )


@given(
    candidates=candidate_sets(),
    query_index=st.integers(min_value=0, max_value=_NUM_QUERIES - 1),
    k=st.integers(min_value=1, max_value=_NUM_VECTORS + 5),
)
@_SETTINGS
def test_vectorized_bit_identical_to_heap(candidates, query_index, k):
    """Same ids, same order, same comparison count — always."""
    trapdoor = _trapdoors[query_index]
    heap = REFINE_ENGINES["heap"].refine(_encrypted, trapdoor, candidates, k)
    vectorized = REFINE_ENGINES["vectorized"].refine(
        _encrypted, trapdoor, candidates, k
    )
    assert np.array_equal(heap.ids, vectorized.ids), (
        f"engines diverged for candidates={candidates.tolist()}, k={k}: "
        f"heap={heap.ids.tolist()} vectorized={vectorized.ids.tolist()}"
    )
    assert heap.ids.dtype == vectorized.ids.dtype == np.int64
    assert heap.comparisons == vectorized.comparisons


@given(
    candidates=candidate_sets(),
    query_index=st.integers(min_value=0, max_value=_NUM_QUERIES - 1),
    k=st.integers(min_value=1, max_value=_NUM_VECTORS + 5),
)
@_SETTINGS
def test_nearest_first_order_bit_identical(candidates, query_index, k):
    """The serving-path order (nearest-first candidates) in particular."""
    query = _queries[query_index]
    dists = ((_database[candidates] - query) ** 2).sum(axis=1)
    ordered = candidates[np.argsort(dists, kind="stable")]
    trapdoor = _trapdoors[query_index]
    heap = REFINE_ENGINES["heap"].refine(_encrypted, trapdoor, ordered, k)
    vectorized = REFINE_ENGINES["vectorized"].refine(
        _encrypted, trapdoor, ordered, k
    )
    assert np.array_equal(heap.ids, vectorized.ids)
    assert heap.comparisons == vectorized.comparisons
