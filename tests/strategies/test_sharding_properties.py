"""Property tests for shard-count invariance of the scatter-gather layer.

Two invariants the sharding subsystem promises:

1. **Exact invariance** — with the brute-force (exact) filter backend,
   the sharded scatter-gather pipeline returns *bit-identical* top-k to
   the monolithic index, for any shard count and either assignment
   strategy: every shard scans its full slice, so the merged candidate
   pool always contains the global top-k'.
2. **Recall parity** — with approximate graph backends the per-shard
   graphs differ from the monolithic graph, so ids may differ, but
   recall against exact plaintext neighbors must stay in the same band
   (sharded search is at least as exhaustive: each shard runs a full
   k'-ANNS, so the merged pool is never smaller).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.eval.metrics import recall_at_k
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import HNSWParams

from tests.strategies import databases, ks, seeds

_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_counts = st.integers(min_value=2, max_value=5)
strategies = st.sampled_from(("round_robin", "hash"))


def _twin_servers(database, backend, num_shards, strategy, seed):
    """A monolithic and a sharded server over identical ciphertexts.

    Both owners consume an identically seeded generator, so keys and
    DCPE/DCE ciphertexts agree and one user can query both servers.
    """
    flat_owner = DataOwner(
        database.shape[1],
        beta=0.3,
        hnsw_params=_TINY_HNSW,
        backend=backend,
        rng=np.random.default_rng(seed),
    )
    sharded_owner = DataOwner(
        database.shape[1],
        beta=0.3,
        hnsw_params=_TINY_HNSW,
        backend=backend,
        shards=num_shards,
        shard_strategy=strategy,
        rng=np.random.default_rng(seed),
    )
    flat = CloudServer(flat_owner.build_index(database))
    sharded = CloudServer(sharded_owner.build_index(database))
    user = QueryUser(flat_owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return flat, sharded, user


@_SETTINGS
@given(
    data=databases(dim=8),
    k=ks,
    num_shards=shard_counts,
    strategy=strategies,
    seed=seeds,
)
def test_bruteforce_sharding_is_exactly_invariant(
    data, k, num_shards, strategy, seed
):
    """Sharded brute-force top-k is bit-identical to the monolithic index."""
    flat, sharded, user = _twin_servers(data, "bruteforce", num_shards,
                                        strategy, seed)
    queries = np.random.default_rng(seed + 2).standard_normal((4, 8)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=3)
    flat_ids = flat.answer(batch).ids_matrix()
    sharded_ids = sharded.answer(batch).ids_matrix()
    assert np.array_equal(flat_ids, sharded_ids), (
        f"shard divergence at shards={num_shards} strategy={strategy}"
    )


@_SETTINGS
@given(
    data=databases(dim=8),
    k=ks,
    num_shards=shard_counts,
    strategy=strategies,
    seed=seeds,
)
def test_bruteforce_filter_only_invariant(data, k, num_shards, strategy, seed):
    """The invariance also holds for the filter-only reference path."""
    flat, sharded, user = _twin_servers(data, "bruteforce", num_shards,
                                        strategy, seed)
    queries = np.random.default_rng(seed + 3).standard_normal((3, 8)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=2, mode="filter_only")
    assert np.array_equal(
        flat.answer(batch).ids_matrix(), sharded.answer(batch).ids_matrix()
    )


@_SETTINGS
@given(
    data=databases(dim=8, min_rows=40, max_rows=60),
    backend=st.sampled_from(("hnsw", "nsg", "ivf")),
    num_shards=shard_counts,
    seed=seeds,
)
def test_graph_backends_keep_recall_parity(data, backend, num_shards, seed):
    """Approximate backends: sharded recall stays within tolerance of flat.

    Per-shard graphs are smaller and each is searched with the full k',
    so the merged pool is at least as rich; the band below accounts for
    graph-construction randomness on these tiny instances.
    """
    k = 5
    flat, sharded, user = _twin_servers(data, backend, num_shards,
                                        "round_robin", seed)
    queries = np.random.default_rng(seed + 4).standard_normal((4, 8)) * 2.0
    truth = [exact_knn(data, query, k)[0] for query in queries]
    batch = user.encrypt_queries(queries, k, ratio_k=4, ef_search=40)
    flat_recall = np.mean([
        recall_at_k(result.ids, truth[i], k)
        for i, result in enumerate(flat.answer(batch))
    ])
    sharded_recall = np.mean([
        recall_at_k(result.ids, truth[i], k)
        for i, result in enumerate(sharded.answer(batch))
    ])
    assert sharded_recall >= flat_recall - 0.35, (
        f"sharded {backend} recall {sharded_recall:.2f} fell far below "
        f"monolithic {flat_recall:.2f}"
    )
