"""Property-based tests for the batch-first request/response API.

Two invariants the redesign promises:

1. **Batch/single equivalence** — answering an
   :class:`~repro.core.protocol.EncryptedQueryBatch` is element-wise
   identical to answering each of its queries individually, for every
   registered filter backend and both search modes.
2. **Byte-accounting round trip** — upload/download byte accounting is a
   pure function of the protocol messages, so persisting and reloading
   the index must reproduce it exactly (and the ids with it).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings

from repro.core.persistence import load_index, save_index
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.hnsw.graph import HNSWParams

from tests.strategies import backend_kinds, databases, ks, ratio_ks, seeds

#: Small graphs keep each Hypothesis example cheap.
_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _make_actors(database, backend, seed):
    rng = np.random.default_rng(seed)
    owner = DataOwner(
        database.shape[1],
        beta=0.3,
        hnsw_params=_TINY_HNSW,
        backend=backend,
        rng=rng,
    )
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return owner, user, server


@_SETTINGS
@given(data=databases(dim=8), k=ks, ratio_k=ratio_ks, backend=backend_kinds, seed=seeds)
def test_batch_matches_single_query_path(data, k, ratio_k, backend, seed):
    """Batch answers must equal the per-query path element-wise."""
    _, user, server = _make_actors(data, backend, seed)
    queries = np.random.default_rng(seed + 2).standard_normal((4, 8)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=ratio_k)
    batch_results = server.answer(batch)
    for i in range(len(batch)):
        single = server.answer(batch[i])
        assert np.array_equal(batch_results[i].ids, single.ids), (
            f"batch/single divergence at query {i} on backend {backend}"
        )


@_SETTINGS
@given(data=databases(dim=6), k=ks, backend=backend_kinds, seed=seeds)
def test_batch_filter_only_matches_single(data, k, backend, seed):
    """The equivalence also holds in filter-only mode."""
    _, user, server = _make_actors(data, backend, seed)
    queries = np.random.default_rng(seed + 2).standard_normal((3, 6)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=2, mode="filter_only")
    batch_results = server.answer(batch)
    assert batch_results.refine_comparisons == 0
    for i in range(len(batch)):
        single = server.answer(batch[i])
        assert np.array_equal(batch_results[i].ids, single.ids)


@_SETTINGS
@given(data=databases(dim=7), workload_seed=seeds, k=ks, backend=backend_kinds, seed=seeds)
def test_byte_accounting_roundtrips_through_persistence(
    tmp_path_factory, data, workload_seed, k, backend, seed
):
    """Upload/download byte accounting survives save_index/load_index."""
    _, user, server = _make_actors(data, backend, seed)
    queries = np.random.default_rng(workload_seed).standard_normal((3, 7)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=2)
    before = server.answer(batch)

    path = tmp_path_factory.mktemp("roundtrip") / "index.npz"
    save_index(path, server.index)
    reloaded = CloudServer(load_index(path))
    after = reloaded.answer(batch)

    assert batch.upload_bytes() == sum(batch[i].upload_bytes() for i in range(len(batch)))
    assert before.download_bytes() == after.download_bytes()
    assert [r.ids.tolist() for r in before] == [r.ids.tolist() for r in after]


@_SETTINGS
@given(data=databases(dim=6), seed=seeds)
def test_encrypt_queries_semantically_matches_encrypt_query(data, seed):
    """With beta=0 (no DCPE noise) the batched encryption path must yield
    the same search results as per-query encryption: only the hidden
    randomizers differ, and those never change comparison outcomes."""
    rng = np.random.default_rng(seed)
    owner = DataOwner(6, beta=0.0, hnsw_params=_TINY_HNSW, rng=rng)
    index = owner.build_index(data)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    queries = np.random.default_rng(seed + 2).standard_normal((3, 6)) * 2.0

    batch = user.encrypt_queries(queries, 3, ratio_k=4)
    batch_results = server.answer(batch)
    for i, query in enumerate(queries):
        single = server.answer(user.encrypt_query(query, 3, ratio_k=4))
        assert set(batch_results[i].ids.tolist()) == set(single.ids.tolist())
