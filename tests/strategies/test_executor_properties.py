"""Property tests: process-executor answers are bit-identical to threads.

The process data plane's contract is *exact* equivalence with the
thread executor — same ids, same order, same instrumentation counters —
for every filter backend, monolithic or sharded, full pipeline or
filter-only, at any worker count.  The plane reconstructs backends from
the same ``state_arrays()`` snapshots persistence round-trips through
and replays the thread path's merge byte-for-byte, so any divergence is
a bug, never noise.

Examples are few (a plane spawn costs real process-startup time) but
each draw covers the whole cross-product axis Hypothesis picked:
database, shard layout, mode, k, and worker count.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backends import available_backends
from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.shm import active_arenas
from repro.hnsw.graph import HNSWParams

from tests.strategies import ks, seeds

pytestmark = pytest.mark.skipif(
    not process_plane_available(),
    reason="process data plane unavailable on this host",
)

_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

_SETTINGS = settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_layouts = st.sampled_from((None, 2, 3))
modes = st.sampled_from(("full", "filter_only"))
worker_counts = st.integers(min_value=1, max_value=2)


@pytest.mark.parametrize("backend", available_backends())
@_SETTINGS
@given(
    shards=shard_layouts,
    mode=modes,
    k=ks,
    workers=worker_counts,
    seed=seeds,
)
def test_process_executor_is_bit_identical_to_threads(
    backend, shards, mode, k, workers, seed
):
    """Threads and processes agree exactly, and nothing leaks."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 60))
    dim = 8
    database = np.random.default_rng(seed + 1).standard_normal((n, dim)) * 2.0
    owner = DataOwner(
        dim,
        beta=0.4,
        hnsw_params=_TINY_HNSW,
        backend=backend,
        shards=shards,
        rng=np.random.default_rng(seed + 2),
    )
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 3))
    queries = np.random.default_rng(seed + 4).standard_normal((4, dim)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=3, mode=mode)

    thread_results = CloudServer(index).answer(batch)
    process_server = CloudServer(index, executor="processes", workers=workers)
    try:
        plane = process_server.data_plane()
        assert plane is not None and plane.workers == workers
        process_results = process_server.answer(batch)
    finally:
        process_server.close()

    for t, p in zip(thread_results, process_results):
        assert np.array_equal(t.ids, p.ids), (
            f"id divergence: backend={backend} shards={shards} mode={mode} "
            f"k={k} workers={workers} seed={seed}"
        )
        assert (
            t.filter_stats.distance_computations
            == p.filter_stats.distance_computations
        )
        assert t.filter_stats.hops == p.filter_stats.hops
        assert t.refine_comparisons == p.refine_comparisons
        assert t.k_prime == p.k_prime
    assert not active_arenas(), "plane close leaked a shared-memory arena"
