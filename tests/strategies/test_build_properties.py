"""Property tests for the parallel + vectorized construction pipeline.

Two reproducibility contracts the build subsystem promises:

1. **Worker-count invariance** — a sharded build is a pure function of
   the ciphertext slices and the SeedSequence-spawned per-shard child
   seeds, so the built index is *bit-identical* at any ``build_workers``
   setting: exactly so for the brute-force backend (which is seedless on
   top of that), and exactly so for the seeded graph/IVF backends too —
   plus the issue-level recall-parity corollary for graph backends.
2. **Bulk-mode equivalence** — the ``bulk`` HNSW construction path
   produces the *same graph bit for bit* as the seed's ``sequential``
   insert loop from the same RNG state, for any construction flags
   (including duplicate-vector tie patterns, which stress every sorted
   comparison in the selection heuristic).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.build import build_shard_backends
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.sharding import assign_shards
from repro.eval.metrics import recall_at_k
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import HNSWIndex, HNSWParams

from tests.strategies import backend_kinds, databases, seeds

_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

shard_counts = st.integers(min_value=2, max_value=5)
worker_counts = st.sampled_from((2, 3, None))
strategies = st.sampled_from(("round_robin", "hash"))


def _tiny_params(backend: str):
    return _TINY_HNSW if backend == "hnsw" else None


def _shard_states(data, backend, num_shards, strategy, workers, seed):
    """Per-shard persisted state arrays of one sharded build."""
    assignment = assign_shards(data.shape[0], num_shards, strategy)
    owned = [
        np.nonzero(assignment == shard)[0].astype(np.int64)
        for shard in range(num_shards)
    ]
    backends, timings = build_shard_backends(
        backend,
        data,
        owned,
        rng=np.random.default_rng(seed),
        params=_tiny_params(backend),
        build_workers=workers,
    )
    assert len(timings) == num_shards
    assert sum(timing.num_vectors for timing in timings) == data.shape[0]
    return [
        None if built is None else built.state_arrays() for built in backends
    ]


def _assert_states_equal(reference, other, context):
    assert len(reference) == len(other), context
    for left, right in zip(reference, other):
        assert (left is None) == (right is None), context
        if left is None:
            continue
        assert left.keys() == right.keys(), context
        for key in left:
            assert np.array_equal(left[key], right[key]), f"{context}: {key}"


@_SETTINGS
@given(
    data=databases(dim=8),
    backend=backend_kinds,
    num_shards=shard_counts,
    strategy=strategies,
    workers=worker_counts,
    seed=seeds,
)
def test_parallel_shard_build_is_bit_identical_to_sequential(
    data, backend, num_shards, strategy, workers, seed
):
    """Any worker count builds the same shards as build_workers=1.

    The brute-force case is the issue's acceptance criterion; the other
    backends satisfy it too because every shard consumes its own
    spawned child generator, never a stream shared across shards.
    """
    sequential = _shard_states(data, backend, num_shards, strategy, 1, seed)
    parallel = _shard_states(data, backend, num_shards, strategy, workers, seed)
    _assert_states_equal(
        sequential,
        parallel,
        f"{backend} diverged at workers={workers} shards={num_shards} "
        f"strategy={strategy}",
    )


@_SETTINGS
@given(
    data=databases(dim=8, min_rows=40, max_rows=60),
    backend=st.sampled_from(("hnsw", "nsg", "ivf")),
    num_shards=shard_counts,
    workers=worker_counts,
    seed=seeds,
)
def test_parallel_graph_build_keeps_recall_parity(
    data, backend, num_shards, workers, seed
):
    """End-to-end recall is identical at any worker count.

    Stronger than a parity band: the two owners consume identically
    seeded generators, their shard builds are bit-identical, so the two
    servers must return the same ids for the same encrypted batch.
    """
    k = 5

    def deployed(build_workers):
        owner = DataOwner(
            data.shape[1],
            beta=0.3,
            hnsw_params=_TINY_HNSW,
            backend=backend,
            shards=num_shards,
            build_workers=build_workers,
            rng=np.random.default_rng(seed),
        )
        server = CloudServer(owner.build_index(data))
        user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
        return server, user

    sequential_server, user = deployed(1)
    parallel_server, _ = deployed(workers)
    queries = np.random.default_rng(seed + 2).standard_normal((4, 8)) * 2.0
    batch = user.encrypt_queries(queries, k, ratio_k=4, ef_search=40)
    sequential_ids = sequential_server.answer(batch).ids_matrix()
    parallel_ids = parallel_server.answer(batch).ids_matrix()
    assert np.array_equal(sequential_ids, parallel_ids)
    truth = [exact_knn(data, query, k)[0] for query in queries]
    sequential_recall = np.mean([
        recall_at_k(ids, truth[i], k) for i, ids in enumerate(sequential_ids)
    ])
    parallel_recall = np.mean([
        recall_at_k(ids, truth[i], k) for i, ids in enumerate(parallel_ids)
    ])
    assert parallel_recall == sequential_recall


construction_flags = st.sampled_from(
    (
        HNSWParams(m=4, ef_construction=20),
        HNSWParams(m=4, ef_construction=16, keep_pruned=False),
        HNSWParams(m=6, ef_construction=24, extend_candidates=True),
    )
)


@_SETTINGS
@given(
    data=databases(dim=8, min_rows=25, max_rows=70),
    params=construction_flags,
    seed=seeds,
    duplicate=st.booleans(),
)
def test_bulk_hnsw_build_equals_sequential(data, params, seed, duplicate):
    """``bulk`` builds the sequential oracle's graph bit for bit.

    ``duplicate`` plants repeated vectors so zero distances and sorted
    ties exercise the batched prune's knife edges.
    """
    if duplicate and data.shape[0] >= 6:
        data = data.copy()
        data[1] = data[0]
        data[5] = data[0]
    sequential = HNSWIndex(
        data.shape[1], params, rng=np.random.default_rng(seed)
    ).build(data)
    bulk = HNSWIndex(
        data.shape[1], params, rng=np.random.default_rng(seed)
    ).build(data, mode="bulk")
    assert bulk.entry_point == sequential.entry_point
    assert bulk.max_level == sequential.max_level
    seq_levels, seq_edges = sequential.adjacency_arrays()
    bulk_levels, bulk_edges = bulk.adjacency_arrays()
    assert np.array_equal(bulk_levels, seq_levels)
    assert np.array_equal(bulk_edges, seq_edges)
    # And the graphs answer searches identically.
    query = np.random.default_rng(seed + 1).standard_normal(data.shape[1])
    seq_ids, seq_dists = sequential.search(query, 3, ef_search=20)
    bulk_ids, bulk_dists = bulk.search(query, 3, ef_search=20)
    assert np.array_equal(seq_ids, bulk_ids)
    assert np.array_equal(seq_dists, bulk_dists)
