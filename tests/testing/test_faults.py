"""The fault-injection harness itself: triggers, proxies, wrappers.

Every chaos test in the repo leans on these primitives, so their
counting semantics must be exact: 1-based, fire-once by default,
persistent with ``repeat=True``.
"""

import socket

import pytest

from repro.testing import (
    CallTrigger,
    FaultyExecute,
    FaultySocket,
    InjectedFault,
    arm_plane_worker_kill,
)


class TestCallTrigger:
    def test_fires_exactly_at_nth_call(self):
        trigger = CallTrigger(3)
        assert [trigger.observe() for _ in range(5)] == [
            False, False, True, False, False,
        ]
        assert trigger.calls == 5
        assert trigger.fired == 1

    def test_first_call_trigger(self):
        trigger = CallTrigger(1)
        assert trigger.observe()
        assert not trigger.observe()

    def test_repeat_fires_from_nth_on(self):
        trigger = CallTrigger(2, repeat=True)
        assert [trigger.observe() for _ in range(4)] == [
            False, True, True, True,
        ]
        assert trigger.fired == 3

    def test_rejects_non_positive_fire_at(self):
        for bad in (0, -1):
            with pytest.raises(ValueError, match="fire_at"):
                CallTrigger(bad)


class _Pair:
    """A connected socketpair, closed on exit."""

    def __enter__(self):
        self.left, self.right = socket.socketpair()
        self.right.settimeout(5.0)
        return self.left, self.right

    def __exit__(self, *exc):
        for sock in (self.left, self.right):
            try:
                sock.close()
            except OSError:
                pass


class TestFaultySocket:
    def test_drop_swallows_only_the_nth_send(self):
        with _Pair() as (left, right):
            faulty = FaultySocket(left, CallTrigger(2), action="drop")
            faulty.sendall(b"one")
            faulty.sendall(b"two")  # vanishes
            faulty.sendall(b"three")
            left.shutdown(socket.SHUT_WR)
            received = b""
            while chunk := right.recv(64):
                received += chunk
            assert received == b"onethree"

    def test_delay_sleeps_then_sends(self):
        slept = []
        with _Pair() as (left, right):
            faulty = FaultySocket(
                left,
                CallTrigger(1),
                action="delay",
                delay_seconds=1.5,
                sleep=slept.append,
            )
            faulty.sendall(b"late")
            assert right.recv(64) == b"late"
        assert slept == [1.5]

    def test_close_tears_down_and_raises(self):
        with _Pair() as (left, right):
            faulty = FaultySocket(left, CallTrigger(1), action="close")
            with pytest.raises(ConnectionResetError, match="frame 1"):
                faulty.sendall(b"doomed")
            # The peer observes a clean EOF, not a hang.
            assert right.recv(64) == b""

    def test_unknown_action_rejected(self):
        with _Pair() as (left, _):
            with pytest.raises(ValueError, match="action"):
                FaultySocket(left, CallTrigger(1), action="explode")

    def test_other_attributes_proxy_through(self):
        with _Pair() as (left, _):
            faulty = FaultySocket(left, CallTrigger(1))
            assert faulty.fileno() == left.fileno()


class TestFaultyExecute:
    def test_nth_call_raises_injected_fault(self):
        seen = []
        faulty = FaultyExecute(
            lambda batch: seen.append(batch) or "ok", CallTrigger(2)
        )
        assert faulty("a") == "ok"
        with pytest.raises(InjectedFault, match="batch 2"):
            faulty("b")
        assert faulty("c") == "ok"
        assert seen == ["a", "c"]

    def test_custom_exception_factory(self):
        faulty = FaultyExecute(
            lambda: "ok", CallTrigger(1), exc_factory=lambda: OSError("disk")
        )
        with pytest.raises(OSError, match="disk"):
            faulty()


class _FakePlane:
    """Just enough ProcessDataPlane surface for the arming helper."""

    def __init__(self):
        self.killed = []
        self.batches = []

    def kill_worker(self, index):
        self.killed.append(index)

    def filter_batch(self, batch):
        self.batches.append(batch)
        return "filtered"


class TestArmPlaneWorkerKill:
    def test_kills_before_the_nth_batch(self):
        plane = _FakePlane()
        trigger = CallTrigger(2)
        assert arm_plane_worker_kill(plane, 0, trigger) is plane
        assert plane.filter_batch("b1") == "filtered"
        assert plane.killed == []
        assert plane.filter_batch("b2") == "filtered"
        # The kill landed before batch 2 ran — the batch still ran
        # (and in the real plane observes the dead worker).
        assert plane.killed == [0]
        assert plane.batches == ["b1", "b2"]
        assert plane.filter_batch("b3") == "filtered"
        assert plane.killed == [0]
