"""AME tests: exact comparisons at the paper-stated shapes and costs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ame import AME_SHARES, AMEScheme, ame_mac_count
from repro.core.errors import DimensionMismatchError, KeyMismatchError


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    scheme = AMEScheme(10, rng)
    database = rng.standard_normal((25, 10)) * 4.0
    query = rng.standard_normal(10) * 4.0
    cts = scheme.encrypt_database(database)
    trapdoor = scheme.trapdoor(query)
    dists = ((database - query) ** 2).sum(axis=1)
    return scheme, database, cts, trapdoor, dists


class TestShapes:
    def test_ciphertext_is_32_vectors(self, workload):
        _, _, cts, _, _ = workload
        ct = cts[0]
        width = 2 * 10 + 6
        assert ct.x_parts.shape == (AME_SHARES, width)
        assert ct.y_parts.shape == (AME_SHARES, width)
        assert ct.size_in_floats == 32 * width

    def test_trapdoor_is_16_matrices(self, workload):
        _, _, _, trapdoor, _ = workload
        width = 2 * 10 + 6
        assert trapdoor.matrices.shape == (AME_SHARES, width, width)
        assert trapdoor.size_in_floats == 16 * width * width

    def test_mac_count_matches_paper(self):
        # Section III-C: 64 d^2 + 416 d + 676 (we are within the rounding
        # of the paper's constant term).
        for d in (96, 100, 128, 960):
            paper = 64 * d * d + 416 * d + 676
            assert abs(ame_mac_count(d) - paper) <= 8


class TestComparisons:
    def test_sign_correctness(self, workload):
        scheme, _, cts, trapdoor, dists = workload
        n = len(cts)
        for i in range(0, n, 3):
            for j in range(0, n, 4):
                if i == j:
                    continue
                z = scheme.distance_comp(cts[i], cts[j], trapdoor)
                assert (z < 0) == (dists[i] < dists[j])

    def test_sign_flips_with_argument_order(self, workload):
        scheme, _, cts, trapdoor, _ = workload
        z_ij = scheme.distance_comp(cts[0], cts[1], trapdoor)
        z_ji = scheme.distance_comp(cts[1], cts[0], trapdoor)
        assert np.sign(z_ij) == -np.sign(z_ji)

    def test_key_mismatch(self, workload):
        scheme, database, cts, _, _ = workload
        other = AMEScheme(10, np.random.default_rng(9))
        foreign = other.trapdoor(database[0])
        with pytest.raises(KeyMismatchError):
            scheme.distance_comp(cts[0], cts[1], foreign)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_sign_property(self, seed):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(2, 12))
        scheme = AMEScheme(dim, rng)
        vectors = rng.standard_normal((4, dim)) * 3.0
        q = rng.standard_normal(dim) * 3.0
        cts = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(4):
            for j in range(4):
                if i == j:
                    continue
                gap = dists[i] - dists[j]
                if abs(gap) < 1e-6 * max(dists.max(), 1.0):
                    continue
                z = scheme.distance_comp(cts[i], cts[j], t)
                assert (z < 0) == (gap < 0)


class TestRandomization:
    def test_same_plaintext_encrypts_differently(self):
        rng = np.random.default_rng(1)
        scheme = AMEScheme(8, rng)
        a = scheme.encrypt(np.ones(8))
        b = scheme.encrypt(np.ones(8))
        assert not np.allclose(a.x_parts, b.x_parts)

    def test_trapdoors_randomized(self):
        rng = np.random.default_rng(2)
        scheme = AMEScheme(8, rng)
        a = scheme.trapdoor(np.ones(8))
        b = scheme.trapdoor(np.ones(8))
        assert not np.allclose(a.matrices, b.matrices)


class TestValidation:
    def test_dim_checks(self):
        scheme = AMEScheme(8)
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt(np.zeros(5))
        with pytest.raises(DimensionMismatchError):
            scheme.trapdoor(np.zeros(5))

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            AMEScheme(0)
