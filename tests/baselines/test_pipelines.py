"""End-to-end tests for the four baseline pipelines.

All share a module-scoped clustered workload; recall floors are set
generously because the baselines' parameters are intentionally modest for
speed — the benchmarks tune them per figure.
"""

import numpy as np
import pytest

from repro.baselines.hnsw_ame import HNSWAMEScheme
from repro.baselines.linear_scan import DCELinearScan
from repro.baselines.pacm_ann import PACMANNBaseline
from repro.baselines.pri_ann import PRIANNBaseline
from repro.baselines.rs_sann import RSSANNBaseline
from repro.core.errors import ParameterError
from repro.datasets import compute_ground_truth, make_clustered
from repro.eval.metrics import recall_at_k
from repro.lsh.e2lsh import E2LSHParams
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def workload():
    dataset = make_clustered(
        num_vectors=400,
        dim=12,
        num_queries=8,
        num_clusters=10,
        value_scale=2.0,
        rng=np.random.default_rng(50),
    )
    truth = compute_ground_truth(dataset.database, dataset.queries, 10)
    return dataset, truth


LSH_GENEROUS = E2LSHParams(num_tables=14, hashes_per_table=5, bucket_width=10.0, multiprobe=4)


class TestHNSWAME:
    def test_recall(self, workload):
        dataset, truth = workload
        scheme = HNSWAMEScheme(
            dataset.dim, beta=0.2, hnsw_params=FAST_HNSW, rng=np.random.default_rng(1)
        ).fit(dataset.database)
        recalls = [
            recall_at_k(
                scheme.query_with_report(q, 10, ratio_k=8, ef_search=100).ids,
                truth.for_query(i),
                10,
            )
            for i, q in enumerate(dataset.queries)
        ]
        assert np.mean(recalls) >= 0.9

    def test_unfitted_rejected(self, workload):
        dataset, _ = workload
        scheme = HNSWAMEScheme(dataset.dim, beta=0.2)
        with pytest.raises(ParameterError):
            scheme.query_with_report(dataset.queries[0], 10)

    def test_refine_comparisons_counted(self, workload):
        dataset, _ = workload
        scheme = HNSWAMEScheme(
            dataset.dim, beta=0.2, hnsw_params=FAST_HNSW, rng=np.random.default_rng(2)
        ).fit(dataset.database)
        report = scheme.query_with_report(dataset.queries[0], 10, ratio_k=4)
        assert report.refine_comparisons > 0
        assert report.k_prime == 40


class TestDCELinearScan:
    def test_exact_results(self, workload):
        # Linear scan with an exact comparator must return the true top-k.
        dataset, truth = workload
        scheme = DCELinearScan(dataset.dim, np.random.default_rng(3)).fit(dataset.database)
        for i, query in enumerate(dataset.queries[:3]):
            report = scheme.query_with_report(query, 10)
            assert set(report.ids.tolist()) == set(truth.for_query(i).tolist())

    def test_scans_everything(self, workload):
        dataset, _ = workload
        scheme = DCELinearScan(dataset.dim, np.random.default_rng(4)).fit(dataset.database)
        report = scheme.query_with_report(dataset.queries[0], 5)
        assert report.k_prime == dataset.num_vectors
        assert report.refine_comparisons >= dataset.num_vectors - 5

    def test_unfitted_rejected(self):
        with pytest.raises(ParameterError):
            DCELinearScan(4).query_with_report(np.zeros(4), 3)


class TestRSSANN:
    @pytest.fixture(scope="class")
    def fitted(self, workload):
        dataset, _ = workload
        return RSSANNBaseline(
            dataset.dim, LSH_GENEROUS, rng=np.random.default_rng(5)
        ).fit(dataset.database)

    def test_recall(self, workload, fitted):
        dataset, truth = workload
        recalls = []
        for i, query in enumerate(dataset.queries):
            ids, _ = fitted.query_with_cost(query, 10)
            recalls.append(recall_at_k(ids, truth.for_query(i), 10))
        assert np.mean(recalls) >= 0.5  # LSH at modest settings

    def test_cost_report_structure(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(dataset.queries[0], 10)
        assert cost.method == "RS-SANN"
        assert cost.rounds == 1
        assert cost.upload_bytes > 0
        # Whole encrypted vectors travel: download scales with candidates.
        assert cost.download_bytes >= cost.extra["candidates"] * 4 * dataset.dim

    def test_user_does_decryption_work(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(dataset.queries[0], 10)
        assert cost.user_seconds > 0

    def test_unfitted_rejected(self, workload):
        dataset, _ = workload
        with pytest.raises(ParameterError):
            RSSANNBaseline(dataset.dim).query_with_cost(dataset.queries[0], 5)


class TestPACMANN:
    @pytest.fixture(scope="class")
    def fitted(self, workload):
        dataset, _ = workload
        return PACMANNBaseline(
            dataset.dim, FAST_HNSW, rng=np.random.default_rng(6)
        ).fit(dataset.database)

    def test_recall(self, workload, fitted):
        dataset, truth = workload
        recalls = []
        for i, query in enumerate(dataset.queries[:4]):
            ids, _ = fitted.query_with_cost(query, 10, ef_search=40)
            recalls.append(recall_at_k(ids, truth.for_query(i), 10))
        assert np.mean(recalls) >= 0.8

    def test_multi_round_protocol(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(dataset.queries[0], 10, ef_search=40)
        # One round per expansion (plus vector fetches): inherently chatty.
        assert cost.rounds > 10
        assert cost.extra["expansions"] > 0

    def test_round_budget_respected(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(
            dataset.queries[0], 10, ef_search=40, max_rounds=5
        )
        assert cost.extra["expansions"] <= 5

    def test_validation(self, workload, fitted):
        dataset, _ = workload
        with pytest.raises(ParameterError):
            fitted.query_with_cost(dataset.queries[0], 0)
        with pytest.raises(ParameterError):
            PACMANNBaseline(dataset.dim).query_with_cost(dataset.queries[0], 5)


class TestPRIANN:
    @pytest.fixture(scope="class")
    def fitted(self, workload):
        dataset, _ = workload
        return PRIANNBaseline(
            dataset.dim,
            E2LSHParams(num_tables=14, hashes_per_table=4, bucket_width=10.0),
            bucket_capacity=48,
            rng=np.random.default_rng(7),
        ).fit(dataset.database)

    def test_recall(self, workload, fitted):
        dataset, truth = workload
        recalls = []
        for i, query in enumerate(dataset.queries):
            ids, _ = fitted.query_with_cost(query, 10)
            recalls.append(recall_at_k(ids, truth.for_query(i), 10))
        assert np.mean(recalls) >= 0.5

    def test_single_round(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(dataset.queries[0], 10)
        assert cost.rounds == 1

    def test_padded_buckets_inflate_download(self, workload, fitted):
        dataset, _ = workload
        _, cost = fitted.query_with_cost(dataset.queries[0], 10)
        # Each retrieved bucket is padded to capacity * (d+1) float32 * 2 servers.
        bucket_bytes = 48 * (dataset.dim + 1) * 4 * 2
        assert cost.download_bytes % bucket_bytes == 0

    def test_validation(self, workload):
        dataset, _ = workload
        with pytest.raises(ParameterError):
            PRIANNBaseline(dataset.dim, bucket_capacity=0)
        with pytest.raises(ParameterError):
            PRIANNBaseline(dataset.dim).query_with_cost(dataset.queries[0], 5)
