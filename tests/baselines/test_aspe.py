"""ASPE scheme tests: leakage semantics per variant."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.aspe import ASPEScheme, DistanceTransform
from repro.core.errors import DimensionMismatchError, KeyMismatchError


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(0)
    database = rng.standard_normal((30, 10)) * 4.0
    query = rng.standard_normal(10) * 4.0
    dists = ((database - query) ** 2).sum(axis=1)
    return database, query, dists


class TestExactVariant:
    def test_leaks_exact_distance(self, workload):
        database, query, dists = workload
        scheme = ASPEScheme(10, DistanceTransform.EXACT, np.random.default_rng(1))
        trapdoor = scheme.trapdoor(query)
        leaks = np.array([scheme.leakage(ct, trapdoor) for ct in scheme.encrypt_database(database)])
        assert np.allclose(leaks, dists, rtol=1e-8)


class TestEnhancedVariants:
    @pytest.mark.parametrize(
        "transform",
        [
            DistanceTransform.LINEAR,
            DistanceTransform.EXPONENTIAL,
            DistanceTransform.LOGARITHMIC,
            DistanceTransform.SQUARE,
        ],
    )
    def test_order_preserved(self, workload, transform):
        # Monotone leakage is the design goal of every variant (they must
        # still rank neighbors) — and also what the KPA attacks exploit.
        database, query, dists = workload
        scheme = ASPEScheme(10, transform, np.random.default_rng(2))
        trapdoor = scheme.trapdoor(query)
        leaks = np.array([scheme.leakage(ct, trapdoor) for ct in scheme.encrypt_database(database)])
        assert np.array_equal(np.argsort(leaks), np.argsort(dists))

    def test_linear_hides_raw_distance(self, workload):
        database, query, dists = workload
        scheme = ASPEScheme(10, DistanceTransform.LINEAR, np.random.default_rng(3))
        trapdoor = scheme.trapdoor(query)
        leaks = np.array([scheme.leakage(ct, trapdoor) for ct in scheme.encrypt_database(database)])
        assert not np.allclose(leaks, dists, rtol=1e-3)

    def test_randomizers_fresh_per_query(self, workload):
        database, query, _ = workload
        scheme = ASPEScheme(10, DistanceTransform.LINEAR, np.random.default_rng(4))
        cts = scheme.encrypt_database(database)
        leak_a = scheme.leakage(cts[0], scheme.trapdoor(query))
        leak_b = scheme.leakage(cts[0], scheme.trapdoor(query))
        assert leak_a != leak_b  # fresh r1, r2 each trapdoor


class TestValidation:
    def test_dim_checks(self):
        scheme = ASPEScheme(10)
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt(np.zeros(5))
        with pytest.raises(DimensionMismatchError):
            scheme.trapdoor(np.zeros(5))
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt_database(np.zeros((3, 5)))

    def test_key_mismatch(self, workload):
        database, query, _ = workload
        scheme_a = ASPEScheme(10, rng=np.random.default_rng(5))
        scheme_b = ASPEScheme(10, rng=np.random.default_rng(6))
        ct = scheme_a.encrypt(database[0])
        trapdoor = scheme_b.trapdoor(query)
        with pytest.raises(KeyMismatchError):
            scheme_a.leakage(ct, trapdoor)

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            ASPEScheme(0)

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_nearest_neighbor_invariant_under_encryption(self, seed):
        rng = np.random.default_rng(seed)
        scheme = ASPEScheme(6, DistanceTransform.LINEAR, rng)
        database = rng.standard_normal((10, 6))
        query = rng.standard_normal(6)
        dists = ((database - query) ** 2).sum(axis=1)
        trapdoor = scheme.trapdoor(query)
        leaks = [scheme.leakage(ct, trapdoor) for ct in scheme.encrypt_database(database)]
        assert int(np.argmin(leaks)) == int(np.argmin(dists))
