"""Chaos tests: hostile or broken clients must fail alone.

Three failure injections, one invariant: the misbehaving *connection*
dies, while the shared ``BatchScheduler`` keeps draining a well-behaved
tenant's traffic on another connection.

* **Slow loris** — a client trickles a frame slower than the per-frame
  deadline; the server cuts the connection when the budget expires.
* **Oversized body** — a length prefix over ``max_body_bytes`` is
  refused from the header alone (the body is never buffered).
* **Mid-stream disconnect** — a client vanishes with a half-sent frame
  and with replies still in flight; quota returns via completion
  callbacks, so nothing leaks and nothing stalls.
"""

from __future__ import annotations

import socket
import struct
import time

import numpy as np
import pytest

from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net import NetClient, NetServer, RemoteError, TenantConfig
from repro.net import codec
from repro.net.codec import MessageType
from repro.testing import CallTrigger, arm_plane_worker_kill
from tests.conftest import FAST_HNSW

_TIMEOUT = 30


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(61)
    owner = DataOwner(
        8, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
    )
    database = rng.standard_normal((80, 8)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(62))
    return server, user, database, int(index.dce_database.key_id)


def _assert_still_serving(net, server, user, database, key_id):
    """The invariant every chaos test ends on: a good client on a fresh
    connection gets correct answers — the scheduler never stalled."""
    query = user.encrypt_query(database[0] + 0.01, 4)
    expected = server.answer(query)
    host, port = net.address
    with NetClient(host, port, key_id) as client:
        got = client.answer(query, timeout=_TIMEOUT)
    assert np.array_equal(got.ids, expected.ids)


def _raw_connection(net) -> socket.socket:
    sock = socket.create_connection(net.address, timeout=_TIMEOUT)
    sock.settimeout(_TIMEOUT)
    return sock


class TestSlowLoris:
    def test_trickling_client_is_cut_off_and_others_serve(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend, [TenantConfig(key_id)], frame_timeout=0.5
            ) as net:
                loris = _raw_connection(net)
                try:
                    hello = codec.encode_frame(
                        MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    # Trickle one byte, then stall past the frame budget.
                    loris.sendall(hello[:1])
                    start = time.monotonic()
                    # The server must close the connection (recv -> b"")
                    # once the 0.5 s frame deadline expires — trickling
                    # cannot extend it.
                    loris.settimeout(10)
                    closed = loris.recv(1) == b""
                    elapsed = time.monotonic() - start
                    assert closed, "slow-loris connection was never cut"
                    assert elapsed < 10
                finally:
                    loris.close()
                _assert_still_serving(net, server, user, database, key_id)

    def test_slow_body_after_valid_header_is_cut_off(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend, [TenantConfig(key_id)], frame_timeout=0.5
            ) as net:
                loris = _raw_connection(net)
                try:
                    hello = codec.encode_frame(
                        MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    # Full header, then starve the declared body: the
                    # per-frame deadline covers header + body together.
                    loris.sendall(hello[: codec.HEADER_SIZE])
                    loris.settimeout(10)
                    assert loris.recv(1) == b"", "slow body never cut off"
                finally:
                    loris.close()
                _assert_still_serving(net, server, user, database, key_id)


class TestOversizedBody:
    def test_over_limit_length_prefix_refused_unread(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(key_id)],
                max_body_bytes=4096,
                frame_timeout=_TIMEOUT,
            ) as net:
                attacker = _raw_connection(net)
                try:
                    codec.send_frame(
                        attacker, MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    reply = codec.read_frame_from(attacker, timeout=_TIMEOUT)
                    assert reply is not None and reply[0] is MessageType.HELLO_OK
                    # Declare a 100 MiB QUERY body; send only the header.
                    # The refusal must come back immediately — the server
                    # never waits for (or buffers) the declared payload.
                    attacker.sendall(
                        struct.pack(
                            "<4sBBHI",
                            codec.MAGIC,
                            codec.PROTOCOL_VERSION,
                            int(MessageType.QUERY),
                            0,
                            100 * 1024 * 1024,
                        )
                    )
                    reply = codec.read_frame_from(attacker, timeout=_TIMEOUT)
                    assert reply is not None and reply[0] is MessageType.ERROR
                    code, message = codec.decode_error(reply[1])
                    assert code is codec.ErrorCode.FORMAT
                    assert "exceeds" in message
                    # The framing error closed the connection.
                    assert codec.read_frame_from(attacker, timeout=_TIMEOUT) is None
                finally:
                    attacker.close()
                _assert_still_serving(net, server, user, database, key_id)


class TestMidStreamDisconnect:
    def test_half_sent_frame_then_close_fails_alone(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend, [TenantConfig(key_id)], frame_timeout=_TIMEOUT
            ) as net:
                flaky = _raw_connection(net)
                try:
                    codec.send_frame(
                        flaky, MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    reply = codec.read_frame_from(flaky, timeout=_TIMEOUT)
                    assert reply is not None and reply[0] is MessageType.HELLO_OK
                    batch = user.encrypt_queries(database[:3] + 0.01, 4)
                    frame = codec.encode_frame(
                        MessageType.QUERY, codec.encode_query_batch(batch)
                    )
                    flaky.sendall(frame[: len(frame) // 2])  # half a frame...
                finally:
                    flaky.close()  # ...and vanish
                _assert_still_serving(net, server, user, database, key_id)

    def test_disconnect_with_replies_in_flight_releases_quota(self, actors):
        """A client that dies before reading its answers must not pin
        its quota: completions release positions via done-callbacks even
        with nobody left to write to."""
        server, user, database, key_id = actors
        with server.serving_frontend(
            max_batch_size=4, batch_window_seconds=0.01
        ) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(key_id, max_in_flight=4)],
                frame_timeout=_TIMEOUT,
            ) as net:
                host, port = net.address
                batch = user.encrypt_queries(database[:4] + 0.01, 4)
                ghost = _raw_connection(net)
                try:
                    codec.send_frame(
                        ghost, MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    assert codec.read_frame_from(ghost, timeout=_TIMEOUT)[0] is (
                        MessageType.HELLO_OK
                    )
                    codec.send_frame(
                        ghost, MessageType.QUERY, codec.encode_query_batch(batch)
                    )
                finally:
                    ghost.close()  # gone before any RESULT frame
                # The quota (4, fully taken by the ghost's batch) must
                # drain as the scheduler completes the orphaned queries.
                deadline = time.monotonic() + _TIMEOUT
                with NetClient(host, port, key_id) as client:
                    while True:
                        stats = client.stats(timeout=_TIMEOUT)
                        tenant = stats["tenants"][str(key_id)]
                        if tenant["in_flight"] == 0 and tenant["completed"] >= 4:
                            break
                        assert time.monotonic() < deadline, (
                            f"ghost quota never drained: {tenant}"
                        )
                        time.sleep(0.05)
                    # Full quota available again on a live connection.
                    results = client.answer_batch(batch, timeout=_TIMEOUT)
                    assert len(results) == 4
                _assert_still_serving(net, server, user, database, key_id)


@pytest.mark.skipif(
    not process_plane_available(),
    reason="process data plane unavailable on this host",
)
class TestWorkerDeathOverTcp:
    """The full resilience stack at once: TCP serving over the process
    data plane, with a worker killed right before a batch.

    The contract: the faulted batch fails *typed* within the call
    timeout (never a hang), the connection and scheduler survive, and
    the plane respawns the worker in place — the same client gets
    bit-identical answers again within the restart backoff."""

    def test_worker_killed_mid_batch_fails_typed_then_heals(self):
        rng = np.random.default_rng(63)
        owner = DataOwner(
            8, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
        )
        database = rng.standard_normal((80, 8)) * 2.0
        index = owner.build_index(database)
        user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(64))
        key_id = int(index.dce_database.key_id)
        query = user.encrypt_query(database[0] + 0.01, 4)
        expected = CloudServer(index).answer(query)
        with CloudServer(index, executor="processes", workers=1) as server:
            with server.serving_frontend(batch_window_seconds=0.0) as frontend:
                with NetServer(frontend, [TenantConfig(key_id)]) as net:
                    host, port = net.address
                    with NetClient(host, port, key_id) as client:
                        # Healthy first: the plane is up and correct.
                        got = client.answer(query, timeout=_TIMEOUT)
                        assert np.array_equal(got.ids, expected.ids)
                        plane = server.data_plane()
                        # Kill the only worker right before the next
                        # filter batch: its restart backoff (100 ms)
                        # cannot have elapsed, so this batch must fail
                        # typed — all workers down, nothing to run on.
                        arm_plane_worker_kill(plane, 0, CallTrigger(1))
                        with pytest.raises(
                            RemoteError, match="down|died|unreachable"
                        ):
                            client.answer(query, timeout=_TIMEOUT)
                        # The connection survived the typed failure and
                        # the plane heals in place: keep asking until
                        # the respawned worker answers, bit-identical.
                        deadline = time.monotonic() + _TIMEOUT
                        while True:
                            try:
                                got = client.answer(query, timeout=_TIMEOUT)
                                break
                            except RemoteError:
                                assert time.monotonic() < deadline, (
                                    "plane never self-healed"
                                )
                                time.sleep(0.05)
                        assert np.array_equal(got.ids, expected.ids)
                        health = plane.health()
                        assert health["workers"][0]["restarts"] >= 1
                        assert not health["workers"][0]["dead"]
                        assert not plane.broken
                    _assert_still_serving(net, server, user, database, key_id)
