"""Wire-codec tests: round trips, size accounting, typed rejection.

The codec's contract (normative layout in ``docs/FORMATS.md``):

1. **Round trip** — every message body survives encode/decode for
   arbitrary batch shapes, including the ``filter_only`` zero-trapdoor
   ``(n, 0)`` edge (the envelope carries ``key_id``, so no trapdoor is
   ever invented to hold it).
2. **Exactness where it matters** — trapdoors (float64) and result ids
   (int64) are bit-identical across the wire; DCPE ciphertexts travel
   as float32 and re-encoding a decoded batch is **idempotent** (the
   second round trip changes nothing), which is what lets the bench
   prove socket/in-process id parity.
3. **Typed rejection** — truncation raises :class:`TruncatedFrameError`,
   an over-limit length prefix :class:`FrameTooLargeError`, and any
   other corruption :class:`WireFormatError`; never a bare
   ``struct.error`` or a silent mis-parse.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import (
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
)
from repro.net import codec
from repro.net.codec import (
    DEFAULT_MAX_BODY_BYTES,
    HEADER_SIZE,
    MAGIC,
    ErrorCode,
    FrameTooLargeError,
    MessageType,
    TruncatedFrameError,
    WireFormatError,
)

_SETTINGS = settings(max_examples=40, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
ns = st.integers(min_value=1, max_value=6)
dims = st.integers(min_value=1, max_value=12)
modes = st.sampled_from(["full", "filter_only"])


def _make_batch(n, d, mode, seed, k=3, ratio_k=None, ef_search=None):
    rng = np.random.default_rng(seed)
    t_dim = 0 if mode == "filter_only" else 2 * d + 16
    return EncryptedQueryBatch(
        rng.standard_normal((n, d)) * 100.0,
        rng.standard_normal((n, t_dim)) * 50.0,
        key_id=int(rng.integers(-(2**62), 2**62)),
        request=SearchRequest(k=k, ratio_k=ratio_k, ef_search=ef_search, mode=mode),
    )


class TestFrameLayer:
    def test_frame_roundtrip(self):
        body = b"payload-bytes"
        frame = codec.encode_frame(MessageType.QUERY, body)
        msg_type, got, consumed = codec.decode_frame(frame)
        assert msg_type is MessageType.QUERY
        assert got == body
        assert consumed == len(frame) == HEADER_SIZE + len(body)

    def test_empty_body_frame(self):
        frame = codec.encode_frame(MessageType.HELLO_OK)
        msg_type, body, consumed = codec.decode_frame(frame)
        assert msg_type is MessageType.HELLO_OK
        assert body == b""
        assert consumed == HEADER_SIZE

    def test_truncated_header_rejected(self):
        frame = codec.encode_frame(MessageType.QUERY, b"xy")
        for cut in range(HEADER_SIZE):
            with pytest.raises(TruncatedFrameError):
                codec.decode_frame(frame[:cut])

    def test_truncated_body_rejected(self):
        frame = codec.encode_frame(MessageType.QUERY, b"0123456789")
        for cut in range(HEADER_SIZE, len(frame)):
            with pytest.raises(TruncatedFrameError):
                codec.decode_frame(frame[:cut])

    def test_bad_magic_rejected(self):
        frame = bytearray(codec.encode_frame(MessageType.QUERY, b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            codec.decode_frame(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(codec.encode_frame(MessageType.QUERY, b"x"))
        frame[4] = codec.PROTOCOL_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            codec.decode_frame(bytes(frame))

    def test_unknown_message_type_rejected(self):
        frame = bytearray(codec.encode_frame(MessageType.QUERY, b"x"))
        frame[5] = 200
        with pytest.raises(WireFormatError, match="message type"):
            codec.decode_frame(bytes(frame))

    def test_nonzero_reserved_bits_rejected(self):
        frame = bytearray(codec.encode_frame(MessageType.QUERY, b"x"))
        frame[6] = 1
        with pytest.raises(WireFormatError, match="reserved"):
            codec.decode_frame(bytes(frame))

    def test_over_limit_length_prefix_rejected_as_too_large(self):
        # A tiny declared cap: the header alone must trigger the refusal.
        frame = codec.encode_frame(MessageType.QUERY, b"a" * 100)
        with pytest.raises(FrameTooLargeError):
            codec.decode_frame(frame, max_body_bytes=50)

    def test_typed_errors_are_wire_format_errors(self):
        assert issubclass(TruncatedFrameError, WireFormatError)
        assert issubclass(FrameTooLargeError, WireFormatError)

    @given(corrupt_at=st.integers(min_value=0, max_value=HEADER_SIZE - 1),
           xor=st.integers(min_value=1, max_value=255))
    @_SETTINGS
    def test_any_header_corruption_is_typed(self, corrupt_at, xor):
        """Flipping any header byte either still parses (a benign length
        or type change) or raises a typed WireFormatError — never a raw
        struct/codec exception."""
        frame = bytearray(codec.encode_frame(MessageType.STATS, b"{}"))
        frame[corrupt_at] ^= xor
        try:
            codec.decode_frame(bytes(frame))
        except WireFormatError:
            pass  # the typed rejection contract

    def test_magic_constant(self):
        assert MAGIC == b"PPAN"
        assert codec.encode_frame(MessageType.HELLO)[:4] == MAGIC


class TestQueryBatchBodies:
    @given(n=ns, d=dims, mode=modes, seed=seeds)
    @_SETTINGS
    def test_roundtrip_arbitrary_shapes(self, n, d, mode, seed):
        batch = _make_batch(n, d, mode, seed)
        decoded = codec.decode_query_batch(codec.encode_query_batch(batch))
        assert decoded.key_id == batch.key_id
        assert decoded.request == batch.request
        # Trapdoors are float64 on the wire: exact.
        assert np.array_equal(decoded.trapdoor_vectors, batch.trapdoor_vectors)
        # Ciphertexts are float32 on the wire: f32-close...
        assert np.allclose(decoded.sap_vectors, batch.sap_vectors, rtol=1e-6)
        # ...and a second round trip is idempotent (bit-identical).
        again = codec.decode_query_batch(codec.encode_query_batch(decoded))
        assert np.array_equal(again.sap_vectors, decoded.sap_vectors)
        assert np.array_equal(again.trapdoor_vectors, decoded.trapdoor_vectors)

    @given(n=ns, d=dims, seed=seeds)
    @_SETTINGS
    def test_filter_only_zero_trapdoor_batch_survives(self, n, d, seed):
        """The satellite fix: a (n, 0) trapdoor matrix round-trips with
        its envelope key_id intact — no spurious trapdoor requirement."""
        batch = _make_batch(n, d, "filter_only", seed)
        assert batch.trapdoor_vectors.shape == (n, 0)
        decoded = codec.decode_query_batch(codec.encode_query_batch(batch))
        assert decoded.key_id == batch.key_id
        assert decoded.trapdoor_vectors.shape == (n, 0)
        assert decoded.request.mode == "filter_only"

    def test_optional_knobs_roundtrip(self):
        batch = _make_batch(2, 4, "full", 7, k=5, ratio_k=4, ef_search=64)
        decoded = codec.decode_query_batch(codec.encode_query_batch(batch))
        assert decoded.request.ratio_k == 4
        assert decoded.request.ef_search == 64
        none_batch = _make_batch(2, 4, "full", 8)
        decoded = codec.decode_query_batch(codec.encode_query_batch(none_batch))
        assert decoded.request.ratio_k is None
        assert decoded.request.ef_search is None

    @given(n=ns, d=dims, mode=modes, seed=seeds)
    @_SETTINGS
    def test_frame_size_accounting(self, n, d, mode, seed):
        batch = _make_batch(n, d, mode, seed)
        frame = codec.encode_frame(
            MessageType.QUERY, codec.encode_query_batch(batch)
        )
        t_dim = batch.trapdoor_vectors.shape[1]
        assert len(frame) == codec.query_frame_size(n, d, t_dim)

    @given(n=ns, d=dims, mode=modes, seed=seeds, fraction=st.floats(0.0, 0.999))
    @_SETTINGS
    def test_truncated_body_rejected_typed(self, n, d, mode, seed, fraction):
        body = codec.encode_query_batch(_make_batch(n, d, mode, seed))
        cut = int(len(body) * fraction)
        with pytest.raises(TruncatedFrameError):
            codec.decode_query_batch(body[:cut])

    def test_trailing_bytes_rejected(self):
        body = codec.encode_query_batch(_make_batch(2, 4, "full", 1))
        with pytest.raises(WireFormatError, match="trailing"):
            codec.decode_query_batch(body + b"\x00")

    def test_unknown_mode_code_rejected(self):
        body = bytearray(codec.encode_query_batch(_make_batch(1, 4, "full", 1)))
        body[codec._QUERY_PREFIX.size - 4] = 9  # the mode byte
        with pytest.raises(WireFormatError, match="mode"):
            codec.decode_query_batch(bytes(body))

    def test_zero_dimension_rejected(self):
        body = bytearray(codec.encode_query_batch(_make_batch(1, 4, "full", 1)))
        body[12:16] = (0).to_bytes(4, "little")  # d = 0
        with pytest.raises(WireFormatError):
            codec.decode_query_batch(bytes(body))

    def test_invalid_parameters_rejected_typed(self):
        body = bytearray(codec.encode_query_batch(_make_batch(1, 4, "full", 1)))
        body[20:24] = (0).to_bytes(4, "little")  # k = 0
        with pytest.raises(WireFormatError, match="parameters"):
            codec.decode_query_batch(bytes(body))


class TestResultBatchBodies:
    @given(
        lengths=st.lists(st.integers(0, 8), min_size=0, max_size=6),
        seed=seeds,
        with_wall=st.booleans(),
    )
    @_SETTINGS
    def test_roundtrip_ragged_rows(self, lengths, seed, with_wall):
        rng = np.random.default_rng(seed)
        results = SearchResultBatch(
            [
                SearchResult(ids=rng.integers(-(2**62), 2**62, size=length))
                for length in lengths
            ],
            wall_seconds=0.125 if with_wall else None,
        )
        decoded = codec.decode_result_batch(codec.encode_result_batch(results))
        assert len(decoded) == len(results)
        for want, got in zip(results, decoded):
            assert np.array_equal(want.ids, got.ids)  # int64: bit-exact
        assert decoded.wall_seconds == (0.125 if with_wall else None)

    def test_truncated_rejected(self):
        body = codec.encode_result_batch(
            SearchResultBatch([SearchResult(ids=np.arange(5))])
        )
        for cut in (2, 10, len(body) - 1):
            with pytest.raises(TruncatedFrameError):
                codec.decode_result_batch(body[:cut])

    def test_trailing_bytes_rejected(self):
        body = codec.encode_result_batch(
            SearchResultBatch([SearchResult(ids=np.arange(3))])
        )
        with pytest.raises(WireFormatError, match="trailing"):
            codec.decode_result_batch(body + b"\x01")


class TestSmallBodies:
    @given(key_id=st.integers(-(2**62), 2**62), token=st.text(max_size=64))
    @_SETTINGS
    def test_hello_roundtrip(self, key_id, token):
        got_key, got_token = codec.decode_hello(codec.encode_hello(key_id, token))
        assert got_key == key_id
        assert got_token == token

    def test_hello_token_length_mismatch_rejected(self):
        body = codec.encode_hello(1, "secret")
        with pytest.raises(WireFormatError):
            codec.decode_hello(body + b"extra")

    def test_oversized_token_rejected_on_encode(self):
        with pytest.raises(WireFormatError):
            codec.encode_hello(1, "x" * 70000)

    @given(code=st.sampled_from(list(ErrorCode)), message=st.text(max_size=80))
    @_SETTINGS
    def test_error_roundtrip(self, code, message):
        got_code, got_message = codec.decode_error(
            codec.encode_error(code, message)
        )
        assert got_code is code
        assert got_message == message

    def test_unknown_error_code_maps_to_internal(self):
        body = (250).to_bytes(2, "little") + b"??"
        code, _ = codec.decode_error(body)
        assert code is ErrorCode.INTERNAL

    def test_stats_roundtrip(self):
        payload = {"key_ids": [1, 2], "tenants": {"1": {"completed": 3}}}
        assert codec.decode_stats(codec.encode_stats(payload)) == payload

    def test_stats_rejects_non_object(self):
        with pytest.raises(WireFormatError):
            codec.decode_stats(b"[1, 2]")
        with pytest.raises(WireFormatError):
            codec.decode_stats(b"not json")

    def test_default_body_cap(self):
        assert DEFAULT_MAX_BODY_BYTES == 16 * 1024 * 1024


class TestProtocolV2:
    """The v2 additions: negotiation, deadline envelope, retry-after."""

    @given(seed=seeds, n=ns, d=dims, mode=modes,
           deadline=st.one_of(st.none(), st.integers(1, 0xFFFFFFFF)))
    @_SETTINGS
    def test_query_v2_roundtrip(self, seed, n, d, mode, deadline):
        batch = _make_batch(n, d, mode, seed)
        body = codec.encode_query_batch_v2(batch, deadline)
        got, got_deadline = codec.decode_query_batch_v2(body)
        assert got_deadline == deadline
        assert got.key_id == batch.key_id
        assert np.array_equal(got.trapdoor_vectors, batch.trapdoor_vectors)
        assert got.request == batch.request

    @given(seed=seeds, n=ns, d=dims, mode=modes)
    @_SETTINGS
    def test_v2_matrices_are_byte_identical_to_v1(self, seed, n, d, mode):
        """The dedup digest hinges on this: v2 only prepends envelope
        bytes, so the ciphertext payload (and its digest) is unchanged."""
        batch = _make_batch(n, d, mode, seed)
        v1 = codec.encode_query_batch(batch)
        v2 = codec.encode_query_batch_v2(batch, 1234)
        from repro.net.codec import _QUERY_PREFIX, _QUERY_V2_PREFIX

        assert v1[_QUERY_PREFIX.size:] == v2[_QUERY_V2_PREFIX.size:]

    @pytest.mark.parametrize("bad", [0, -1, 0x1_0000_0000])
    def test_bad_deadline_rejected_on_encode(self, bad):
        batch = _make_batch(1, 3, "full", 7)
        with pytest.raises(WireFormatError, match="deadline"):
            codec.encode_query_batch_v2(batch, bad)

    def test_zero_deadline_on_wire_decodes_none(self):
        batch = _make_batch(1, 3, "full", 7)
        body = codec.encode_query_batch_v2(batch, None)
        _, deadline = codec.decode_query_batch_v2(body)
        assert deadline is None

    def test_hello_ok_roundtrip_and_legacy_bodies(self):
        assert codec.decode_hello_ok(codec.encode_hello_ok()) == (
            codec.PROTOCOL_VERSION_MAX
        )
        assert codec.decode_hello_ok(codec.encode_hello_ok(7)) == 7
        # A v1-era server sends an empty HELLO_OK body.
        assert codec.decode_hello_ok(b"") == 1

    @pytest.mark.parametrize("bad", [0, -3, 256])
    def test_hello_ok_version_out_of_range_rejected(self, bad):
        with pytest.raises(WireFormatError):
            codec.encode_hello_ok(bad)

    @given(code=st.sampled_from(list(ErrorCode)), message=st.text(max_size=80),
           hint=st.one_of(st.none(),
                          st.floats(min_value=0.0, max_value=3600.0,
                                    allow_nan=False)))
    @_SETTINGS
    def test_error_v2_roundtrip(self, code, message, hint):
        got_code, got_message, got_hint = codec.decode_error_v2(
            codec.encode_error_v2(code, message, hint)
        )
        assert got_code is code
        assert got_message == message
        assert got_hint == hint

    def test_error_v2_unknown_code_maps_to_internal(self):
        body = codec.encode_error_v2(ErrorCode.BUSY, "x", 1.0)
        body = (250).to_bytes(2, "little") + body[2:]
        code, _, hint = codec.decode_error_v2(body)
        assert code is ErrorCode.INTERNAL
        assert hint == 1.0

    def test_deadline_error_code_exists(self):
        assert ErrorCode.DEADLINE == 8

    def test_negotiation_is_min_of_both_sides(self):
        """The property a v1 peer depends on: min() never exceeds the
        older side, whatever the newer side advertises."""
        for client_max in range(1, 5):
            for server_max in range(1, 5):
                negotiated = min(client_max,
                                 codec.decode_hello_ok(
                                     codec.encode_hello_ok(server_max)))
                assert negotiated <= client_max
                assert negotiated <= server_max
                assert negotiated >= 1
