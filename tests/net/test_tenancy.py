"""Tenancy-layer tests: auth at the boundary, quotas, leak-free release.

The admission layer's promises:

* authentication runs before anything touches the serving path, in
  constant time, with one indistinguishable error shape for
  unknown-tenant and wrong-token;
* quotas bound *in-flight* queries all-or-nothing per batch, and quota
  positions return via future-completion callbacks — no leak on
  failure, cancellation, or a vanished client;
* a channel only admits queries encrypted under its own tenant's key.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import PPANNSError
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net.tenancy import (
    AuthError,
    QuotaExceededError,
    RateLimitError,
    Tenant,
    TenantAdmission,
    TenantConfig,
    TenantRegistry,
    TokenBucket,
)
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(41)
    owner = DataOwner(
        8, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
    )
    database = rng.standard_normal((80, 8)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(42))
    return server, user, database, int(index.dce_database.key_id)


class TestRegistryAuth:
    def test_token_tenant_authenticates(self):
        registry = TenantRegistry([TenantConfig(7, token="hunter2")])
        assert registry.authenticate(7, "hunter2").key_id == 7

    def test_wrong_token_refused(self):
        registry = TenantRegistry([TenantConfig(7, token="hunter2")])
        with pytest.raises(AuthError):
            registry.authenticate(7, "wrong")
        with pytest.raises(AuthError):
            registry.authenticate(7, None)

    def test_unknown_tenant_refused_with_same_shape(self):
        """Unknown-tenant and wrong-token produce the same message shape,
        so the boundary does not reveal which half failed."""
        registry = TenantRegistry([TenantConfig(7, token="hunter2")])
        with pytest.raises(AuthError) as unknown:
            registry.authenticate(99, "hunter2")
        with pytest.raises(AuthError) as wrong:
            registry.authenticate(7, "nope")
        assert str(unknown.value).replace("99", "X") == str(
            wrong.value
        ).replace("7", "X")

    def test_tokenless_tenant_admits_any_credential(self):
        registry = TenantRegistry([TenantConfig(3)])
        assert registry.authenticate(3, None).key_id == 3
        assert registry.authenticate(3, "anything").key_id == 3

    def test_key_ids_sorted(self):
        registry = TenantRegistry([TenantConfig(9), TenantConfig(-2), TenantConfig(4)])
        assert registry.key_ids() == [-2, 4, 9]

    def test_errors_are_ppanns_errors(self):
        assert issubclass(AuthError, PPANNSError)
        assert issubclass(QuotaExceededError, PPANNSError)

    def test_invalid_quota_rejected(self):
        with pytest.raises(PPANNSError):
            TenantConfig(1, max_in_flight=0)


class TestQuotaCounter:
    def test_acquire_release_cycle(self):
        tenant = Tenant(TenantConfig(1, max_in_flight=2))
        assert tenant.try_acquire()
        assert tenant.try_acquire()
        assert not tenant.try_acquire()
        tenant.release()
        assert tenant.try_acquire()
        assert tenant.in_flight == 2

    def test_batch_acquire_is_all_or_nothing(self):
        tenant = Tenant(TenantConfig(1, max_in_flight=3))
        assert tenant.try_acquire(2)
        assert not tenant.try_acquire(2)  # only 1 position left
        assert tenant.in_flight == 2  # the refused batch took nothing
        assert tenant.try_acquire(1)

    def test_unbounded_tenant_never_refuses(self):
        tenant = Tenant(TenantConfig(1))
        assert tenant.try_acquire(10_000)

    def test_release_floors_at_zero(self):
        tenant = Tenant(TenantConfig(1, max_in_flight=2))
        tenant.release(5)
        assert tenant.in_flight == 0


class TestChannel:
    def test_quota_enforced_and_released_by_completion(self, actors):
        server, user, database, key_id = actors
        queries = [user.encrypt_query(database[i] + 0.01, 3) for i in range(4)]
        registry = TenantRegistry([TenantConfig(key_id, max_in_flight=2)])
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            # Serially, quota 2 never blocks: completions release slots.
            for query in queries:
                assert channel.answer(query, timeout=30).ids.shape[0] == 3
            tenant = registry.get(key_id)
            assert tenant.in_flight == 0
            assert tenant.metrics.snapshot().completed == 4

    def test_over_quota_batch_refused_atomically(self, actors):
        server, user, database, key_id = actors
        queries = [user.encrypt_query(database[i] + 0.01, 3) for i in range(3)]
        registry = TenantRegistry([TenantConfig(key_id, max_in_flight=2)])
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            with pytest.raises(QuotaExceededError):
                channel.submit_batch(queries)
            tenant = registry.get(key_id)
            assert tenant.in_flight == 0  # nothing was admitted
            assert tenant.metrics.snapshot().rejected == 3
            # The tenant is not wedged: a fitting batch still serves.
            futures = channel.submit_batch(queries[:2])
            assert all(f.result(timeout=30).ids.shape[0] == 3 for f in futures)

    def test_foreign_key_refused_by_channel(self, actors):
        server, user, database, key_id = actors
        stranger = QueryUser(
            DataOwner(8, beta=0.3, rng=np.random.default_rng(99)).authorize_user(),
            rng=np.random.default_rng(100),
        )
        foreign = stranger.encrypt_query(database[0] + 0.01, 3)
        registry = TenantRegistry([TenantConfig(key_id)])
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            with pytest.raises(AuthError, match="authenticated for"):
                channel.submit(foreign)
            assert registry.get(key_id).in_flight == 0

    def test_failed_query_still_releases_quota(self, actors):
        from repro.serve.frontend import ServingFrontend

        class _AlwaysFailEngine:
            name = "always-fail"

            def refine(self, dce, trapdoor, candidate_ids, k):
                raise RuntimeError("refine blew up")

        server, user, database, key_id = actors
        query = user.encrypt_query(database[0] + 0.01, 3)
        registry = TenantRegistry([TenantConfig(key_id, max_in_flight=1)])
        frontend = ServingFrontend(
            server, batch_window_seconds=0.0, refine_engine=_AlwaysFailEngine()
        )
        with frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            future = channel.submit(query)
            with pytest.raises(RuntimeError, match="refine blew up"):
                future.result(timeout=30)
            tenant = registry.get(key_id)
            assert tenant.in_flight == 0  # released by the done-callback
            assert tenant.metrics.snapshot().failed == 1
            # Quota 1 is free again: the next submit is admitted (its
            # fate is the engine's problem, not the quota's).
            second = channel.submit(query)
            with pytest.raises(RuntimeError):
                second.result(timeout=30)

    def test_stats_view_shape(self, actors):
        server, user, database, key_id = actors
        query = user.encrypt_query(database[0] + 0.01, 3)
        registry = TenantRegistry(
            [TenantConfig(key_id, token="t", max_in_flight=5), TenantConfig(12345)]
        )
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            admission = TenantAdmission(frontend, registry)
            channel = admission.channel(key_id, "t")
            channel.answer(query, timeout=30)
            view = admission.stats()
        assert view["key_ids"] == sorted([key_id, 12345])
        mine = view["tenants"][str(key_id)]
        assert mine["authenticated"] is True
        assert mine["max_in_flight"] == 5
        assert mine["completed"] == 1
        other = view["tenants"]["12345"]
        assert other["submitted"] == 0
        assert "queue_depth" in view

    def test_empty_batch_is_a_noop(self, actors):
        server, user, database, key_id = actors
        registry = TenantRegistry([TenantConfig(key_id, max_in_flight=1)])
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            assert channel.submit_batch([]) == []
            assert registry.get(key_id).in_flight == 0


class _FakeClock:
    """A hand-cranked monotonic clock for deterministic bucket refills."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal_with_hint(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        for _ in range(3):
            assert bucket.try_acquire() is None
        hint = bucket.try_acquire()
        # Empty bucket at 10 tokens/s: one token is 0.1 s away.
        assert hint == pytest.approx(0.1)

    def test_refill_is_continuous_and_capped(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire() is None
        clock.advance(0.5)  # one token back
        assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None
        clock.advance(1000.0)  # refill far past burst; cap holds
        for _ in range(4):
            assert bucket.try_acquire() is None
        assert bucket.try_acquire() is not None

    def test_batch_acquire_is_all_or_nothing(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=5.0, clock=clock)
        hint = bucket.try_acquire(8)  # can never fit? burst is 5
        assert hint == pytest.approx(3.0)  # 8 - 5 tokens at 1/s
        # The refusal spent nothing: 5 singles still fit.
        for _ in range(5):
            assert bucket.try_acquire() is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(PPANNSError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(PPANNSError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)
        with pytest.raises(PPANNSError):
            TenantConfig(1, burst=4.0)  # burst requires rate
        with pytest.raises(PPANNSError):
            TenantConfig(1, rate=-1.0)


class TestRateLimitedTenant:
    def test_check_rate_raises_typed_with_hint(self):
        clock = _FakeClock()
        tenant = Tenant(TenantConfig(5, rate=2.0, burst=2.0), clock=clock)
        tenant.check_rate()
        tenant.check_rate()
        with pytest.raises(RateLimitError) as excinfo:
            tenant.check_rate()
        assert isinstance(excinfo.value, QuotaExceededError)
        assert excinfo.value.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        tenant.check_rate()  # token accrued; admitted again

    def test_unmetered_tenant_never_rate_limits(self):
        tenant = Tenant(TenantConfig(5))
        for _ in range(1000):
            tenant.check_rate()

    def test_channel_refuses_over_rate_and_counts_it(self, actors):
        server, user, database, key_id = actors
        clock = _FakeClock()
        registry = TenantRegistry()
        registry.register(TenantConfig(key_id, rate=1.0, burst=2.0), clock=clock)
        query = user.encrypt_query(database[0] + 0.01, 3)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            channel.answer(query, timeout=30)
            channel.answer(query, timeout=30)
            with pytest.raises(RateLimitError):
                channel.submit(query)
            stats = registry.get(key_id).stats()
            assert stats["rate"] == 1.0
            assert stats["rate_limited"] == 1
            assert stats["rejected"] == 1
            # The refusal spent no in-flight quota and the frontend
            # counted the shed for the metrics view.
            assert registry.get(key_id).in_flight == 0
            assert frontend.metrics.snapshot().rate_limited == 1

    def test_rate_refusal_checked_before_quota(self, actors):
        """A rate-refused batch must not consume in-flight positions."""
        server, user, database, key_id = actors
        clock = _FakeClock()
        registry = TenantRegistry()
        registry.register(
            TenantConfig(key_id, max_in_flight=8, rate=1.0, burst=1.0),
            clock=clock,
        )
        queries = [user.encrypt_query(database[i] + 0.01, 3) for i in range(3)]
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            channel = TenantAdmission(frontend, registry).channel(key_id)
            with pytest.raises(RateLimitError):
                channel.submit_batch(queries)
            assert registry.get(key_id).in_flight == 0
