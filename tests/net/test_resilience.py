"""End-to-end resilience: negotiation, deadlines, limits, retries.

The contract this file pins down:

* **Negotiation** — a v2 client against a v2 server speaks v2 (deadline
  budgets travel); a v1 peer on either side falls back to the v1
  stream, byte for byte, and still round-trips.
* **Deadlines over the wire** — an expired budget comes back as a typed
  :class:`DeadlineExceededError` (the DEADLINE wire code), never a hang.
* **Overload refusals** — the server-wide connection cap and per-tenant
  token-bucket rate both refuse typed, with retry-after hints on v2.
* **Client retries** — deterministic under an injected RNG and sleep;
  a torn connection is retried and the retried ciphertexts dedup
  against the server's result cache instead of double-running.
* **Caller timeouts** — ``answer(timeout=...)`` failure aborts the
  connection (no orphaned future can desync FIFO matching) and the
  next call reconnects.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.protocol import EncryptedQueryBatch
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net import (
    NetClient,
    NetServer,
    QuotaExceededError,
    RequestTimeoutError,
    TenantConfig,
    codec,
)
from repro.net.client import ConnectionClosedError
from repro.net.codec import MessageType
from repro.serve import DeadlineExceededError, QueueFullError
from repro.testing import CallTrigger, FaultySocket
from tests.conftest import FAST_HNSW

_TIMEOUT = 30


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(71)
    owner = DataOwner(
        8, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
    )
    database = rng.standard_normal((80, 8)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(72))
    return server, user, database, int(index.dce_database.key_id)


class TestNegotiation:
    def test_v2_client_v2_server_negotiates_v2(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    assert client.protocol_version == codec.PROTOCOL_VERSION_MAX
                    query = user.encrypt_query(database[0] + 0.01, 4)
                    expected = server.answer(query)
                    got = client.answer(
                        query, timeout=_TIMEOUT, deadline_ms=60_000
                    )
                    assert np.array_equal(got.ids, expected.ids)

    def test_v1_client_round_trips_against_v2_server(self, actors):
        """An old client ignores the HELLO_OK body and speaks plain v1
        QUERY frames; the server must answer it unchanged."""
        server, user, database, key_id = actors
        query = user.encrypt_query(database[1] + 0.01, 4)
        expected = server.answer(query)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                sock = socket.create_connection(net.address, timeout=_TIMEOUT)
                try:
                    codec.send_frame(
                        sock, MessageType.HELLO, codec.encode_hello(key_id)
                    )
                    reply = codec.read_frame_from(sock, timeout=_TIMEOUT)
                    assert reply[0] is MessageType.HELLO_OK
                    # A v1-era client never looks inside HELLO_OK.
                    batch = EncryptedQueryBatch.from_queries([query])
                    codec.send_frame(
                        sock,
                        MessageType.QUERY,
                        codec.encode_query_batch(batch),
                    )
                    msg_type, body = codec.read_frame_from(
                        sock, timeout=_TIMEOUT
                    )
                    assert msg_type is MessageType.RESULT
                    results = codec.decode_result_batch(body)
                    assert np.array_equal(results[0].ids, expected.ids)
                finally:
                    sock.close()

    def test_v1_capped_client_refuses_deadline_and_still_serves(
        self, actors, monkeypatch
    ):
        """Force the client's max down to 1: it must send v1 frames,
        answer correctly, and refuse a deadline_ms it cannot carry."""
        server, user, database, key_id = actors
        monkeypatch.setattr(codec, "PROTOCOL_VERSION_MAX", 1)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    assert client.protocol_version == 1
                    query = user.encrypt_query(database[2] + 0.01, 4)
                    expected = server.answer(query)
                    got = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(got.ids, expected.ids)
                    with pytest.raises(ParameterError, match="protocol v2"):
                        client.submit(query, deadline_ms=100)


class TestDeadlineOverWire:
    def test_expired_deadline_fails_typed_not_hangs(self, actors):
        """A 1 ms budget under a 300 ms batch window must be shed by
        the scheduler and surface as DeadlineExceededError."""
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.3) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    query = user.encrypt_query(database[3] + 0.01, 4)
                    with pytest.raises(DeadlineExceededError):
                        client.answer(query, timeout=_TIMEOUT, deadline_ms=1)
            assert frontend.metrics.snapshot().deadline_sheds >= 1

    def test_deadline_shed_does_not_poison_the_connection(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    query = user.encrypt_query(database[4] + 0.01, 4)
                    expected = server.answer(query)
                    try:
                        client.answer(query, timeout=_TIMEOUT, deadline_ms=1)
                    except DeadlineExceededError:
                        pass
                    # The same connection keeps serving afterwards.
                    got = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(got.ids, expected.ids)


class TestConnectionLimit:
    def test_over_limit_connection_refused_typed(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend, [TenantConfig(key_id)], max_connections=1
            ) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as first:
                    assert net.connections == 1
                    with pytest.raises(QueueFullError, match="connection"):
                        NetClient(host, port, key_id)
                    assert frontend.metrics.snapshot().connection_refusals == 1
                    # The admitted connection is unaffected.
                    query = user.encrypt_query(database[5] + 0.01, 4)
                    first.answer(query, timeout=_TIMEOUT)
                # Slot released on close: the next connection is admitted.
                deadline = time.monotonic() + _TIMEOUT
                while net.connections > 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                with NetClient(host, port, key_id) as second:
                    second.answer(query, timeout=_TIMEOUT)

    def test_invalid_max_connections_rejected(self, actors):
        server, _, _, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with pytest.raises(ParameterError, match="max_connections"):
                NetServer(frontend, [TenantConfig(key_id)], max_connections=0)


class TestRateLimitOverWire:
    def test_over_rate_query_refused_with_retry_after(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(key_id, rate=0.001, burst=1.0)],
            ) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    query = user.encrypt_query(database[6] + 0.01, 4)
                    client.answer(query, timeout=_TIMEOUT)  # spends the burst
                    with pytest.raises(QuotaExceededError) as excinfo:
                        client.answer(query, timeout=_TIMEOUT)
                    # The v2 ERROR frame carried the bucket's hint.
                    assert excinfo.value.retry_after is not None
                    assert excinfo.value.retry_after > 0
            assert frontend.metrics.snapshot().rate_limited >= 1


class TestClientRetries:
    def test_backoff_schedule_is_deterministic(self, actors):
        server, _, _, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(
                    host,
                    port,
                    key_id,
                    retries=3,
                    backoff_base=0.1,
                    backoff_cap=0.3,
                    rng=random.Random(7),
                ) as client:
                    reference = random.Random(7)
                    for attempt, cap in enumerate([0.1, 0.2, 0.3, 0.3]):
                        want = reference.uniform(0.0, cap)
                        assert client._backoff_delay(attempt, None) == want
                    # A server hint floors the jittered draw.
                    assert client._backoff_delay(0, 5.0) == 5.0

    def test_torn_connection_is_retried_and_dedups(self, actors, monkeypatch):
        """Tear the connection at the first QUERY frame: the client must
        reconnect, re-send byte-identical ciphertexts, and succeed —
        with the recorded sleep schedule, not a real wait."""
        server, user, database, key_id = actors
        trigger = CallTrigger(2)  # frame 1 is HELLO; fault the first QUERY
        real_create = socket.create_connection
        dialed = []

        def faulty_first_connection(address, timeout=None):
            sock = real_create(address, timeout=timeout)
            dialed.append(address)
            if len(dialed) == 1:
                return FaultySocket(sock, trigger, action="close")
            return sock

        monkeypatch.setattr(
            socket, "create_connection", faulty_first_connection
        )
        slept = []

        def recorded_sleep(delay):
            slept.append(delay)
            time.sleep(0.05)  # yield so the reader notices the teardown
        with server.serving_frontend(
            batch_window_seconds=0.0, cache_size=32
        ) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(
                    host,
                    port,
                    key_id,
                    retries=5,
                    rng=random.Random(3),
                    sleep=recorded_sleep,
                ) as client:
                    query = user.encrypt_query(database[7] + 0.01, 4)
                    expected = server.answer(query)
                    got = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(got.ids, expected.ids)
                    assert client.retry_count >= 1
                    assert len(slept) == client.retry_count
                    assert len(dialed) >= 2  # reconnected
                    # Second identical send dedups server-side.
                    again = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(again.ids, expected.ids)
            assert frontend.metrics.snapshot().cache_hits >= 1

    def test_deadline_error_is_not_retried(self, actors):
        server, user, database, key_id = actors
        hooks = []
        with server.serving_frontend(batch_window_seconds=0.3) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(
                    host,
                    port,
                    key_id,
                    retries=2,
                    rng=random.Random(1),
                    sleep=lambda _: None,
                    on_retry=lambda: hooks.append(1),
                ) as client:
                    query = user.encrypt_query(database[8] + 0.01, 4)
                    # DeadlineExceededError is NOT retryable: it would
                    # fail identically, so it must surface at once.
                    with pytest.raises(DeadlineExceededError):
                        client.answer(query, timeout=_TIMEOUT, deadline_ms=1)
                    assert client.retry_count == 0
                    assert hooks == []

    def test_invalid_retry_parameters_rejected(self, actors):
        server, _, _, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with pytest.raises(ParameterError, match="retries"):
                    NetClient(host, port, key_id, retries=-1)
                with pytest.raises(ParameterError, match="backoff"):
                    NetClient(host, port, key_id, backoff_base=0.0)


class _StallServer:
    """Accepts, handshakes (v2), then swallows every later frame."""

    def __init__(self) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = self._listener.getsockname()
        self._closing = False
        self._conns: "list[socket.socket]" = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._conns.append(conn)
            threading.Thread(
                target=self._stall, args=(conn,), daemon=True
            ).start()

    def _stall(self, conn: socket.socket) -> None:
        try:
            frame = codec.read_frame_from(conn, timeout=_TIMEOUT)
            if frame is None:
                return
            codec.send_frame(
                conn, MessageType.HELLO_OK, codec.encode_hello_ok()
            )
            while conn.recv(65536):
                pass  # drain and never answer
        except OSError:
            pass

    def close(self) -> None:
        self._closing = True
        self._listener.close()
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


class TestCallerTimeoutRegression:
    def test_stalled_server_times_out_typed_and_clean(self, actors):
        _, user, database, key_id = actors
        stall = _StallServer()
        try:
            host, port = stall.address
            client = NetClient(host, port, key_id, timeout=_TIMEOUT)
            try:
                query = user.encrypt_query(database[9] + 0.01, 4)
                start = time.monotonic()
                with pytest.raises(RequestTimeoutError):
                    client.answer(query, timeout=0.3)
                assert time.monotonic() - start < _TIMEOUT
                # The connection was aborted: no orphaned pending entry
                # is left to desync FIFO matching, and the socket is
                # down until the next blocking call redials.
                assert len(client._pending) == 0
                assert client._sock is None
                # The next call reconnects (and times out typed again —
                # the server is still stalled — rather than desyncing).
                with pytest.raises(RequestTimeoutError):
                    client.answer(query, timeout=0.3)
                assert len(client._pending) == 0
            finally:
                client.close()
        finally:
            stall.close()

    def test_timeout_then_healthy_server_recovers(self, actors):
        """After a caller timeout against a live server, the next call
        reconnects and answers — the orphaned reply cannot be matched
        to the wrong request because the old socket is gone."""
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.2) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    query = user.encrypt_query(database[10] + 0.01, 4)
                    expected = server.answer(query)
                    # A timeout far below the batch window trips
                    # mid-flight, deterministically...
                    with pytest.raises(RequestTimeoutError):
                        client.answer(query, timeout=0.02)
                    # ...yet the next call reconnects and the answer is
                    # matched to the *new* request, bit-identical.
                    got = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(got.ids, expected.ids)

    def test_server_close_triggers_client_reconnect(self, actors):
        """A server-side disconnect clears the client's socket so the
        next blocking call redials instead of writing into the void."""
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                client = NetClient(host, port, key_id, retries=3,
                                   rng=random.Random(5),
                                   sleep=lambda _: None)
        # First NetServer is gone; its socket closed under the client.
        try:
            deadline = time.monotonic() + _TIMEOUT
            while client._sock is not None:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            with server.serving_frontend(batch_window_seconds=0.0) as frontend:
                with NetServer(
                    frontend, [TenantConfig(key_id)], port=port
                ) as net:
                    query = user.encrypt_query(database[11] + 0.01, 4)
                    expected = server.answer(query)
                    got = client.answer(query, timeout=_TIMEOUT)
                    assert np.array_equal(got.ids, expected.ids)
        finally:
            client.close()

    def test_submit_after_close_raises_typed(self, actors):
        server, user, database, key_id = actors
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(frontend, [TenantConfig(key_id)]) as net:
                host, port = net.address
                client = NetClient(host, port, key_id)
                client.close()
                query = user.encrypt_query(database[12] + 0.01, 4)
                with pytest.raises(ConnectionClosedError, match="closed"):
                    client.submit(query)
                with pytest.raises(ConnectionClosedError, match="closed"):
                    client.answer(query, timeout=1.0)
