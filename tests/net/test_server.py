"""Loopback end-to-end tests of the TCP server + client pair.

The network layer's contract: it changes *transport only*.  Every id a
socket client receives must be bit-identical to the in-process
``ServingFrontend`` answer for the same (canonical) ciphertexts, typed
errors must survive the wire as the same exception types, and the
tenancy view must be reachable through the ``stats`` message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.protocol import EncryptedQueryBatch
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net import (
    AuthError,
    NetClient,
    NetServer,
    QuotaExceededError,
    TenantConfig,
)
from repro.net.client import ConnectionClosedError
from repro.serve.frontend import replay_open_loop
from tests.conftest import FAST_HNSW

_TIMEOUT = 30


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(51)
    owner = DataOwner(
        8, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
    )
    database = rng.standard_normal((100, 8)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(52))
    return server, user, database, int(index.dce_database.key_id)


@pytest.fixture()
def loopback(actors):
    """A running frontend + NetServer over an ephemeral loopback port."""
    server, user, database, key_id = actors
    with server.serving_frontend(
        max_batch_size=4, batch_window_seconds=0.01
    ) as frontend:
        with NetServer(
            frontend,
            [TenantConfig(key_id, token="s3cret")],
            frame_timeout=_TIMEOUT,
        ) as net:
            yield net, server, user, database, key_id


class TestParity:
    def test_single_queries_match_offline_answers(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        queries = [user.encrypt_query(database[i] + 0.01, 5) for i in range(5)]
        expected = [server.answer(q) for q in queries]
        with NetClient(host, port, key_id, token="s3cret") as client:
            for query, want in zip(queries, expected):
                got = client.answer(query, timeout=_TIMEOUT)
                assert np.array_equal(got.ids, want.ids)

    def test_batch_message_matches_offline_answers(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        batch = user.encrypt_queries(database[:6] + 0.01, 5)
        expected = server.answer(batch)
        with NetClient(net.address[0], net.address[1], key_id, token="s3cret") as client:
            got = client.answer_batch(batch, timeout=_TIMEOUT)
        assert len(got) == len(expected)
        for want, row in zip(expected, got):
            assert np.array_equal(want.ids, row.ids)

    def test_filter_only_batch_over_the_wire(self, loopback):
        """The zero-trapdoor envelope: filter_only traffic serves over
        the socket with its key_id intact (the satellite fix)."""
        net, server, user, database, key_id = loopback
        host, port = net.address
        queries = [
            user.encrypt_query(database[i] + 0.01, 5, mode="filter_only")
            for i in range(4)
        ]
        expected = [server.answer(q) for q in queries]
        with NetClient(host, port, key_id, token="s3cret") as client:
            got = client.answer_many(queries, timeout=_TIMEOUT)
        for want, row in zip(expected, got):
            assert np.array_equal(want.ids, row.ids)

    def test_pipelined_futures_resolve_in_order(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(8)]
        expected = [server.answer(q) for q in queries]
        with NetClient(host, port, key_id, token="s3cret") as client:
            futures = [client.submit(q) for q in queries]  # all in flight
            for future, want in zip(futures, expected):
                assert np.array_equal(future.result(timeout=_TIMEOUT).ids, want.ids)

    def test_open_loop_replayer_drives_the_client(self, loopback):
        """NetClient.submit satisfies replay_open_loop's contract, so
        the Poisson replayer serves over the socket unchanged."""
        net, server, user, database, key_id = loopback
        host, port = net.address
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(6)]
        expected = [server.answer(q) for q in queries]
        with NetClient(host, port, key_id, token="s3cret") as client:
            results, elapsed = replay_open_loop(client, queries, rate=None, seed=0)
        assert elapsed > 0
        for want, got in zip(expected, results):
            assert np.array_equal(want.ids, got.ids)


class TestWireErrors:
    def test_wrong_token_raises_auth_error(self, loopback):
        net, _, _, _, key_id = loopback
        host, port = net.address
        with pytest.raises(AuthError):
            NetClient(host, port, key_id, token="wrong")

    def test_unknown_tenant_raises_auth_error(self, loopback):
        net, _, _, _, _ = loopback
        host, port = net.address
        with pytest.raises(AuthError):
            NetClient(host, port, 424242, token="s3cret")

    def test_dimension_mismatch_comes_back_as_parameter_error(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        wrong_user = QueryUser(
            DataOwner(5, beta=0.3, rng=np.random.default_rng(5)).authorize_user(),
            rng=np.random.default_rng(6),
        )
        query = wrong_user.encrypt_query(np.zeros(5), 3)
        # Re-tag the batch with the authenticated key_id so it passes
        # the tenancy boundary and fails at the frontend's dim check.
        batch = EncryptedQueryBatch(
            np.zeros((1, 5)), query.trapdoor.vector[None, :], key_id, query.request
        )
        with NetClient(host, port, key_id, token="s3cret") as client:
            futures = client.submit_batch(batch)
            with pytest.raises(ParameterError):
                futures[0].result(timeout=_TIMEOUT)

    def test_close_fails_inflight_futures_typed(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        client = NetClient(host, port, key_id, token="s3cret")
        client.close()
        with pytest.raises(ConnectionClosedError):
            client.submit(user.encrypt_query(database[0] + 0.01, 3))


class TestQuotaOverTheWire:
    def test_over_quota_batch_refused_with_typed_error(self, actors):
        server, user, database, key_id = actors
        batch = user.encrypt_queries(database[:5] + 0.01, 3)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend, [TenantConfig(key_id, max_in_flight=2)]
            ) as net:
                host, port = net.address
                with NetClient(host, port, key_id) as client:
                    futures = client.submit_batch(batch)
                    for future in futures:
                        with pytest.raises(QuotaExceededError):
                            future.result(timeout=_TIMEOUT)
                    # The connection survives a quota refusal: a fitting
                    # batch on the same socket still serves.
                    small = user.encrypt_queries(database[:2] + 0.01, 3)
                    results = client.answer_batch(small, timeout=_TIMEOUT)
                    assert len(results) == 2


class TestStatsMessage:
    def test_stats_exposes_tenancy_and_frontend_views(self, loopback):
        net, server, user, database, key_id = loopback
        host, port = net.address
        queries = [user.encrypt_query(database[i] + 0.01, 3) for i in range(3)]
        with NetClient(host, port, key_id, token="s3cret") as client:
            for query in queries:
                client.answer(query, timeout=_TIMEOUT)
            stats = client.stats(timeout=_TIMEOUT)
        assert stats["key_ids"] == [key_id]
        tenant = stats["tenants"][str(key_id)]
        assert tenant["completed"] >= 3
        assert tenant["authenticated"] is True
        assert "queue_depth" in stats
        assert stats["frontend"]["completed"] >= 3


class TestMultiTenant:
    def test_two_tenants_serve_concurrently(self, actors):
        """Tenant A (full mode, the index's key) and tenant B (its own
        DCE key, filter_only — answerable because filter_only skips the
        DCE key check) share one scheduler, each under its own quota."""
        server, user, database, key_a = actors
        owner_b = DataOwner(8, beta=0.3, rng=np.random.default_rng(77))
        user_b = QueryUser(owner_b.authorize_user(), rng=np.random.default_rng(78))
        key_b = int(owner_b.authorize_user().dce_key.key_id)
        assert key_a != key_b
        q_a = [user.encrypt_query(database[i] + 0.01, 4) for i in range(4)]
        q_b = [
            user_b.encrypt_query(database[i] + 0.01, 4, mode="filter_only")
            for i in range(4)
        ]
        expected_a = [server.answer(q) for q in q_a]
        with server.serving_frontend(
            max_batch_size=4, batch_window_seconds=0.01
        ) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(key_a, token="a"), TenantConfig(key_b, token="b")],
            ) as net:
                host, port = net.address
                with NetClient(host, port, key_a, token="a") as ca, NetClient(
                    host, port, key_b, token="b"
                ) as cb:
                    futs_a = [ca.submit(q) for q in q_a]
                    futs_b = [cb.submit(q) for q in q_b]
                    for future, want in zip(futs_a, expected_a):
                        assert np.array_equal(
                            future.result(timeout=_TIMEOUT).ids, want.ids
                        )
                    for future in futs_b:
                        assert future.result(timeout=_TIMEOUT).ids.shape[0] == 4
                    stats = ca.stats(timeout=_TIMEOUT)
        assert stats["tenants"][str(key_a)]["completed"] == 4
        assert stats["tenants"][str(key_b)]["completed"] == 4

    def test_tenant_cannot_submit_under_anothers_key(self, actors):
        """Isolation: a connection authenticated as tenant B is refused
        when it replays a batch tagged with tenant A's key_id."""
        server, user, database, key_a = actors
        owner_b = DataOwner(8, beta=0.3, rng=np.random.default_rng(87))
        key_b = int(owner_b.authorize_user().dce_key.key_id)
        batch = user.encrypt_queries(database[:2] + 0.01, 3)  # tagged key_a
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            with NetServer(
                frontend,
                [TenantConfig(key_a, token="a"), TenantConfig(key_b, token="b")],
            ) as net:
                host, port = net.address
                with NetClient(host, port, key_b, token="b") as impostor:
                    futures = impostor.submit_batch(batch)
                    for future in futures:
                        with pytest.raises(AuthError):
                            future.result(timeout=_TIMEOUT)
