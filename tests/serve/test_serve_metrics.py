"""ServerMetrics: counters, percentiles, histograms, snapshots."""

import numpy as np
import pytest

from repro.core.protocol import SearchResult
from repro.serve.metrics import MetricsSnapshot, ServerMetrics, percentile


class TestPercentile:
    def test_empty_sample(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 50) == 3.0
        assert percentile([3.0], 99) == 3.0

    def test_nearest_rank_is_an_observed_value(self):
        values = sorted(float(v) for v in range(1, 101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 100.0

    def test_small_sample_tails(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 3.0


def _result(filter_seconds=0.25, mask_seconds=0.5, refine_seconds=1.0):
    return SearchResult(
        ids=np.array([1, 2], dtype=np.int64),
        filter_seconds=filter_seconds,
        mask_seconds=mask_seconds,
        refine_seconds=refine_seconds,
    )


class TestServerMetrics:
    def test_counters_accumulate(self):
        metrics = ServerMetrics()
        metrics.record_admitted(queue_depth=1)
        metrics.record_admitted(queue_depth=3)
        metrics.record_rejected()
        metrics.record_cache_hit()
        metrics.record_cache_miss()
        metrics.record_cache_miss()
        metrics.record_cache_insert()
        metrics.record_batch(2)
        metrics.record_completed(0.010, _result())
        metrics.record_failed(0.020)
        snap = metrics.snapshot()
        assert snap.submitted == 2
        assert snap.completed == 1
        assert snap.failed == 1
        assert snap.rejected == 1
        assert snap.cache_hits == 1
        assert snap.cache_misses == 2
        assert snap.cache_inserts == 1
        assert snap.batches == 1
        assert snap.max_queue_depth == 3

    def test_stage_seconds_sum_over_results(self):
        metrics = ServerMetrics()
        metrics.record_completed(0.001, _result())
        metrics.record_completed(0.001, _result())
        snap = metrics.snapshot()
        assert snap.stage_seconds["filter"] == pytest.approx(0.5)
        assert snap.stage_seconds["mask"] == pytest.approx(1.0)
        assert snap.stage_seconds["refine"] == pytest.approx(2.0)

    def test_batch_size_histogram_and_mean(self):
        metrics = ServerMetrics()
        for size in (1, 4, 4, 7):
            metrics.record_batch(size)
        snap = metrics.snapshot()
        assert snap.batch_size_histogram == {1: 1, 4: 2, 7: 1}
        assert snap.mean_batch_size == pytest.approx(4.0)

    def test_latency_percentiles(self):
        metrics = ServerMetrics()
        for ms in range(1, 101):
            metrics.record_completed(ms / 1000.0)
        snap = metrics.snapshot()
        assert snap.latency_p50 == pytest.approx(0.050)
        assert snap.latency_p95 == pytest.approx(0.095)
        assert snap.latency_p99 == pytest.approx(0.099)
        assert snap.latency_max == pytest.approx(0.100)
        assert snap.latency_mean == pytest.approx(0.0505)

    def test_latency_reservoir_is_bounded(self):
        metrics = ServerMetrics(latency_window=4)
        for ms in (1, 2, 3, 4, 100, 100, 100, 100):
            metrics.record_completed(ms / 1000.0)
        # Old latencies aged out of the window of 4.
        assert metrics.snapshot().latency_p50 == pytest.approx(0.100)

    def test_qps_uses_elapsed_window(self):
        metrics = ServerMetrics()
        metrics.record_completed(0.001)
        snap = metrics.snapshot()
        assert snap.qps > 0
        assert snap.elapsed_seconds > 0

    def test_reset_zeroes_everything(self):
        metrics = ServerMetrics()
        metrics.record_admitted(5)
        metrics.record_completed(0.001, _result())
        metrics.record_batch(3)
        metrics.record_cache_miss()
        metrics.record_cache_insert()
        metrics.reset()
        snap = metrics.snapshot()
        assert snap.submitted == 0
        assert snap.completed == 0
        assert snap.batches == 0
        assert snap.cache_misses == 0
        assert snap.cache_inserts == 0
        assert snap.latency_p50 == 0.0
        assert snap.stage_seconds == {}

    def test_snapshot_is_frozen_and_json_ready(self):
        metrics = ServerMetrics()
        metrics.record_batch(2)
        metrics.record_completed(0.001, _result())
        snap = metrics.snapshot()
        assert isinstance(snap, MetricsSnapshot)
        with pytest.raises(AttributeError):
            snap.completed = 5
        payload = snap.as_dict()
        # Histogram keys stringify for JSON; stage split rides along.
        assert payload["batch_size_histogram"] == {"2": 1}
        assert set(payload["stage_seconds"]) == {"filter", "mask", "refine"}
        assert {"cache_hits", "cache_misses", "cache_inserts"} <= set(payload)
        import json

        json.dumps(payload)

    def test_invalid_latency_window_rejected(self):
        with pytest.raises(ValueError):
            ServerMetrics(latency_window=0)
