"""ResultCache: LRU behavior and ciphertext-digest keying."""

import numpy as np
import pytest

from repro.core.dce import DCETrapdoor
from repro.core.protocol import EncryptedQuery, SearchRequest, SearchResult
from repro.serve.cache import ResultCache, query_digest


def _query(vec, trap, key_id=7, **request_kwargs):
    request = SearchRequest(k=request_kwargs.pop("k", 3), **request_kwargs)
    return EncryptedQuery(
        np.asarray(vec, dtype=np.float64),
        DCETrapdoor(np.asarray(trap, dtype=np.float64), key_id),
        request=request,
    )


def _result(*ids):
    return SearchResult(ids=np.array(ids, dtype=np.int64))


class TestQueryDigest:
    def test_identical_queries_collide(self):
        a = _query([1.0, 2.0], [3.0, 4.0])
        b = _query([1.0, 2.0], [3.0, 4.0])
        assert query_digest(a) == query_digest(b)

    @pytest.mark.parametrize(
        "other",
        [
            _query([1.0, 2.5], [3.0, 4.0]),              # sap differs
            _query([1.0, 2.0], [3.0, 4.5]),              # trapdoor differs
            _query([1.0, 2.0], [3.0, 4.0], key_id=8),    # key differs
            _query([1.0, 2.0], [3.0, 4.0], k=4),         # k differs
            _query([1.0, 2.0], [3.0, 4.0], ratio_k=2),   # ratio_k differs
            _query([1.0, 2.0], [3.0, 4.0], ef_search=9), # ef differs
            _query([1.0, 2.0], [3.0, 4.0], mode="filter_only"),
        ],
    )
    def test_any_answer_relevant_field_changes_digest(self, other):
        base = _query([1.0, 2.0], [3.0, 4.0])
        assert query_digest(base) != query_digest(other)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=2)
        digest = b"d1"
        assert cache.get(digest) is None
        cache.put(digest, _result(1, 2))
        hit = cache.get(digest)
        assert np.array_equal(hit.ids, [1, 2])
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(b"a", _result(1))
        cache.put(b"b", _result(2))
        cache.get(b"a")              # refresh a; b becomes LRU
        cache.put(b"c", _result(3))  # evicts b
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert len(cache) == 2

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put(b"a", _result(1))
        assert cache.get(b"a") is None
        assert len(cache) == 0

    def test_clear_drops_everything(self):
        cache = ResultCache(capacity=4)
        cache.put(b"a", _result(1))
        cache.put(b"b", _result(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(b"a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=-1)

    def test_overwrite_same_digest_keeps_one_entry(self):
        cache = ResultCache(capacity=2)
        cache.put(b"a", _result(1))
        cache.put(b"a", _result(9))
        assert len(cache) == 1
        assert np.array_equal(cache.get(b"a").ids, [9])

    def test_stale_generation_put_is_dropped(self):
        """An answer computed before clear() (index mutation) must not
        repopulate the flushed cache."""
        cache = ResultCache(capacity=4)
        stale_generation = cache.generation
        cache.clear()  # mutation happened while the answer was in flight
        cache.put(b"a", _result(1), generation=stale_generation)
        assert cache.get(b"a") is None
        # A current-generation put still lands.
        cache.put(b"b", _result(2), generation=cache.generation)
        assert cache.get(b"b") is not None

    def test_clear_bumps_generation(self):
        cache = ResultCache(capacity=4)
        before = cache.generation
        cache.clear()
        assert cache.generation == before + 1
