"""Deadline propagation: admission refusal, scheduler shedding, metrics.

The load-shedding contract: a query with a ``deadline_ms`` budget either
completes within it or fails with :class:`DeadlineExceededError` — and
an expired query is shed *before* any filter/refine work, at one of two
points: synchronously at admission (the estimated queue wait already
exceeds the budget) or in the scheduler (the deadline passed while the
query waited).
"""

import queue as queue_module
import time

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.serve import DeadlineExceededError, ServerMetrics
from repro.serve.scheduler import BatchScheduler, PendingQuery
from tests.conftest import FAST_HNSW


def _build_actors(seed=21, n=80, dim=8):
    rng = np.random.default_rng(seed)
    owner = DataOwner(
        dim, beta=0.3, hnsw_params=FAST_HNSW, backend="bruteforce", rng=rng
    )
    database = rng.standard_normal((n, dim)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return server, user, database


class TestSchedulerShedding:
    def test_expired_query_shed_before_execute(self):
        """An already-expired query never reaches the execute hook —
        the query object is never even inspected."""
        source = queue_module.Queue()
        executed = []
        metrics = ServerMetrics()
        scheduler = BatchScheduler(
            source,
            lambda stacked: executed.append(stacked),
            max_batch_size=4,
            batch_window_seconds=0.0,
            metrics=metrics,
        ).start()
        try:
            pending = PendingQuery(
                query=object(), deadline_at=time.perf_counter() - 1.0
            )
            assert scheduler.offer(pending)
            with pytest.raises(DeadlineExceededError, match="shed"):
                pending.future.result(timeout=10)
        finally:
            scheduler.stop()
        assert executed == []
        snapshot = metrics.snapshot()
        assert snapshot.deadline_sheds == 1
        assert snapshot.failed == 1

    def test_unexpired_deadline_executes_normally(self):
        source = queue_module.Queue()

        class _Outcome:
            ok = True
            value = "answer"

        scheduler = BatchScheduler(
            source,
            lambda stacked: ([_Outcome()], 0.0, None),
            max_batch_size=1,
            batch_window_seconds=0.0,
        ).start()

        class _Query:
            class trapdoor:
                key_id = 1
            request = "r"
            sap_vector = np.zeros(3)

        _Query.trapdoor.vector = np.zeros(4)
        try:
            pending = PendingQuery(
                query=_Query(), deadline_at=time.perf_counter() + 60.0
            )
            assert scheduler.offer(pending)
            assert pending.future.result(timeout=10) == "answer"
        finally:
            scheduler.stop()


class TestAdmissionDeadline:
    def test_invalid_deadline_rejected(self):
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 3)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            for bad in (0, -5):
                with pytest.raises(ParameterError, match="deadline_ms"):
                    frontend.submit(query, deadline_ms=bad)

    def test_generous_deadline_answers_bit_identical(self):
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(4)]
        expected = [server.answer(query) for query in queries]
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            got = [
                frontend.answer(query, timeout=30, deadline_ms=60_000)
                for query in queries
            ]
        for want, have in zip(expected, got):
            assert np.array_equal(want.ids, have.ids)

    def test_hopeless_queue_wait_refused_at_admission(self, monkeypatch):
        """When the estimated wait already exceeds the budget, the
        refusal is synchronous — the query never occupies a queue slot."""
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 3)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            monkeypatch.setattr(
                frontend.metrics, "estimated_wait_seconds", lambda: 5.0
            )
            with pytest.raises(DeadlineExceededError, match="estimated"):
                frontend.submit(query, deadline_ms=100)
            assert frontend.queue_depth == 0
            assert frontend.metrics.snapshot().deadline_sheds == 1
            # A budget above the estimate is admitted and answered.
            monkeypatch.setattr(
                frontend.metrics, "estimated_wait_seconds", lambda: 0.0
            )
            result = frontend.answer(query, timeout=30, deadline_ms=60_000)
            assert result.ids.shape[0] == 3


class TestWaitEstimate:
    def test_zero_before_any_completion(self):
        metrics = ServerMetrics()
        assert metrics.estimated_wait_seconds() == 0.0
        metrics.record_admitted(queue_depth=10)
        assert metrics.estimated_wait_seconds() == 0.0

    def test_littles_law_scales_with_queue_depth(self):
        metrics = ServerMetrics()
        for _ in range(20):
            metrics.record_completed(0.01)
        metrics.record_queue_depth(10)
        shallow = metrics.estimated_wait_seconds()
        assert shallow > 0.0
        metrics.record_queue_depth(40)
        deep = metrics.estimated_wait_seconds()
        # Same service rate (up to the clock's forward drift), four
        # times the queue: roughly four times the wait.
        assert deep > 2.0 * shallow

    def test_empty_queue_estimates_zero(self):
        metrics = ServerMetrics()
        for _ in range(5):
            metrics.record_completed(0.01)
        metrics.record_queue_depth(0)
        assert metrics.estimated_wait_seconds() == 0.0


class TestResilienceCounters:
    def test_counters_flow_through_snapshot_and_as_dict(self):
        metrics = ServerMetrics()
        metrics.record_deadline_shed()
        metrics.record_rate_limited()
        metrics.record_rate_limited()
        metrics.record_connection_refused()
        for _ in range(3):
            metrics.record_retry()
        snapshot = metrics.snapshot()
        assert snapshot.deadline_sheds == 1
        assert snapshot.rate_limited == 2
        assert snapshot.connection_refusals == 1
        assert snapshot.retries == 3
        payload = snapshot.as_dict()
        for key in (
            "deadline_sheds", "rate_limited", "connection_refusals", "retries",
        ):
            assert key in payload
        metrics.reset()
        assert metrics.snapshot().deadline_sheds == 0
