"""ServingFrontend end-to-end: parity, backpressure, error isolation.

The serving layer promises it changes *scheduling only*: every answer a
scheduler-formed micro-batch delivers must be bit-identical to the
offline ``CloudServer.answer`` path, failures must stay per-query, and
a full admission queue must shed load explicitly.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.dce import DCETrapdoor
from repro.core.errors import (
    KeyMismatchError,
    ParameterError,
    PPANNSError,
)
from repro.core.protocol import EncryptedQuery, SearchResultBatch
from repro.core.refine import get_refine_engine
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.serve import QueueFullError, ServingFrontend
from tests.conftest import FAST_HNSW


def _build_actors(backend="bruteforce", shards=None, seed=11, n=80, dim=8):
    rng = np.random.default_rng(seed)
    owner = DataOwner(
        dim,
        beta=0.3,
        hnsw_params=FAST_HNSW,
        backend=backend,
        shards=shards,
        rng=rng,
    )
    database = rng.standard_normal((n, dim)) * 2.0
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return server, user, database


class TestServedParity:
    @pytest.mark.parametrize("backend", ["hnsw", "nsg", "ivf", "bruteforce"])
    def test_served_matches_offline_answer(self, backend):
        server, user, database = _build_actors(backend=backend)
        queries = [user.encrypt_query(database[i] + 0.01, 5) for i in range(6)]
        expected = [server.answer(query) for query in queries]
        with server.serving_frontend(
            max_batch_size=3, batch_window_seconds=0.05
        ) as frontend:
            futures = [frontend.submit(query) for query in queries]
            served = [future.result(timeout=30) for future in futures]
        for want, got in zip(expected, served):
            assert np.array_equal(want.ids, got.ids)

    def test_sharded_scatter_gather_from_scheduler_thread(self):
        """Shard scatter-gather must run correctly when the batch is
        dispatched from the scheduler's worker thread (nested fan-out)."""
        server, user, database = _build_actors(backend="bruteforce", shards=3)
        queries = [user.encrypt_query(database[i] + 0.01, 5) for i in range(5)]
        expected = [server.answer(query) for query in queries]
        with server.serving_frontend(
            max_batch_size=5, batch_window_seconds=0.05
        ) as frontend:
            served = [
                future.result(timeout=30)
                for future in [frontend.submit(query) for query in queries]
            ]
        for want, got in zip(expected, served):
            assert np.array_equal(want.ids, got.ids)
            assert got.shard_timings is not None
            assert sorted(t.shard_id for t in got.shard_timings) == [0, 1, 2]

    def test_filter_only_queries_serve(self):
        server, user, database = _build_actors()
        queries = [
            user.encrypt_query(database[i] + 0.01, 5, mode="filter_only")
            for i in range(4)
        ]
        expected = [server.answer(query) for query in queries]
        with server.serving_frontend(
            max_batch_size=4, batch_window_seconds=0.05
        ) as frontend:
            served = [
                future.result(timeout=30)
                for future in [frontend.submit(query) for query in queries]
            ]
        for want, got in zip(expected, served):
            assert np.array_equal(want.ids, got.ids)
            assert got.refine_engine is None

    def test_mixed_requests_split_into_compatible_groups(self):
        """Different k values can share a micro-batch; each group gets
        its own stacked message and every answer stays correct."""
        server, user, database = _build_actors()
        q_small = [user.encrypt_query(database[i] + 0.01, 3) for i in range(3)]
        q_large = [user.encrypt_query(database[i] + 0.01, 7) for i in range(3)]
        interleaved = [q for pair in zip(q_small, q_large) for q in pair]
        expected = [server.answer(query) for query in interleaved]
        with server.serving_frontend(
            max_batch_size=6, batch_window_seconds=0.1
        ) as frontend:
            served = [
                future.result(timeout=30)
                for future in [frontend.submit(query) for query in interleaved]
            ]
        for query, want, got in zip(interleaved, expected, served):
            assert got.ids.shape[0] == query.k
            assert np.array_equal(want.ids, got.ids)

    def test_answer_many_returns_batch_in_submission_order(self):
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(5)]
        expected = [server.answer(query) for query in queries]
        with server.serving_frontend(batch_window_seconds=0.02) as frontend:
            batch = frontend.answer_many(queries)
        assert isinstance(batch, SearchResultBatch)
        assert len(batch) == 5
        for want, got in zip(expected, batch):
            assert np.array_equal(want.ids, got.ids)


class _MarkedFailureEngine:
    """Refine engine that raises for queries whose trapdoor is NaN-marked."""

    name = "marked-failure"

    def refine(self, dce, trapdoor, candidate_ids, k):
        if np.isnan(trapdoor.vector).any():
            raise RuntimeError("poisoned query")
        return get_refine_engine("heap").refine(dce, trapdoor, candidate_ids, k)


def _poisoned_copy(query):
    """The same query message with a NaN-marked trapdoor (same key/shape)."""
    return EncryptedQuery(
        query.sap_vector,
        DCETrapdoor(
            np.full_like(query.trapdoor.vector, np.nan), query.trapdoor.key_id
        ),
        request=query.request,
    )


class TestErrorSemantics:
    """map_ordered/map_settled semantics surfaced at the serving layer:
    a failing query inside a scheduler-formed micro-batch must not
    kill, reorder, or stall its batch siblings, and the queue must keep
    draining afterward."""

    def test_poisoned_query_fails_alone_and_queue_keeps_draining(self):
        server, user, database = _build_actors()
        good = [user.encrypt_query(database[i] + 0.01, 5) for i in range(4)]
        expected = [server.answer(query) for query in good]
        poisoned = _poisoned_copy(good[1])
        frontend = ServingFrontend(
            server,
            max_batch_size=5,
            batch_window_seconds=0.1,
            refine_engine=_MarkedFailureEngine(),
        )
        with frontend:
            # One micro-batch: good, POISONED, good, good, good.
            submitted = [
                frontend.submit(good[0]),
                frontend.submit(poisoned),
                frontend.submit(good[1]),
                frontend.submit(good[2]),
                frontend.submit(good[3]),
            ]
            # The poisoned query delivers its own failure...
            with pytest.raises(RuntimeError, match="poisoned query"):
                submitted[1].result(timeout=30)
            # ...while every sibling completes with the right answer —
            # not killed, not stalled, and not reordered (each future
            # carries its own query's ids).
            assert np.array_equal(
                submitted[0].result(timeout=30).ids, expected[0].ids
            )
            for future, want in zip(submitted[2:], expected[1:]):
                assert np.array_equal(future.result(timeout=30).ids, want.ids)
            # The scheduler survived: later traffic still drains.
            after = frontend.submit(good[0]).result(timeout=30)
            assert np.array_equal(after.ids, expected[0].ids)
            snapshot = frontend.metrics.snapshot()
        assert snapshot.failed == 1
        assert snapshot.completed == 5

    def test_group_level_failure_poisons_only_its_group(self):
        """A batch-level validation failure (wrong DCE key) fails every
        query of that key's group — and only that group; the queue keeps
        draining."""
        server, user, database = _build_actors()
        stranger = QueryUser(
            DataOwner(8, beta=0.3, rng=np.random.default_rng(99)).authorize_user(),
            rng=np.random.default_rng(100),
        )
        good = [user.encrypt_query(database[i] + 0.01, 5) for i in range(2)]
        bad = [stranger.encrypt_query(database[i] + 0.01, 5) for i in range(2)]
        expected = [server.answer(query) for query in good]
        with server.serving_frontend(
            max_batch_size=4, batch_window_seconds=0.1
        ) as frontend:
            futures = [
                frontend.submit(good[0]),
                frontend.submit(bad[0]),
                frontend.submit(good[1]),
                frontend.submit(bad[1]),
            ]
            for future in (futures[1], futures[3]):
                with pytest.raises(KeyMismatchError):
                    future.result(timeout=30)
            assert np.array_equal(futures[0].result(timeout=30).ids, expected[0].ids)
            assert np.array_equal(futures[2].result(timeout=30).ids, expected[1].ids)
            # Queue drains afterward.
            again = frontend.submit(good[0]).result(timeout=30)
            assert np.array_equal(again.ids, expected[0].ids)

    def test_dimension_mismatch_fails_fast_at_submit(self):
        server, user, _ = _build_actors()
        wrong_dim_user = QueryUser(
            DataOwner(5, beta=0.3, rng=np.random.default_rng(5)).authorize_user(),
            rng=np.random.default_rng(6),
        )
        query = wrong_dim_user.encrypt_query(np.zeros(5), 3)
        with server.serving_frontend() as frontend:
            with pytest.raises(ParameterError, match="dimension"):
                frontend.submit(query)


class TestBackpressure:
    def test_queue_full_raises_explicitly(self):
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 3) for i in range(6)]
        frontend = ServingFrontend(
            server, max_batch_size=1, batch_window_seconds=0.0, max_queue_depth=2
        )
        release = threading.Event()
        inner_execute = frontend._execute

        def blocked_execute(batch):
            release.wait(timeout=30)
            return inner_execute(batch)

        frontend._execute = blocked_execute
        try:
            frontend.start()
            futures = [frontend.submit(queries[0])]
            # The scheduler thread is blocked inside the first batch;
            # fill the admission queue behind it...
            deadline = time.time() + 5
            rejected = False
            while time.time() < deadline and not rejected:
                try:
                    futures.append(frontend.submit(queries[len(futures) % 6]))
                except QueueFullError:
                    rejected = True
            assert rejected, "queue never reported full"
            assert frontend.metrics.snapshot().rejected >= 1
        finally:
            release.set()
            frontend.stop()
        # Everything admitted before the rejection still answered.
        for future in futures:
            assert future.result(timeout=30).ids.shape[0] == 3

    def test_queue_full_error_is_a_ppanns_error(self):
        assert issubclass(QueueFullError, PPANNSError)

    def test_invalid_queue_depth_rejected(self):
        server, _, _ = _build_actors()
        with pytest.raises(ParameterError):
            ServingFrontend(server, max_queue_depth=0)


class TestCacheIntegration:
    def test_repeat_query_hits_cache_without_a_new_batch(self):
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 5)
        with server.serving_frontend(
            batch_window_seconds=0.0, cache_size=8
        ) as frontend:
            first = frontend.answer(query, timeout=30)
            batches_after_first = frontend.metrics.snapshot().batches
            second = frontend.answer(query, timeout=30)
            snapshot = frontend.metrics.snapshot()
        assert np.array_equal(first.ids, second.ids)
        assert snapshot.cache_hits == 1
        # The first answer missed, computed, and stored; the second hit.
        assert snapshot.cache_misses == 1
        assert snapshot.cache_inserts == 1
        assert snapshot.batches == batches_after_first  # no new dispatch
        assert frontend.cache.hits == 1
        assert frontend.cache.misses == 1
        assert frontend.cache.inserts == 1

    def test_cache_clear_forces_recompute(self):
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 5)
        with server.serving_frontend(
            batch_window_seconds=0.0, cache_size=8
        ) as frontend:
            first = frontend.answer(query, timeout=30)
            frontend.cache_clear()
            second = frontend.answer(query, timeout=30)
            snapshot = frontend.metrics.snapshot()
        assert np.array_equal(first.ids, second.ids)
        assert snapshot.cache_hits == 0
        assert snapshot.completed == 2

    def test_cache_disabled_by_default(self):
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 5)
        with server.serving_frontend(batch_window_seconds=0.0) as frontend:
            frontend.answer(query, timeout=30)
            frontend.answer(query, timeout=30)
            snapshot = frontend.metrics.snapshot()
            assert snapshot.cache_hits == 0
            # A capacity-0 cache drops every store: no inserts counted.
            assert snapshot.cache_inserts == 0

    def test_inflight_answer_cannot_repopulate_a_cleared_cache(self):
        """cache_clear() while a query is in flight: its (pre-mutation)
        answer must not land in the flushed cache."""
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 5)
        frontend = ServingFrontend(
            server, batch_window_seconds=0.0, cache_size=8
        )
        release = threading.Event()
        inner_execute = frontend._execute

        def blocked_execute(batch):
            release.wait(timeout=30)
            return inner_execute(batch)

        frontend._execute = blocked_execute
        try:
            frontend.start()
            future = frontend.submit(query)
            frontend.cache_clear()  # index mutated while q is in flight
            release.set()
            future.result(timeout=30)
        finally:
            release.set()
            frontend.stop()
        assert len(frontend.cache) == 0

    def test_facade_maintenance_flushes_serving_caches(self):
        from repro import PPANNS

        rng = np.random.default_rng(2)
        database = rng.standard_normal((120, 8)) * 2.0
        scheme = PPANNS(dim=8, beta=0.3, backend="bruteforce", rng=rng).fit(
            database
        )
        query = scheme.user.encrypt_query(database[9] + 0.001, 5)
        with scheme.serve(batch_window_seconds=0.0, cache_size=8) as frontend:
            first = frontend.answer(query, timeout=30)
            assert 9 in first.ids.tolist()
            scheme.delete(9)  # must flush the frontend's cache
            fresh = frontend.answer(query, timeout=30)  # same ciphertext
            assert 9 not in fresh.ids.tolist()
            assert frontend.metrics.snapshot().cache_hits == 0


class TestLifecycle:
    def test_stop_answers_everything_admitted(self):
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(8)]
        frontend = server.serving_frontend(
            max_batch_size=4, batch_window_seconds=5.0
        )
        frontend.start()
        futures = [frontend.submit(query) for query in queries]
        # Stop immediately: the long window must not stall the drain.
        start = time.perf_counter()
        frontend.stop()
        assert time.perf_counter() - start < 5.0
        for future in futures:
            assert future.result(timeout=1).ids.shape[0] == 4

    def test_restart_after_stop(self):
        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 4)
        frontend = server.serving_frontend(batch_window_seconds=0.0)
        with frontend:
            first = frontend.answer(query, timeout=30)
        # A new submission after stop() lazily restarts the scheduler.
        second = frontend.answer(query, timeout=30)
        assert np.array_equal(first.ids, second.ids)
        frontend.stop()

    def test_metrics_expose_batching_shape(self):
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(6)]
        with server.serving_frontend(
            max_batch_size=3, batch_window_seconds=0.2
        ) as frontend:
            for future in [frontend.submit(query) for query in queries]:
                future.result(timeout=30)
            snapshot = frontend.metrics.snapshot()
        assert snapshot.completed == 6
        assert snapshot.batches >= 2  # size cap 3 over 6 queries
        assert sum(
            size * count for size, count in snapshot.batch_size_histogram.items()
        ) == 6
        assert snapshot.stage_seconds["filter"] > 0

    def test_cancelled_future_is_dropped_and_siblings_survive(self):
        """A client-cancelled future must not poison delivery: the
        scheduler skips it, siblings complete, and the thread lives."""
        server, user, database = _build_actors()
        queries = [user.encrypt_query(database[i] + 0.01, 4) for i in range(3)]
        expected = [server.answer(query) for query in queries]
        # Size cap 4 over 3 submissions: the batch waits out the long
        # window, so the futures stay PENDING (unclaimed) while we
        # cancel one — the deterministic window for a client cancel.
        frontend = ServingFrontend(
            server, max_batch_size=4, batch_window_seconds=0.5
        )
        try:
            frontend.start()
            futures = [frontend.submit(query) for query in queries]
            assert futures[1].cancel()  # still queued — cancellable
            assert np.array_equal(futures[0].result(timeout=30).ids,
                                  expected[0].ids)
            assert np.array_equal(futures[2].result(timeout=30).ids,
                                  expected[2].ids)
            assert futures[1].cancelled()
            # The scheduler thread survived and keeps serving.
            again = frontend.submit(queries[1]).result(timeout=30)
            assert np.array_equal(again.ids, expected[1].ids)
        finally:
            frontend.stop()

    def test_submit_racing_stop_is_still_answered(self):
        """An item that lands behind the stop sentinel must be drained,
        not stranded (the _STOP-first path drains the tail)."""
        import queue as queue_module

        from repro.serve.scheduler import BatchScheduler, PendingQuery
        from repro.serve import scheduler as scheduler_module

        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 4)
        source = queue_module.Queue()
        frontend = ServingFrontend(server)
        scheduler = BatchScheduler(
            source, frontend._execute, max_batch_size=2,
            batch_window_seconds=0.01,
        )
        # Simulate the race: the sentinel is already in front of a
        # late-admitted query when the thread starts.
        scheduler._stop_requested.set()
        source.put(scheduler_module._STOP)
        pending = PendingQuery(query=query)
        source.put(pending)
        scheduler._thread.start()
        scheduler._thread.join(timeout=10)
        assert not scheduler._thread.is_alive()
        assert pending.future.result(timeout=1).ids.shape[0] == 4

    def test_abandoned_frontend_thread_exits_and_is_collectable(self):
        """A started frontend dropped without stop() must not leak: the
        scheduler holds its hooks weakly, so the frontend is collected
        and the polling thread notices and exits."""
        import gc

        server, user, database = _build_actors()
        query = user.encrypt_query(database[0] + 0.01, 4)
        frontend = server.serving_frontend(batch_window_seconds=0.0)
        assert frontend.answer(query, timeout=30).ids.shape[0] == 4
        scheduler = frontend._scheduler
        assert scheduler.running
        del frontend  # abandoned without stop()
        gc.collect()
        deadline = time.time() + 5
        while scheduler.running and time.time() < deadline:
            time.sleep(0.05)
        assert not scheduler.running, "scheduler thread outlived its frontend"

    def test_facade_tracking_is_weak(self):
        """scheme.serve() frontends are tracked weakly — an abandoned
        one drops out of the facade's set once collected."""
        import gc

        from repro import PPANNS

        rng = np.random.default_rng(3)
        database = rng.standard_normal((60, 8))
        scheme = PPANNS(dim=8, beta=0.4, backend="bruteforce", rng=rng).fit(
            database
        )
        query = scheme.user.encrypt_query(database[0] + 0.01, 4)
        frontend = scheme.serve(batch_window_seconds=0.0)
        frontend.answer(query, timeout=30)
        assert len(scheme._frontends) == 1
        del frontend
        gc.collect()
        assert len(scheme._frontends) == 0

    def test_facade_serve_roundtrip(self):
        from repro import PPANNS

        rng = np.random.default_rng(0)
        database = rng.standard_normal((60, 8))
        scheme = PPANNS(dim=8, beta=0.4, backend="bruteforce", rng=rng).fit(database)
        expected = scheme.query(database[3] + 0.01, k=5)
        with scheme.serve(batch_window_seconds=0.01) as frontend:
            served = frontend.answer(
                scheme.user.encrypt_query(database[3] + 0.01, 5), timeout=30
            )
        assert np.array_equal(served.ids, expected)
