"""E2LSH tests."""

import numpy as np
import pytest

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.lsh.e2lsh import E2LSHIndex, E2LSHParams


@pytest.fixture(scope="module")
def clustered():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((5, 8)) * 10
    assignments = rng.integers(0, 5, size=400)
    vectors = centers[assignments] + rng.standard_normal((400, 8)) * 0.5
    return vectors, assignments


class TestParams:
    def test_validation(self):
        with pytest.raises(ParameterError):
            E2LSHParams(num_tables=0)
        with pytest.raises(ParameterError):
            E2LSHParams(hashes_per_table=0)
        with pytest.raises(ParameterError):
            E2LSHParams(bucket_width=0.0)
        with pytest.raises(ParameterError):
            E2LSHParams(multiprobe=-1)


class TestIndex:
    def test_candidates_contain_near_duplicates(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(
            vectors,
            E2LSHParams(num_tables=10, hashes_per_table=4, bucket_width=8.0),
            rng=np.random.default_rng(1),
        )
        hits = 0
        for probe in range(20):
            candidates = index.candidates(vectors[probe] + 1e-6)
            if probe in candidates:
                hits += 1
        assert hits >= 18  # near-duplicates hash to the same buckets

    def test_multiprobe_expands_candidates(self, clustered):
        vectors, _ = clustered
        base = E2LSHIndex(
            vectors,
            E2LSHParams(num_tables=4, hashes_per_table=6, bucket_width=4.0, multiprobe=0),
            rng=np.random.default_rng(2),
        )
        probed = E2LSHIndex(
            vectors,
            E2LSHParams(num_tables=4, hashes_per_table=6, bucket_width=4.0, multiprobe=8),
            rng=np.random.default_rng(2),
        )
        query = vectors[0] + 0.3
        assert len(probed.candidates(query)) >= len(base.candidates(query))

    def test_search_reranks_exactly(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(
            vectors,
            E2LSHParams(num_tables=12, hashes_per_table=4, bucket_width=8.0),
            rng=np.random.default_rng(3),
        )
        query = vectors[5] + 0.01
        ids, dists = index.search(query, 5)
        assert ids.shape[0] <= 5
        assert np.all(np.diff(dists) >= 0)
        assert 5 in ids

    def test_search_k_validation(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(vectors, rng=np.random.default_rng(4))
        with pytest.raises(ParameterError):
            index.search(vectors[0], 0)

    def test_query_dim_validation(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(vectors, rng=np.random.default_rng(5))
        with pytest.raises(DimensionMismatchError):
            index.candidates(np.zeros(4))

    def test_rejects_empty_database(self):
        with pytest.raises(ParameterError):
            E2LSHIndex(np.zeros((0, 4)))

    def test_properties(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(vectors, rng=np.random.default_rng(6))
        assert index.size == 400
        assert index.dim == 8

    def test_empty_result_for_far_query(self, clustered):
        vectors, _ = clustered
        index = E2LSHIndex(
            vectors,
            E2LSHParams(num_tables=2, hashes_per_table=10, bucket_width=0.5),
            rng=np.random.default_rng(7),
        )
        ids, dists = index.search(np.full(8, 1e6), 5)
        # A query far from all mass typically hits no occupied bucket.
        assert ids.shape[0] == dists.shape[0]
