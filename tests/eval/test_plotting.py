"""ASCII plot rendering tests."""

import pytest

from repro.core.errors import ParameterError
from repro.eval.plotting import render_curves
from repro.eval.runner import CurvePoint, MethodCurve


def _curve(label, pairs):
    return MethodCurve(
        label=label,
        points=tuple(
            CurvePoint(parameter=i, recall=r, mean_latency_seconds=1.0 / q)
            for i, (r, q) in enumerate(pairs)
        ),
    )


class TestRenderCurves:
    def test_contains_points_and_legend(self):
        curve = _curve("method-a", [(0.5, 100.0), (0.9, 10.0)])
        output = render_curves([curve], width=40, height=8)
        assert "o = method-a" in output
        plot_lines = [line for line in output.splitlines() if "|" in line]
        assert any("o" in line.split("|", 1)[1] for line in plot_lines)
        assert "recall" in output

    def test_log_scale_detection(self):
        wide = _curve("wide", [(0.5, 1.0), (0.9, 1000.0)])
        narrow = _curve("narrow", [(0.5, 90.0), (0.9, 100.0)])
        assert "(log y)" in render_curves([wide])
        assert "(log y)" not in render_curves([narrow])

    def test_multiple_curves_distinct_glyphs(self):
        curves = [
            _curve("a", [(0.5, 100.0)]),
            _curve("b", [(0.6, 50.0)]),
        ]
        output = render_curves(curves)
        assert "o = a" in output
        assert "x = b" in output

    def test_latency_metric(self):
        curve = _curve("m", [(0.5, 100.0), (0.9, 10.0)])
        output = render_curves([curve], y_metric="latency")
        assert output.splitlines()[0].startswith("s")

    def test_title(self):
        curve = _curve("m", [(0.5, 100.0)])
        assert render_curves([curve], title="Figure X").splitlines()[0] == "Figure X"

    def test_validation(self):
        curve = _curve("m", [(0.5, 100.0)])
        with pytest.raises(ParameterError):
            render_curves([])
        with pytest.raises(ParameterError):
            render_curves([curve], width=5)
        with pytest.raises(ParameterError):
            render_curves([curve], y_metric="nope")
        with pytest.raises(ParameterError):
            render_curves([_curve(str(i), [(0.5, 1.0)]) for i in range(9)])

    def test_identical_points_do_not_crash(self):
        curve = _curve("flat", [(0.5, 100.0), (0.5, 100.0)])
        assert "flat" in render_curves([curve])
