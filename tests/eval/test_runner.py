"""Sweep runner tests."""

import pytest

from repro.core.errors import ParameterError
from repro.eval.runner import (
    ground_truth,
    sweep_filter_only,
    sweep_ppanns,
    sweep_refine_engine,
    sweep_serving,
    sweep_shards,
)


class TestSweeps:
    def test_sweep_ppanns(self, fitted_scheme, small_dataset):
        truth = ground_truth(small_dataset.database, small_dataset.queries, 10)
        curve = sweep_ppanns(
            fitted_scheme,
            small_dataset.queries,
            truth,
            k=10,
            ratio_k=8,
            ef_grid=(20, 80),
        )
        assert len(curve.points) == 2
        assert curve.points[0].parameter == 20
        # Wider beam: recall no worse (small tolerance for measurement noise).
        assert curve.points[1].recall >= curve.points[0].recall - 0.05
        for point in curve.points:
            assert 0 <= point.recall <= 1
            assert point.qps > 0

    def test_sweep_filter_only(self, fitted_scheme, small_dataset):
        truth = ground_truth(small_dataset.database, small_dataset.queries, 10)
        curve = sweep_filter_only(
            fitted_scheme, small_dataset.queries, truth, k=10, ef_grid=(40,)
        )
        assert curve.label == "HNSW(filter)"
        assert len(curve.points) == 1

    def test_sweep_shards(self, small_dataset):
        truth = ground_truth(small_dataset.database, small_dataset.queries, 10)
        curve = sweep_shards(
            small_dataset.database,
            small_dataset.queries,
            truth,
            k=10,
            shard_grid=(1, 2),
            beta=0.3,
            backend="bruteforce",
            ratio_k=4,
        )
        assert curve.label == "sharded(bruteforce)"
        assert [point.parameter for point in curve.points] == [1.0, 2.0]
        # The brute-force filter is exact, so recall is shard-invariant.
        assert curve.points[0].recall == curve.points[1].recall
        for point in curve.points:
            assert point.mean_latency_seconds > 0

    def test_sweep_refine_engine(self, fitted_scheme, small_dataset):
        truth = ground_truth(small_dataset.database, small_dataset.queries, 10)
        curves = sweep_refine_engine(
            fitted_scheme,
            small_dataset.queries,
            truth,
            k=10,
            ratio_k=8,
            ef_grid=(40, 120),
        )
        assert [curve.label for curve in curves] == [
            "refine=heap",
            "refine=vectorized",
        ]
        heap, vectorized = curves
        # The vectorized engine is bit-identical, so recalls coincide at
        # every operating point.
        for heap_point, vec_point in zip(heap.points, vectorized.points):
            assert heap_point.recall == vec_point.recall
            assert vec_point.qps > 0

    def test_sweep_refine_engine_truth_mismatch_rejected(self, fitted_scheme, small_dataset):
        with pytest.raises(ParameterError):
            sweep_refine_engine(
                fitted_scheme, small_dataset.queries, [], k=10, ratio_k=4,
                ef_grid=(20,),
            )

    def test_sweep_shards_truth_mismatch_rejected(self, small_dataset):
        with pytest.raises(ParameterError):
            sweep_shards(
                small_dataset.database,
                small_dataset.queries,
                [],
                k=10,
                shard_grid=(2,),
                beta=0.3,
            )

    def test_sweep_serving(self, fitted_scheme, small_dataset):
        curve = sweep_serving(
            fitted_scheme,
            small_dataset.queries,
            k=10,
            window_grid=(0.0, 0.01),
            max_batch_size=4,
        )
        assert curve.label == "serving(max_batch=4)"
        assert len(curve.points) == 2
        assert [point.window_seconds for point in curve.points] == [0.0, 0.01]
        for point in curve.points:
            assert point.qps > 0
            assert point.batches >= 1
            assert point.latency_p50 <= point.latency_p95 <= point.latency_p99
        # Window 0 degenerates to one-query batches.
        assert curve.points[0].mean_batch_size == pytest.approx(1.0)
        # The wider window must actually batch the 10-query replay.
        assert curve.points[1].mean_batch_size > 1.0
        assert curve.best_qps() == max(p.qps for p in curve.points)
        assert curve.best_point().qps == curve.best_qps()

    def test_sweep_serving_poisson_rate(self, fitted_scheme, small_dataset):
        curve = sweep_serving(
            fitted_scheme,
            small_dataset.queries,
            k=10,
            window_grid=(0.005,),
            max_batch_size=8,
            rate=2000.0,
            label="poisson",
        )
        assert curve.label == "poisson"
        assert curve.points[0].qps > 0

    def test_truth_mismatch_rejected(self, fitted_scheme, small_dataset):
        with pytest.raises(ParameterError):
            sweep_ppanns(
                fitted_scheme, small_dataset.queries, [], k=10, ratio_k=4, ef_grid=(20,)
            )


class TestMethodCurve:
    def test_qps_at_recall(self, fitted_scheme, small_dataset):
        truth = ground_truth(small_dataset.database, small_dataset.queries, 10)
        curve = sweep_ppanns(
            fitted_scheme, small_dataset.queries, truth, k=10, ratio_k=8,
            ef_grid=(40, 120),
        )
        floor = curve.points[0].recall
        assert curve.qps_at_recall(floor) is not None
        assert curve.qps_at_recall(1.1) is None
        assert curve.best_recall() == max(p.recall for p in curve.points)
