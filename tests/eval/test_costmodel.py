"""Network cost model tests."""

import pytest

from repro.core.errors import ParameterError
from repro.eval.costmodel import CostReport, NetworkModel


class TestNetworkModel:
    def test_latency_formula(self):
        model = NetworkModel(rtt_seconds=0.01, bandwidth_bytes_per_second=1000.0)
        assert model.latency(total_bytes=500, rounds=2) == pytest.approx(0.02 + 0.5)

    def test_zero_transfer(self):
        model = NetworkModel()
        assert model.latency(0, 0) == 0.0

    def test_localhost_is_cheap(self):
        model = NetworkModel.localhost()
        assert model.latency(10_000, 10) < 1e-3

    def test_validation(self):
        with pytest.raises(ParameterError):
            NetworkModel(rtt_seconds=-1.0)
        with pytest.raises(ParameterError):
            NetworkModel(bandwidth_bytes_per_second=0.0)
        with pytest.raises(ParameterError):
            NetworkModel().latency(-1, 0)


class TestCostReport:
    def test_total(self):
        model = NetworkModel(rtt_seconds=0.1, bandwidth_bytes_per_second=1e6)
        report = CostReport(
            method="x",
            server_seconds=0.2,
            user_seconds=0.3,
            upload_bytes=500_000,
            download_bytes=500_000,
            rounds=1,
        )
        assert report.network_seconds(model) == pytest.approx(0.1 + 1.0)
        assert report.total_seconds(model) == pytest.approx(0.2 + 0.3 + 1.1)

    def test_merge(self):
        a = CostReport(method="x", server_seconds=1.0, upload_bytes=10, rounds=1,
                       extra={"candidates": 5.0})
        b = CostReport(method="x", server_seconds=2.0, upload_bytes=20, rounds=2,
                       extra={"candidates": 7.0})
        a.merge(b)
        assert a.server_seconds == 3.0
        assert a.upload_bytes == 30
        assert a.rounds == 3
        assert a.extra["candidates"] == 12.0

    def test_scaled(self):
        report = CostReport(method="x", server_seconds=2.0, user_seconds=4.0,
                            upload_bytes=100, download_bytes=200, rounds=10)
        half = report.scaled(0.5)
        assert half.server_seconds == 1.0
        assert half.user_seconds == 2.0
        assert half.upload_bytes == 50
        assert half.rounds == 5
        # Original untouched.
        assert report.server_seconds == 2.0
