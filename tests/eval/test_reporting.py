"""Reporting format tests."""

from repro.eval.reporting import format_curve, format_table
from repro.eval.runner import CurvePoint, MethodCurve


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.123456]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        table = format_table(["v"], [[1.23456789]])
        assert "1.235" in table

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestFormatCurve:
    def test_curve_rendering(self):
        curve = MethodCurve(
            label="test-method",
            points=(CurvePoint(parameter=10, recall=0.9, mean_latency_seconds=0.001),),
        )
        rendered = format_curve(curve, parameter_name="ef")
        assert "test-method" in rendered
        assert "ef" in rendered
        assert "0.9" in rendered
