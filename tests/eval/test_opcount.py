"""Analytic cost model vs measured instrumentation."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.eval.opcount import predict_query_cost


class TestFormulas:
    def test_refine_scales_linearly_in_k_prime(self):
        base = predict_query_cost(1000, 96, 10, 4, 100)
        double = predict_query_cost(1000, 96, 10, 8, 100)
        assert double.refine_comparisons == 2 * base.refine_comparisons
        assert double.refine_macs == 2 * base.refine_macs

    def test_refine_macs_use_dce_rate(self):
        model = predict_query_cost(1000, 96, 10, 4, 100)
        assert model.refine_macs == model.refine_comparisons * (4 * 96 + 32)

    def test_filter_grows_logarithmically_in_n(self):
        small = predict_query_cost(1_000, 96, 10, 8, 100)
        large = predict_query_cost(1_000_000, 96, 10, 8, 100)
        # 1000x the data, only log-factor more filter work.
        assert large.filter_macs < 1.5 * small.filter_macs

    def test_download_is_4k(self):
        assert predict_query_cost(1000, 96, 10, 8, 100).download_bytes == 40

    def test_upload_formulas(self):
        model = predict_query_cost(1000, 128, 10, 8, 100)
        assert model.upload_bytes_paper == 36 * 128 + 260
        assert model.upload_bytes_actual == 4 * 128 + 8 * (2 * 128 + 16) + 4

    def test_validation(self):
        with pytest.raises(ParameterError):
            predict_query_cost(0, 96, 10, 8, 100)


class TestAgainstMeasurement:
    def test_refine_comparison_bound_holds(self, fitted_scheme, small_dataset):
        # The model's refine_comparisons is an upper bound on the measured
        # count from the comparison heap.
        k, ratio, ef = 10, 8, 100
        model = predict_query_cost(
            len(small_dataset.database), small_dataset.dim, k, ratio, ef
        )
        for query in small_dataset.queries[:5]:
            report = fitted_scheme.query_with_report(query, k, ratio_k=ratio, ef_search=ef)
            assert report.refine_comparisons <= model.refine_comparisons

    def test_filter_distance_prediction_within_factor(self, fitted_scheme, small_dataset):
        # Order-of-magnitude agreement between the model and measured
        # filter-phase distance computations.
        k, ratio, ef = 10, 8, 100
        model = predict_query_cost(
            len(small_dataset.database),
            small_dataset.dim,
            k,
            ratio,
            ef,
            graph_degree=2 * fitted_scheme.server.index.backend.substrate.params.m,
        )
        measured = []
        for query in small_dataset.queries:
            report = fitted_scheme.query_with_report(query, k, ratio_k=ratio, ef_search=ef)
            measured.append(report.filter_stats.distance_computations)
        mean_measured = float(np.mean(measured))
        assert model.filter_distance_computations / 10 < mean_measured
        assert mean_measured < model.filter_distance_computations * 10

    def test_upload_actual_matches_encrypted_query(self, fitted_scheme, small_dataset):
        model = predict_query_cost(
            len(small_dataset.database), small_dataset.dim, 10, 8, 100
        )
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        assert encrypted.upload_bytes() == model.upload_bytes_actual
