"""Metric tests."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.eval.metrics import (
    mean_recall,
    qps_from_latencies,
    recall_at_k,
    summarize_latencies,
)


class TestRecall:
    def test_perfect(self):
        assert recall_at_k(np.array([1, 2, 3]), np.array([3, 2, 1]), 3) == 1.0

    def test_partial(self):
        assert recall_at_k(np.array([1, 2, 9]), np.array([1, 2, 3]), 3) == pytest.approx(2 / 3)

    def test_zero(self):
        assert recall_at_k(np.array([7, 8]), np.array([1, 2]), 2) == 0.0

    def test_divides_by_k_even_if_short(self):
        # The paper always divides by k.
        assert recall_at_k(np.array([1]), np.array([1, 2, 3, 4]), 4) == 0.25

    def test_only_first_k_found_count(self):
        found = np.array([9, 8, 1, 2])
        truth = np.array([1, 2])
        assert recall_at_k(found, truth, 2) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            recall_at_k(np.array([1]), np.array([1]), 0)

    def test_mean_recall(self):
        found = [np.array([1, 2]), np.array([3, 9])]
        truth = [np.array([1, 2]), np.array([3, 4])]
        assert mean_recall(found, truth, 2) == pytest.approx(0.75)

    def test_mean_recall_validation(self):
        with pytest.raises(ParameterError):
            mean_recall([np.array([1])], [], 1)
        with pytest.raises(ParameterError):
            mean_recall([], [], 1)


class TestThroughput:
    def test_qps(self):
        assert qps_from_latencies(np.array([0.01, 0.01])) == pytest.approx(100.0)

    def test_qps_validation(self):
        with pytest.raises(ParameterError):
            qps_from_latencies(np.array([]))
        with pytest.raises(ParameterError):
            qps_from_latencies(np.array([0.0]))

    def test_summary(self):
        latencies = np.linspace(0.001, 0.1, 100)
        summary = summarize_latencies(latencies)
        assert summary.mean == pytest.approx(latencies.mean())
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum
        assert summary.qps == pytest.approx(1.0 / summary.mean)

    def test_summary_validation(self):
        with pytest.raises(ParameterError):
            summarize_latencies(np.array([]))
