"""FilterBackend integration: CloudServer runs unchanged on every backend.

The paper's Section V-A claims the filter phase can swap its index
substrate; these tests exercise the claim end-to-end for every
registered backend — build, query (single and batch), maintain
(insert/delete), persist, reload — through the exact same CloudServer
code path."""

import numpy as np
import pytest

from repro.core.backends import (
    BACKENDS,
    FilterBackend,
    available_backends,
    build_backend,
)
from repro.core.errors import ParameterError
from repro.core.maintenance import delete_vector, insert_vector
from repro.core.persistence import load_index, save_index
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.eval.metrics import recall_at_k
from repro.hnsw.graph import HNSWParams

ALL_BACKENDS = available_backends()

FAST_HNSW = HNSWParams(m=8, ef_construction=60)


@pytest.fixture(scope="module", params=ALL_BACKENDS)
def backend_actors(request, small_dataset):
    """Owner/user/server triple fitted with each backend kind (read-only)."""
    rng = np.random.default_rng(311)
    owner = DataOwner(
        small_dataset.dim,
        beta=0.3,
        hnsw_params=FAST_HNSW,
        backend=request.param,
        rng=rng,
    )
    index = owner.build_index(small_dataset.database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(312))
    return request.param, owner, user, server


class TestRegistry:
    def test_four_backends_registered(self):
        assert set(ALL_BACKENDS) >= {"hnsw", "nsg", "ivf", "bruteforce"}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            build_backend("faiss", np.zeros((4, 2)))

    def test_adapters_satisfy_protocol(self, rng):
        sap = rng.standard_normal((30, 6))
        for kind in ALL_BACKENDS:
            backend = build_backend(kind, sap, rng=np.random.default_rng(1))
            assert isinstance(backend, FilterBackend), kind
            assert backend.kind == kind
            assert backend.vectors.shape[0] == 30

    def test_registry_keys_match_kinds(self):
        for kind, backend_cls in BACKENDS.items():
            assert backend_cls.kind == kind


class TestServerOnEveryBackend:
    def test_answer_recall(self, backend_actors, small_dataset, small_ground_truth):
        kind, _, user, server = backend_actors
        assert server.index.backend_kind == kind
        recalls = []
        for i, query in enumerate(small_dataset.queries):
            result = server.answer(
                user.encrypt_query(query, 10), ratio_k=8, ef_search=120
            )
            recalls.append(recall_at_k(result.ids, small_ground_truth.for_query(i), 10))
        assert np.mean(recalls) >= 0.8, f"low recall on backend {kind}"

    def test_batch_answer_matches_single(self, backend_actors, small_dataset):
        kind, _, user, server = backend_actors
        batch = user.encrypt_queries(small_dataset.queries[:5], 7, ratio_k=6)
        batch_results = server.answer(batch)
        assert len(batch_results) == 5
        for i in range(5):
            single = server.answer(batch[i])
            assert np.array_equal(batch_results[i].ids, single.ids), (
                f"batch/single divergence on backend {kind}"
            )

    def test_filter_only_mode(self, backend_actors, small_dataset):
        _, _, user, server = backend_actors
        batch = user.encrypt_queries(
            small_dataset.queries[:3], 5, ratio_k=2, mode="filter_only"
        )
        results = server.answer(batch)
        assert results.refine_comparisons == 0
        for result in results:
            assert result.ids.shape[0] == 5


class TestMaintenanceOnEveryBackend:
    @pytest.mark.parametrize("kind", ALL_BACKENDS)
    def test_insert_then_find_then_delete(self, kind, rng):
        data = np.random.default_rng(77).standard_normal((80, 8)) * 2.0
        owner = DataOwner(
            8, beta=0.1, hnsw_params=FAST_HNSW, backend=kind,
            rng=np.random.default_rng(78),
        )
        index = owner.build_index(data)
        server = CloudServer(index)
        user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(79))

        new_vector = data[0] + 1e-3
        new_id = insert_vector(owner, index, new_vector)
        assert new_id == 80
        found = server.answer(
            user.encrypt_query(new_vector, 5), ratio_k=8, ef_search=80
        )
        assert new_id in found.ids, f"inserted vector not found on backend {kind}"

        delete_vector(index, new_id)
        after = server.answer(
            user.encrypt_query(new_vector, 5), ratio_k=8, ef_search=80
        )
        assert new_id not in after.ids, f"deleted vector returned on backend {kind}"


class TestPersistenceOnEveryBackend:
    def test_save_load_same_answers(
        self, backend_actors, small_dataset, tmp_path_factory
    ):
        kind, _, user, server = backend_actors
        path = tmp_path_factory.mktemp(f"persist_{kind}") / "index.npz"
        save_index(path, server.index)
        reloaded = load_index(path)
        assert reloaded.backend_kind == kind

        server2 = CloudServer(reloaded)
        batch = user.encrypt_queries(small_dataset.queries[:4], 6, ratio_k=4)
        before = server.answer(batch)
        after = server2.answer(batch)
        for i in range(len(batch)):
            assert np.array_equal(before[i].ids, after[i].ids), (
                f"persistence changed answers on backend {kind}"
            )
