"""Algorithm 2 tests: filter-and-refine correctness and instrumentation."""

import numpy as np
import pytest

from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.search import EncryptedQuery, filter_and_refine, filter_only
from repro.eval.metrics import recall_at_k
from repro.hnsw.bruteforce import exact_knn


class TestFilterAndRefine:
    def test_high_recall_with_generous_parameters(self, fitted_scheme, small_dataset, small_ground_truth):
        recalls = []
        for i, query in enumerate(small_dataset.queries):
            encrypted = fitted_scheme.user.encrypt_query(query, 10)
            report = filter_and_refine(
                fitted_scheme.server.index, encrypted, k_prime=80, ef_search=120
            )
            recalls.append(recall_at_k(report.ids, small_ground_truth.for_query(i), 10))
        assert np.mean(recalls) >= 0.9

    def test_returns_k_results(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 7)
        report = filter_and_refine(fitted_scheme.server.index, encrypted, k_prime=28)
        assert report.ids.shape[0] == 7

    def test_results_subset_of_filter_candidates(self, fitted_scheme, small_dataset):
        query = small_dataset.queries[0]
        encrypted = fitted_scheme.user.encrypt_query(query, 5)
        filter_report = filter_only(
            fitted_scheme.server.index, encrypted, ef_search=100, k_prime=40
        )
        full_report = filter_and_refine(
            fitted_scheme.server.index, encrypted, k_prime=40, ef_search=100
        )
        # Refine only reorders/selects among the filter candidates.
        assert set(full_report.ids.tolist()) <= set(
            filter_report.ids.tolist()
        ) | set(
            filter_only(
                fitted_scheme.server.index, encrypted, ef_search=100, k_prime=40
            ).ids.tolist()
        ) or full_report.k_prime == 40

    def test_refine_improves_on_filter(self, small_dataset, small_ground_truth):
        # With noticeable DCPE noise, refine must beat filter-only at k'>k.
        from repro import PPANNS
        from tests.conftest import FAST_HNSW

        noisy = PPANNS(
            dim=small_dataset.dim,
            beta=2.0,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(77),
        ).fit(small_dataset.database)
        filter_recalls = []
        refined_recalls = []
        for i, query in enumerate(small_dataset.queries):
            truth = small_ground_truth.for_query(i)
            filt = noisy.query_filter_only(query, 10, ef_search=150)
            refined = noisy.query_with_report(query, 10, ratio_k=8, ef_search=150)
            filter_recalls.append(recall_at_k(filt.ids, truth, 10))
            refined_recalls.append(recall_at_k(refined.ids, truth, 10))
        assert np.mean(refined_recalls) >= np.mean(filter_recalls)

    def test_comparison_count_bounded(self, fitted_scheme, small_dataset):
        # Refine cost is O(k' log k): generous upper bound check.
        k, ratio = 10, 8
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], k)
        report = filter_and_refine(
            fitted_scheme.server.index, encrypted, k_prime=ratio * k
        )
        k_prime = ratio * k
        assert report.refine_comparisons <= k_prime * (int(np.log2(k)) + 3)
        assert report.refine_comparisons >= k_prime - k

    def test_timings_populated(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        report = filter_and_refine(fitted_scheme.server.index, encrypted, k_prime=40)
        assert report.filter_seconds > 0
        assert report.refine_seconds > 0
        assert report.mask_seconds >= 0
        # The stage timings account for the whole pipeline: filter,
        # liveness masking, and refine sum to the total.
        assert report.total_seconds == pytest.approx(
            report.filter_seconds + report.mask_seconds + report.refine_seconds
        )
        assert 0 <= report.refine_kernel_seconds <= report.refine_seconds

    def test_k_prime_below_k_rejected(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        with pytest.raises(ParameterError):
            filter_and_refine(fitted_scheme.server.index, encrypted, k_prime=5)

    def test_foreign_trapdoor_rejected(self, fitted_scheme, small_dataset):
        from repro import PPANNS
        from tests.conftest import FAST_HNSW

        other = PPANNS(
            dim=small_dataset.dim,
            beta=0.3,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(5),
        ).fit(small_dataset.database[:50])
        foreign = other.user.encrypt_query(small_dataset.queries[0], 10)
        with pytest.raises(KeyMismatchError):
            filter_and_refine(fitted_scheme.server.index, foreign, k_prime=40)


class TestFilterOnly:
    def test_filter_only_returns_k(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        report = filter_only(fitted_scheme.server.index, encrypted, ef_search=60)
        assert report.ids.shape[0] == 10
        assert report.refine_comparisons == 0

    def test_filter_only_k_prime_validation(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        with pytest.raises(ParameterError):
            filter_only(fitted_scheme.server.index, encrypted, k_prime=5)


class TestEncryptedQuery:
    def test_upload_bytes(self, fitted_scheme, small_dataset):
        # C_SAP(q): 4d bytes; T_q: 8*(2d+16); k: 4.
        d = small_dataset.dim
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        assert encrypted.upload_bytes() == 4 * d + 8 * (2 * d + 16) + 4

    def test_rejects_nonpositive_k(self, fitted_scheme, small_dataset):
        with pytest.raises(ParameterError):
            fitted_scheme.user.encrypt_query(small_dataset.queries[0], 0)

    def test_download_bytes(self, fitted_scheme, small_dataset):
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        report = filter_and_refine(fitted_scheme.server.index, encrypted, k_prime=40)
        assert report.download_bytes() == 4 * 10


class TestAgainstBruteForce:
    def test_beta_zero_ratio_large_matches_exact(self, small_dataset):
        # With no DCPE noise and a wide beam, results must equal exact kNN.
        from repro import PPANNS
        from tests.conftest import FAST_HNSW

        scheme = PPANNS(
            dim=small_dataset.dim,
            beta=0.0,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(8),
        ).fit(small_dataset.database)
        for query in small_dataset.queries[:5]:
            ids = scheme.query(query, k=5, ratio_k=16, ef_search=200)
            exact_ids, _ = exact_knn(small_dataset.database, query, 5)
            assert set(ids.tolist()) == set(exact_ids.tolist())
