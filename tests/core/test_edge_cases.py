"""Edge-case and stress tests across the core scheme.

Covers the corners the main suites don't: degenerate vectors, extreme
values, high dimensionality (the Gist profile's d=960), duplicates, and
batch interfaces.
"""

import numpy as np
import pytest

from repro import PPANNS
from repro.core.dce import DCEScheme, distance_comp
from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.hnsw.graph import HNSWParams

TINY_HNSW = HNSWParams(m=4, ef_construction=20)


class TestDegenerateVectors:
    def test_zero_vectors(self):
        rng = np.random.default_rng(0)
        scheme = DCEScheme(8, rng=rng)
        vectors = np.vstack([np.zeros(8), np.ones(8) * 3])
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(np.zeros(8))
        # dist(0, 0) = 0 < dist(3*1, 0): sign must be negative.
        assert distance_comp(db[0], db[1], t) < 0

    def test_duplicate_vectors_tie(self):
        rng = np.random.default_rng(1)
        scheme = DCEScheme(8, rng=rng)
        vector = rng.standard_normal(8)
        db = scheme.encrypt_database(np.vstack([vector, vector]))
        t = scheme.trapdoor(rng.standard_normal(8))
        z = distance_comp(db[0], db[1], t)
        # Exact tie: Z is zero up to float noise; no sign guarantee needed,
        # but the magnitude must be negligible vs. the distance scale.
        assert abs(z) < 1e-3

    def test_query_far_outside_data(self):
        rng = np.random.default_rng(2)
        dataset = rng.standard_normal((100, 8))
        scheme = PPANNS(8, beta=0.1, hnsw_params=TINY_HNSW, rng=rng).fit(dataset)
        ids = scheme.query(np.full(8, 1e3), k=5, ef_search=40)
        assert ids.shape[0] == 5  # still returns something sensible

    def test_large_coordinate_values(self):
        rng = np.random.default_rng(3)
        scheme = DCEScheme(8, rng=rng)
        vectors = rng.standard_normal((10, 8)) * 1e4  # SIFT-like magnitudes^2
        q = rng.standard_normal(8) * 1e4
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(10):
            for j in range(10):
                if i != j:
                    assert (distance_comp(db[i], db[j], t) < 0) == (dists[i] < dists[j])

    def test_tiny_coordinate_values(self):
        rng = np.random.default_rng(4)
        scheme = DCEScheme(8, rng=rng)
        vectors = rng.standard_normal((10, 8)) * 1e-4
        q = rng.standard_normal(8) * 1e-4
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        errors = sum(
            1
            for i in range(10)
            for j in range(10)
            if i != j
            and abs(dists[i] - dists[j]) > 1e-12
            and (distance_comp(db[i], db[j], t) < 0) != (dists[i] < dists[j])
        )
        assert errors == 0


class TestHighDimensional:
    def test_gist_dimensionality_smoke(self):
        # d=960 (the paper's Gist): key matrices are (1936, 1936); one
        # end-to-end pass must stay exact.
        rng = np.random.default_rng(5)
        scheme = DCEScheme(960, rng=rng)
        vectors = rng.standard_normal((6, 960))
        q = rng.standard_normal(960)
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert (distance_comp(db[i], db[j], t) < 0) == (dists[i] < dists[j])

    def test_dcpe_high_dim_ball_radius(self):
        rng = np.random.default_rng(6)
        scheme = DCPEScheme(960, dcpe_keygen(1.0, scale=16.0, rng=rng), rng=rng)
        encrypted = scheme.encrypt_database(np.zeros((50, 960)))
        assert np.all(np.linalg.norm(encrypted, axis=1) <= scheme.noise_radius + 1e-9)


class TestSmallDatabases:
    def test_n_smaller_than_k(self):
        rng = np.random.default_rng(7)
        scheme = PPANNS(6, beta=0.1, hnsw_params=TINY_HNSW, rng=rng).fit(
            rng.standard_normal((3, 6))
        )
        ids = scheme.query(np.zeros(6), k=10, ratio_k=1, ef_search=12)
        assert 1 <= ids.shape[0] <= 3

    def test_single_vector_database(self):
        rng = np.random.default_rng(8)
        scheme = PPANNS(6, beta=0.1, hnsw_params=TINY_HNSW, rng=rng).fit(
            rng.standard_normal((1, 6))
        )
        ids = scheme.query(np.zeros(6), k=1, ratio_k=1, ef_search=4)
        assert ids.tolist() == [0]


class TestBatchInterface:
    def test_answer_batch_matches_sequential(self, fitted_scheme, small_dataset):
        queries = [
            fitted_scheme.user.encrypt_query(q, 5) for q in small_dataset.queries[:3]
        ]
        batch = fitted_scheme.server.answer_batch(queries, ratio_k=4, ef_search=60)
        assert len(batch) == 3
        for encrypted, report in zip(queries, batch):
            single = fitted_scheme.server.answer(encrypted, ratio_k=4, ef_search=60)
            assert set(report.ids.tolist()) == set(single.ids.tolist())
