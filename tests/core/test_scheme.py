"""PPANNS facade tests."""

import numpy as np
import pytest

from repro import PPANNS
from repro.core.errors import ParameterError
from repro.eval.metrics import recall_at_k
from tests.conftest import FAST_HNSW


class TestLifecycle:
    def test_server_unavailable_before_fit(self):
        scheme = PPANNS(dim=8, beta=0.5)
        assert not scheme.is_fitted
        with pytest.raises(ParameterError):
            _ = scheme.server

    def test_fit_returns_self(self, small_dataset):
        scheme = PPANNS(
            dim=small_dataset.dim,
            beta=0.3,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(0),
        )
        assert scheme.fit(small_dataset.database) is scheme
        assert scheme.is_fitted

    def test_owner_and_user_share_keys(self, fitted_scheme):
        assert (
            fitted_scheme.owner.dce_scheme.key.key_id
            == fitted_scheme.user._dce.key.key_id
        )


class TestQuerying:
    def test_query_returns_ids(self, fitted_scheme, small_dataset):
        ids = fitted_scheme.query(small_dataset.queries[0], k=10, ef_search=80)
        assert ids.shape == (10,)
        assert len(set(ids.tolist())) == 10

    def test_query_recall(self, fitted_scheme, small_dataset, small_ground_truth):
        recalls = [
            recall_at_k(
                fitted_scheme.query(q, k=10, ratio_k=8, ef_search=120),
                small_ground_truth.for_query(i),
                10,
            )
            for i, q in enumerate(small_dataset.queries)
        ]
        assert np.mean(recalls) >= 0.9

    def test_query_with_report(self, fitted_scheme, small_dataset):
        report = fitted_scheme.query_with_report(small_dataset.queries[0], k=5)
        assert report.ids.shape[0] == 5
        assert report.k_prime == fitted_scheme.server.default_ratio_k * 5

    def test_filter_only_query(self, fitted_scheme, small_dataset):
        report = fitted_scheme.query_filter_only(small_dataset.queries[0], k=5)
        assert report.refine_comparisons == 0

    def test_self_query_finds_self(self, fitted_scheme, small_dataset):
        ids = fitted_scheme.query(small_dataset.database[7], k=5, ef_search=80)
        assert 7 in ids


class TestDeterminismAcrossInstances:
    def test_same_seed_same_results(self, small_dataset):
        def build():
            return PPANNS(
                dim=small_dataset.dim,
                beta=0.3,
                hnsw_params=FAST_HNSW,
                rng=np.random.default_rng(42),
            ).fit(small_dataset.database)

        a = build()
        b = build()
        query = small_dataset.queries[0]
        ids_a = a.query(query, k=10, ef_search=80)
        ids_b = b.query(query, k=10, ef_search=80)
        assert np.array_equal(np.sort(ids_a), np.sort(ids_b))


class TestMutationFlushScope:
    """Mutations flush only frontends attached to the mutated index.

    Regression test: insert/delete used to flush *every* tracked
    frontend, including one created before a re-``fit`` that still
    serves the old server object — whose cached answers stay valid.
    """

    def _scheme(self, small_dataset):
        return PPANNS(
            dim=small_dataset.dim,
            beta=0.3,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(7),
        ).fit(small_dataset.database)

    def test_stale_server_frontend_not_flushed(self, small_dataset):
        scheme = self._scheme(small_dataset)
        old_frontend = scheme.serve(cache_size=4, batch_window_seconds=0.0)
        with old_frontend:
            old_frontend.answer(
                scheme.user.encrypt_query(small_dataset.queries[0], k=3),
                timeout=30,
            )
            assert len(old_frontend.cache) == 1

            scheme.fit(small_dataset.database)  # old_frontend now serves a dead server
            new_frontend = scheme.serve(cache_size=4, batch_window_seconds=0.0)
            with new_frontend:
                new_frontend.answer(
                    scheme.user.encrypt_query(small_dataset.queries[1], k=3),
                    timeout=30,
                )
                assert len(new_frontend.cache) == 1

                scheme.insert(small_dataset.database[0] + 0.5)

                # Current-server frontend flushed; pre-re-fit one untouched.
                assert len(new_frontend.cache) == 0
                assert len(old_frontend.cache) == 1
