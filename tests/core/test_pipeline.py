"""The staged query pipeline: stage structure, timing, settled batches."""

import numpy as np
import pytest

from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.refine import get_refine_engine
from repro.core.roles import DataOwner, QueryUser
from repro.core.search import (
    PIPELINE_STAGES,
    PipelineContext,
    execute_batch,
    execute_batch_settled,
    run_pipeline,
)
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(31)
    owner = DataOwner(8, beta=0.3, hnsw_params=FAST_HNSW, rng=rng)
    database = rng.standard_normal((70, 8)) * 2.0
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(32))
    return index, user, database


def _context(index, query, k_prime=10):
    request = query.request.resolve(default_ratio_k=2)
    return PipelineContext(
        index=index,
        sap_vector=query.sap_vector,
        trapdoor=query.trapdoor,
        request=request,
        k_prime=k_prime,
        live_mask=index.live_mask(),
        engine=get_refine_engine(None),
    )


class TestStageStructure:
    def test_stage_names_in_order(self):
        assert [name for name, _ in PIPELINE_STAGES] == [
            "resolve",
            "filter",
            "mask",
            "refine",
            "respond",
        ]

    def test_every_stage_is_timed(self, actors):
        index, user, database = actors
        ctx = _context(index, user.encrypt_query(database[0] + 0.01, 5))
        result = run_pipeline(ctx)
        assert set(ctx.stage_seconds) == {n for n, _ in PIPELINE_STAGES}
        assert all(seconds >= 0 for seconds in ctx.stage_seconds.values())
        assert result is ctx.result

    def test_result_timings_come_from_stage_clocks(self, actors):
        index, user, database = actors
        ctx = _context(index, user.encrypt_query(database[0] + 0.01, 5))
        result = run_pipeline(ctx)
        assert result.filter_seconds == ctx.stage_seconds["filter"]
        assert result.mask_seconds == ctx.stage_seconds["mask"]
        assert result.refine_seconds == ctx.stage_seconds["refine"]
        assert result.total_seconds == pytest.approx(
            ctx.stage_seconds["filter"]
            + ctx.stage_seconds["mask"]
            + ctx.stage_seconds["refine"]
        )

    def test_filter_only_skips_refine(self, actors):
        index, user, database = actors
        query = user.encrypt_query(database[0] + 0.01, 5, mode="filter_only")
        ctx = _context(index, query)
        result = run_pipeline(ctx)
        assert ctx.refine_outcome is None
        assert result.refine_engine is None
        assert result.refine_seconds == 0.0
        assert result.ids.shape[0] == 5

    def test_context_records_intermediate_state(self, actors):
        index, user, database = actors
        ctx = _context(index, user.encrypt_query(database[0] + 0.01, 5))
        run_pipeline(ctx)
        assert ctx.candidate_ids is not None
        assert ctx.refine_outcome is not None
        assert ctx.filter_stats.distance_computations > 0


class TestExecuteBatchSettled:
    def test_all_success_matches_execute_batch(self, actors):
        index, user, database = actors
        batch = user.encrypt_queries(database[:4] + 0.01, 5)
        settled, wall, request = execute_batch_settled(index, batch)
        batched = execute_batch(index, batch)
        assert wall > 0
        assert request.ratio_k is not None  # fully resolved
        assert request == batched.request
        assert len(settled) == 4
        assert all(outcome.ok for outcome in settled)
        for outcome, result in zip(settled, batched):
            assert np.array_equal(outcome.value.ids, result.ids)

    def test_batch_level_validation_still_raises(self, actors):
        index, user, database = actors
        stranger = QueryUser(
            DataOwner(8, beta=0.3, rng=np.random.default_rng(77)).authorize_user(),
            rng=np.random.default_rng(78),
        )
        batch = stranger.encrypt_queries(database[:3] + 0.01, 5)
        with pytest.raises(KeyMismatchError):
            execute_batch_settled(index, batch)

    def test_per_query_failures_settle_in_place(self, actors, monkeypatch):
        """A stage failure for one query settles at its position while
        siblings complete — the serving layer's contract."""
        index, user, database = actors
        batch = user.encrypt_queries(database[:4] + 0.01, 5)

        from repro.core import search as search_module

        original = search_module.stage_refine

        def flaky_refine(ctx):
            # Poison exactly the query whose sap row matches index 2.
            if np.array_equal(ctx.sap_vector, batch.sap_vectors[2]):
                raise RuntimeError("stage poisoned")
            original(ctx)

        monkeypatch.setattr(search_module, "stage_refine", flaky_refine)
        monkeypatch.setattr(
            search_module,
            "PIPELINE_STAGES",
            tuple(
                (name, flaky_refine if name == "refine" else fn)
                for name, fn in search_module.PIPELINE_STAGES
            ),
        )
        settled, _, _ = execute_batch_settled(index, batch)
        assert [outcome.ok for outcome in settled] == [True, True, False, True]
        with pytest.raises(RuntimeError, match="stage poisoned"):
            settled[2].unwrap()
        reference = execute_batch(
            index, user.encrypt_queries(database[:2] + 0.01, 5)
        )
        assert np.array_equal(settled[0].value.ids, reference[0].ids)

    def test_dim_mismatch_raises(self, actors):
        index, _, _ = actors
        other = DataOwner(5, beta=0.3, rng=np.random.default_rng(5))
        stranger = QueryUser(other.authorize_user(), rng=np.random.default_rng(6))
        batch = stranger.encrypt_queries(np.zeros((2, 5)), 3)
        with pytest.raises(ParameterError, match="dimension"):
            execute_batch_settled(index, batch)
