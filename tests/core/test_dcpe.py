"""DCPE / Scale-and-Perturb tests: Algorithm 1 and the beta-DCP contract."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcpe import (
    DCPEScheme,
    beta_lower_bound,
    beta_upper_bound,
    dcpe_keygen,
)
from repro.core.errors import DimensionMismatchError, ParameterError
from repro.core.keys import DCPEKey


@pytest.fixture()
def scheme():
    return DCPEScheme(8, dcpe_keygen(2.0, scale=100.0), rng=np.random.default_rng(0))


class TestKey:
    def test_keygen(self):
        key = dcpe_keygen(1.5, scale=512.0)
        assert key.beta == 1.5
        assert key.scale == 512.0

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            DCPEKey(scale=1024.0, beta=-1.0)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            DCPEKey(scale=0.0, beta=1.0)

    def test_beta_bounds(self):
        assert beta_lower_bound(256.0) == 16.0
        assert np.isclose(beta_upper_bound(256.0, 128), 2 * 256 * np.sqrt(128))

    def test_beta_bound_validation(self):
        with pytest.raises(ParameterError):
            beta_lower_bound(-1.0)
        with pytest.raises(ParameterError):
            beta_upper_bound(1.0, 0)


class TestEncryption:
    def test_noise_radius(self, scheme):
        # x <= s*beta/4 (Algorithm 1, lines 2-4).
        assert scheme.noise_radius == 100.0 * 2.0 / 4.0

    def test_perturbation_within_ball(self, scheme):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((200, 8))
        encrypted = scheme.encrypt_database(vectors)
        deviations = np.linalg.norm(encrypted - 100.0 * vectors, axis=1)
        assert np.all(deviations <= scheme.noise_radius + 1e-9)

    def test_perturbations_fill_the_ball(self, scheme):
        # Ball-uniform sampling: some draws should land beyond half radius.
        rng = np.random.default_rng(2)
        vectors = np.zeros((300, 8))
        encrypted = scheme.encrypt_database(vectors)
        radii = np.linalg.norm(encrypted, axis=1)
        assert radii.max() > 0.5 * scheme.noise_radius

    def test_beta_zero_is_pure_scaling(self):
        scheme = DCPEScheme(8, dcpe_keygen(0.0, scale=10.0), rng=np.random.default_rng(3))
        vector = np.arange(8.0)
        assert np.allclose(scheme.encrypt(vector), 10.0 * vector)

    def test_single_vs_batch_shapes(self, scheme):
        rng = np.random.default_rng(4)
        single = scheme.encrypt(rng.standard_normal(8))
        batch = scheme.encrypt_database(rng.standard_normal((5, 8)))
        assert single.shape == (8,)
        assert batch.shape == (5, 8)

    def test_ciphertext_keeps_dimensionality(self, scheme):
        # DCPE ciphertexts are still d-dimensional (Section III-B), so
        # encrypted distances cost the same as plaintext distances.
        assert scheme.encrypt(np.zeros(8)).shape[0] == scheme.dim

    def test_dimension_validation(self, scheme):
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt(np.zeros(9))
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt_database(np.zeros((3, 9)))

    def test_nonpositive_dim(self):
        with pytest.raises(ParameterError):
            DCPEScheme(0, dcpe_keygen(1.0))


class TestBetaDCPContract:
    """Definition 3: comparisons with gap > beta survive encryption."""

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30, deadline=None)
    def test_definition_3(self, seed):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(2, 16))
        beta = float(rng.uniform(0.5, 4.0))
        scale = 64.0
        scheme = DCPEScheme(dim, dcpe_keygen(beta, scale=scale), rng=rng)
        o, p, q = rng.standard_normal((3, dim)) * 5.0
        dist_oq = np.linalg.norm(o - q)
        dist_pq = np.linalg.norm(p - q)
        if dist_oq >= dist_pq - beta:
            return  # contract only binds when the gap exceeds beta
        enc_o, enc_p, enc_q = (scheme.encrypt(v) for v in (o, p, q))
        assert np.linalg.norm(enc_o - enc_q) < np.linalg.norm(enc_p - enc_q)

    def test_distance_approximation_error_bounded(self):
        # ||C_a - C_b|| differs from s*||a-b|| by at most 2 * noise radius.
        rng = np.random.default_rng(7)
        scheme = DCPEScheme(8, dcpe_keygen(1.0, scale=50.0), rng=rng)
        a = rng.standard_normal(8)
        b = rng.standard_normal(8)
        true = 50.0 * np.linalg.norm(a - b)
        approx = np.linalg.norm(scheme.encrypt(a) - scheme.encrypt(b))
        assert abs(approx - true) <= 2 * scheme.noise_radius + 1e-9

    def test_larger_beta_means_more_noise(self):
        rng = np.random.default_rng(8)
        norms = []
        for beta in (0.5, 4.0):
            scheme = DCPEScheme(
                8, dcpe_keygen(beta, scale=50.0), rng=np.random.default_rng(9)
            )
            encrypted = scheme.encrypt_database(np.zeros((200, 8)))
            norms.append(np.linalg.norm(encrypted, axis=1).mean())
        assert norms[1] > norms[0] * 2
