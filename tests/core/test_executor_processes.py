"""Process data-plane tests: parity, lifecycle, crashes, spawn safety.

Every plane spawn costs real process-startup time, so the suite keeps
indexes tiny and worker counts at 1-2; the broad backend x mode x shard
sweep lives in ``tests/strategies/test_executor_properties.py``.
"""

import time

import numpy as np
import pytest

import repro.core.plane as plane_module
from repro.core.errors import ParameterError
from repro.core.plane import (
    DataPlaneError,
    ProcessDataPlane,
    process_plane_available,
)
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.shm import active_arenas
from repro.hnsw.graph import HNSWParams

_TINY_HNSW = HNSWParams(m=4, ef_construction=20)

needs_plane = pytest.mark.skipif(
    not process_plane_available(),
    reason="process data plane unavailable on this host",
)


def _workload(shards=2, n=80, dim=8, queries=6, k=3, mode="full", seed=33):
    owner = DataOwner(
        dim,
        beta=0.5,
        hnsw_params=_TINY_HNSW,
        backend="hnsw",
        shards=shards,
        rng=np.random.default_rng(seed),
    )
    database = np.random.default_rng(seed + 1).standard_normal((n, dim)) * 2.0
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 2))
    rows = np.random.default_rng(seed + 3).standard_normal((queries, dim)) * 2.0
    batch = user.encrypt_queries(rows, k, mode=mode)
    return index, batch


def _assert_same_answers(thread_results, process_results):
    for t, p in zip(thread_results, process_results):
        assert np.array_equal(t.ids, p.ids)
        assert (
            t.filter_stats.distance_computations
            == p.filter_stats.distance_computations
        )
        assert t.refine_comparisons == p.refine_comparisons


@needs_plane
class TestServerIntegration:
    def test_parity_and_plane_reuse(self):
        index, batch = _workload()
        oracle = CloudServer(index).answer(batch)
        with CloudServer(index, executor="processes", workers=2) as server:
            assert server.executor == "processes"
            first_plane = server.data_plane()
            assert first_plane is not None
            assert first_plane.workers == 2
            assert first_plane.sharded
            _assert_same_answers(oracle, server.answer(batch))
            # Second batch reuses the cached plane — no respawn.
            assert server.data_plane() is first_plane
            _assert_same_answers(oracle, server.answer(batch))
            name = first_plane.arena_name
            assert name in active_arenas()
        assert first_plane.closed
        assert name not in active_arenas()

    def test_invalidate_then_rebuild(self):
        index, batch = _workload(queries=2)
        with CloudServer(index, executor="processes", workers=1) as server:
            first = server.data_plane()
            server.invalidate_data_plane()
            assert first.closed
            second = server.data_plane()
            assert second is not first
            assert not second.closed
        assert not active_arenas()

    def test_concurrent_first_use_builds_exactly_one_plane(self):
        """Racing first callers (a serving scheduler plus a direct
        answer, say) must share one plane — a second build would leak
        its worker processes and shared-memory arena unclosed."""
        import threading

        index, batch = _workload(queries=2)
        with CloudServer(index, executor="processes", workers=1) as server:
            planes = [None] * 4
            barrier = threading.Barrier(4)

            def grab(slot):
                barrier.wait()
                planes[slot] = server.data_plane()

            threads = [
                threading.Thread(target=grab, args=(slot,)) for slot in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert all(plane is planes[0] for plane in planes)
            assert planes[0] is not None and not planes[0].closed
            assert len(active_arenas()) == 1
        assert not active_arenas()

    def test_degrades_to_threads_when_unavailable(self, monkeypatch):
        index, batch = _workload(queries=2)
        monkeypatch.setattr(plane_module, "process_plane_available", lambda: False)
        oracle = CloudServer(index).answer(batch)
        server = CloudServer(index, executor="processes")
        with pytest.warns(RuntimeWarning, match="degrading to thread execution"):
            assert server.data_plane() is None
        # The degradation is permanent and warns exactly once.
        assert server.executor == "threads"
        assert server.data_plane() is None
        _assert_same_answers(oracle, server.answer(batch))

    def test_worker_crash_fails_batch_then_plane_self_heals(self):
        index, batch = _workload()
        oracle = CloudServer(index).answer(batch)
        with CloudServer(index, executor="processes", workers=1) as server:
            crashed = server.data_plane()
            _assert_same_answers(oracle, server.answer(batch))
            crashed.kill_worker(0)
            # The poisoned batch raises (no hang) — at send time (broken
            # pipe) or at recv time (death detected), depending on when
            # the OS tears the pipe down.
            with pytest.raises(DataPlaneError, match="died mid-batch|unreachable"):
                server.answer(batch)
            # A crash no longer breaks the plane: the server keeps the
            # same plane and the dead worker respawns in place.
            assert not crashed.broken
            assert server.data_plane() is crashed
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    _assert_same_answers(oracle, server.answer(batch))
                    break
                except DataPlaneError:
                    time.sleep(0.05)
            else:
                pytest.fail("plane did not self-heal within 30s")
            health = crashed.health()
            assert health["workers"][0]["restarts"] >= 1
            assert not health["workers"][0]["dead"]
        assert not active_arenas()

    def test_invalid_workers_rejected(self):
        index, _ = _workload(queries=1)
        with pytest.raises(ParameterError, match="workers"):
            CloudServer(index, executor="processes", workers=0)
        with pytest.raises(ParameterError, match="executor"):
            CloudServer(index, executor="fibers")


@needs_plane
class TestPlaneLifecycle:
    def test_double_close_is_idempotent(self):
        index, _ = _workload(queries=1)
        plane = ProcessDataPlane(index, workers=1)
        name = plane.arena_name
        plane.close()
        plane.close()
        assert plane.closed
        assert name not in active_arenas()
        with pytest.raises(DataPlaneError, match="closed"):
            plane.filter_batch(np.zeros((1, index.sap_vectors.shape[1])), 3, None)

    def test_crash_poisons_per_query_not_hangs(self):
        index, batch = _workload(shards=2)
        with ProcessDataPlane(index, workers=1) as plane:
            plane.kill_worker(0)
            outcomes = plane.filter_batch(batch.sap_vectors, 6, None)
            assert len(outcomes) == batch.sap_vectors.shape[0]
            assert all(isinstance(o, DataPlaneError) for o in outcomes)
            # The crash marks the worker dead (restart pending) but the
            # plane itself stays serviceable and current.
            assert not plane.broken
            assert plane.matches(index)
            health = plane.health()
            assert health["workers"][0]["dead"]
            assert health["workers"][0]["restart_in_seconds"] is not None
        assert not active_arenas()

    def test_monolithic_stripe_crash_poisons_only_dead_stripe(self):
        index, batch = _workload(shards=None)
        with ProcessDataPlane(index, workers=2) as plane:
            assert not plane.sharded
            plane.kill_worker(1)
            outcomes = plane.filter_batch(batch.sap_vectors, 6, None)
            poisoned = [isinstance(o, DataPlaneError) for o in outcomes]
            # Worker 0's stripe still answered; worker 1's is poisoned.
            assert any(poisoned) and not all(poisoned)
        assert not active_arenas()

    def test_constructor_failure_unlinks_arena(self, monkeypatch):
        index, _ = _workload(queries=1)

        def sabotaged_recv(self, worker_index):
            raise DataPlaneError("injected handshake failure")

        monkeypatch.setattr(ProcessDataPlane, "_recv", sabotaged_recv)
        with pytest.raises(DataPlaneError, match="injected"):
            ProcessDataPlane(index, workers=1)
        assert not active_arenas()

    def test_spawn_context_inherits_no_pool_state(self):
        from repro.core.executor import shared_pool

        shared_pool()  # force the parent's lazy thread pool into existence
        index, _ = _workload(queries=1)
        with ProcessDataPlane(index, workers=1) as plane:
            diagnostics = plane.ping(0)
            assert diagnostics["start_method"] == "spawn"
            # Spawn children import repro fresh: the parent's pool (and
            # any lock it holds) must not be visible in the worker.
            assert diagnostics["pool_inherited"] is False
        assert not active_arenas()

    def test_stale_fingerprint_detected(self):
        index, _ = _workload(queries=1)
        with ProcessDataPlane(index, workers=1) as plane:
            assert plane.matches(index)
            other, _ = _workload(queries=1, seed=77)
            assert not plane.matches(other)
