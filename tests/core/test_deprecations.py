"""Deprecated-API behavior: the ``EncryptedIndex.graph`` accessor."""

import warnings

import numpy as np
import pytest

from repro.core.roles import DataOwner
from repro.hnsw.graph import HNSWIndex
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(77)
    owner = DataOwner(8, beta=0.3, hnsw_params=FAST_HNSW, rng=rng)
    return owner.build_index(rng.standard_normal((40, 8)))


def test_graph_accessor_emits_deprecation_warning(index):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        substrate = index.graph
    assert isinstance(substrate, HNSWIndex)
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "EncryptedIndex.graph" in str(caught[0].message)


def test_graph_accessor_still_returns_substrate(index):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert index.graph is index.backend.substrate


def test_graph_warning_fires_exactly_once_per_call_site(index):
    """The 'default' filter dedups on location: a loop over one call site
    warns once; a second, distinct call site warns again."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            index.graph  # call site A, hit three times
        assert len(caught) == 1
        index.graph  # call site B
        assert len(caught) == 2
    for record in caught:
        assert issubclass(record.category, DeprecationWarning)
