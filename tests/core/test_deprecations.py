"""Deprecated-API behavior: ``EncryptedIndex.graph`` and ``SearchReport``."""

import warnings

import numpy as np
import pytest

from repro.core import protocol
from repro.core.protocol import SearchResult
from repro.core.roles import DataOwner
from repro.hnsw.graph import HNSWIndex
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(77)
    owner = DataOwner(8, beta=0.3, hnsw_params=FAST_HNSW, rng=rng)
    return owner.build_index(rng.standard_normal((40, 8)))


def test_graph_accessor_emits_deprecation_warning(index):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        substrate = index.graph
    assert isinstance(substrate, HNSWIndex)
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "EncryptedIndex.graph" in str(caught[0].message)


def test_graph_accessor_still_returns_substrate(index):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert index.graph is index.backend.substrate


def test_graph_warning_fires_exactly_once_per_call_site(index):
    """The 'default' filter dedups on location: a loop over one call site
    warns once; a second, distinct call site warns again."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            index.graph  # call site A, hit three times
        assert len(caught) == 1
        index.graph  # call site B
        assert len(caught) == 2
    for record in caught:
        assert issubclass(record.category, DeprecationWarning)


def test_search_report_alias_emits_deprecation_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        alias = protocol.SearchReport
    assert alias is SearchResult
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "SearchReport" in str(caught[0].message)


def test_search_report_still_importable_everywhere():
    """The alias resolves through every historical import path."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core.protocol import SearchReport as from_protocol
        from repro.core.search import SearchReport as from_search

        import repro
        import repro.core

        assert from_protocol is SearchResult
        assert from_search is SearchResult
        assert repro.SearchReport is SearchResult
        assert repro.core.SearchReport is SearchResult


def test_search_report_warns_exactly_once_per_call_site():
    """Module-level __getattr__ matches the graph-accessor precedent:
    the 'default' filter dedups one call site, a new call site warns
    again."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        for _ in range(3):
            protocol.SearchReport  # call site A, hit three times
        assert len(caught) == 1
        protocol.SearchReport  # call site B
        assert len(caught) == 2
    for record in caught:
        assert issubclass(record.category, DeprecationWarning)


def test_unknown_module_attribute_still_raises():
    with pytest.raises(AttributeError, match="SearchReportTypo"):
        protocol.SearchReportTypo
