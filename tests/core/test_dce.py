"""DCE tests: every Section IV identity, exactness, security surface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dce import (
    DCECiphertext,
    DCEScheme,
    DCETrapdoor,
    dce_keygen,
    distance_comp,
    sdc_mac_count,
)
from repro.core.errors import (
    CiphertextFormatError,
    DimensionMismatchError,
    KeyMismatchError,
)


@pytest.fixture(scope="module")
def scheme():
    return DCEScheme(16, rng=np.random.default_rng(1))


@pytest.fixture(scope="module")
def workload(scheme):
    rng = np.random.default_rng(2)
    database = rng.standard_normal((60, 16)) * 5.0
    query = rng.standard_normal(16) * 5.0
    encrypted = scheme.encrypt_database(database)
    trapdoor = scheme.trapdoor(query)
    dists = ((database - query) ** 2).sum(axis=1)
    return database, query, encrypted, trapdoor, dists


class TestKeygen:
    def test_shapes(self):
        key = dce_keygen(16, np.random.default_rng(0))
        assert key.m1.shape == (16 // 2 + 4, 16 // 2 + 4)
        assert key.m2.shape == (16 // 2 + 4, 16 // 2 + 4)
        assert key.m_up.shape == (16 + 8, 2 * 16 + 16)
        assert key.m_down.shape == (16 + 8, 2 * 16 + 16)
        assert key.m3_inv.shape == (2 * 16 + 16, 2 * 16 + 16)
        assert key.kv1.shape == (2 * 16 + 16,)
        assert key.pi1.size == 16
        assert key.pi2.size == 16 + 8

    def test_kv_constraint(self):
        # The transformation correctness hinges on kv1*kv3 == kv2*kv4.
        key = dce_keygen(20, np.random.default_rng(3))
        assert np.allclose(key.kv1 * key.kv3, key.kv2 * key.kv4)

    def test_matrix_inverses_consistent(self):
        key = dce_keygen(12, np.random.default_rng(4))
        half = 12 // 2 + 4
        assert np.allclose(key.m1 @ key.m1_inv, np.eye(half), atol=1e-10)
        assert np.allclose(key.m2 @ key.m2_inv, np.eye(half), atol=1e-10)
        full = np.vstack([key.m_up, key.m_down])
        assert np.allclose(full @ key.m3_inv, np.eye(2 * 12 + 16), atol=1e-10)

    def test_rejects_odd_dim(self):
        with pytest.raises(ValueError):
            dce_keygen(15, np.random.default_rng(0))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            dce_keygen(0, np.random.default_rng(0))

    def test_r4_nonzero(self):
        # gamma_p divides by r4; keygen must keep it away from zero.
        for seed in range(20):
            key = dce_keygen(8, np.random.default_rng(seed))
            assert abs(key.r4) >= 0.5


class TestEquationIdentities:
    """Checks of the numbered equations in Section IV-A."""

    def test_equation_1_pairwise_mix(self):
        # check_p . check_q == -2 p.q  (Equation 1)
        rng = np.random.default_rng(5)
        p = rng.standard_normal(10)
        q = rng.standard_normal(10)
        check_p = DCEScheme._pairwise_mix(p, negate=False)
        check_q = DCEScheme._pairwise_mix(q, negate=True)
        assert np.isclose(check_p @ check_q, -2.0 * (p @ q))

    def test_equation_5_randomization_inner_product(self):
        # p_bar . q_bar == ||p||^2 - 2 p.q  (Equation 5)
        rng = np.random.default_rng(6)
        scheme = DCEScheme(12, rng=rng)
        p = rng.standard_normal(12) * 3.0
        q = rng.standard_normal(12) * 3.0
        p_bar = scheme._randomize_database(p[np.newaxis])[0]
        q_bar = scheme._randomize_query(q)
        expected = float(p @ p) - 2.0 * float(p @ q)
        assert np.isclose(p_bar @ q_bar, expected, rtol=1e-9)

    def test_equation_16_full_transformation(self):
        # F3(o_bar, p_bar).q' == 2 r_o r_p r_q (||o||^2-2o.q - ||p||^2+2p.q)
        # — verified through the sign AND the ratio consistency of Z.
        rng = np.random.default_rng(7)
        scheme = DCEScheme(8, rng=rng)
        vectors = rng.standard_normal((3, 8)) * 2.0
        q = rng.standard_normal(8) * 2.0
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        z_01 = distance_comp(db[0], db[1], t)
        gap_01 = dists[0] - dists[1]
        # Z / gap = 2 r_o r_p r_q > 0 and bounded by the randomizer ranges.
        ratio = z_01 / gap_01
        assert ratio > 0
        assert 2 * 0.5**3 * 0.9 < ratio < 2 * 2.0**3 * 1.1

    def test_randomizer_consistency_across_pairs(self):
        # Z_{o,p} uses r_o * r_p: the products must be mutually consistent:
        # (Z_01 * Z_23) / (Z_03 * Z_21) == (gap01*gap23)/(gap03*gap21).
        rng = np.random.default_rng(8)
        scheme = DCEScheme(8, rng=rng)
        vectors = rng.standard_normal((4, 8)) * 2.0
        q = rng.standard_normal(8) * 2.0
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)

        def z(i, j):
            return distance_comp(db[i], db[j], t)

        def gap(i, j):
            return dists[i] - dists[j]

        lhs = (z(0, 1) * z(2, 3)) / (z(0, 3) * z(2, 1))
        rhs = (gap(0, 1) * gap(2, 3)) / (gap(0, 3) * gap(2, 1))
        assert np.isclose(lhs, rhs, rtol=1e-6)


class TestDistanceComp:
    def test_theorem_3_sign_correctness(self, workload):
        database, _, encrypted, trapdoor, dists = workload
        n = database.shape[0]
        for i in range(0, n, 7):
            for j in range(0, n, 5):
                if i == j:
                    continue
                z = distance_comp(encrypted[i], encrypted[j], trapdoor)
                assert (z < 0) == (dists[i] < dists[j]), (i, j)

    def test_self_comparison_near_zero(self, workload):
        _, _, encrypted, trapdoor, dists = workload
        z = distance_comp(encrypted[0], encrypted[0], trapdoor)
        # dist(o,q) - dist(o,q) == 0; float noise only.
        assert abs(z) < 1e-4 * max(dists.max(), 1.0)

    def test_antisymmetry(self, workload):
        _, _, encrypted, trapdoor, _ = workload
        z_ij = distance_comp(encrypted[3], encrypted[8], trapdoor)
        z_ji = distance_comp(encrypted[8], encrypted[3], trapdoor)
        # Z is not exactly antisymmetric in magnitude (r_o vs r_p swap),
        # but the signs must oppose.
        assert np.sign(z_ij) == -np.sign(z_ji)

    def test_batch_matches_single(self, scheme, workload):
        _, _, encrypted, trapdoor, _ = workload
        indices = np.arange(20)
        batch = scheme.compare_batch(encrypted[2], encrypted, indices, trapdoor)
        for offset, j in enumerate(indices):
            single = distance_comp(encrypted[2], encrypted[int(j)], trapdoor)
            assert np.isclose(batch[offset], single)

    def test_key_mismatch_detected(self, scheme, workload):
        _, query, encrypted, _, _ = workload
        other = DCEScheme(16, rng=np.random.default_rng(99))
        foreign_trapdoor = other.trapdoor(query)
        with pytest.raises(KeyMismatchError):
            distance_comp(encrypted[0], encrypted[1], foreign_trapdoor)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_sign_property(self, seed):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(2, 24))
        scheme = DCEScheme(dim, rng=rng)
        vectors = rng.standard_normal((6, dim)) * 4.0
        q = rng.standard_normal(dim) * 4.0
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(6):
            for j in range(6):
                if i == j:
                    continue
                gap = dists[i] - dists[j]
                if abs(gap) < 1e-6 * max(dists.max(), 1.0):
                    continue  # ties may flip under float noise
                z = distance_comp(db[i], db[j], t)
                assert (z < 0) == (gap < 0)


class TestShapesAndPadding:
    def test_ciphertext_shape(self, scheme, workload):
        _, _, encrypted, _, _ = workload
        ct = encrypted[0]
        assert ct.components.shape == (4, 2 * 16 + 16)
        assert ct.size_in_floats == 8 * 16 + 64

    def test_trapdoor_shape(self, workload):
        _, _, _, trapdoor, _ = workload
        assert trapdoor.vector.shape == (2 * 16 + 16,)

    def test_odd_dimension_padding(self):
        rng = np.random.default_rng(9)
        scheme = DCEScheme(7, rng=rng)
        vectors = rng.standard_normal((10, 7)) * 3.0
        q = rng.standard_normal(7) * 3.0
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for i in range(10):
            for j in range(10):
                if i != j:
                    z = distance_comp(db[i], db[j], t)
                    assert (z < 0) == (dists[i] < dists[j])

    def test_mac_count_formula(self):
        assert sdc_mac_count(128) == 4 * 128 + 32
        assert sdc_mac_count(960) == 4 * 960 + 32

    def test_dim_one(self):
        # d=1 pads to 2 and must still compare exactly.
        rng = np.random.default_rng(10)
        scheme = DCEScheme(1, rng=rng)
        vectors = np.array([[0.0], [5.0], [9.0]])
        db = scheme.encrypt_database(vectors)
        t = scheme.trapdoor(np.array([4.0]))
        assert distance_comp(db[1], db[2], t) < 0  # |5-4| < |9-4|
        assert distance_comp(db[0], db[1], t) > 0  # |0-4| > |5-4|


class TestValidation:
    def test_encrypt_wrong_dim(self, scheme):
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt(np.zeros(5))

    def test_encrypt_database_wrong_dim(self, scheme):
        with pytest.raises(DimensionMismatchError):
            scheme.encrypt_database(np.zeros((4, 5)))

    def test_encrypt_database_wrong_ndim(self, scheme):
        with pytest.raises(CiphertextFormatError):
            scheme.encrypt_database(np.zeros(16))

    def test_trapdoor_wrong_dim(self, scheme):
        with pytest.raises(DimensionMismatchError):
            scheme.trapdoor(np.zeros(3))

    def test_nonpositive_dim(self):
        with pytest.raises(ValueError):
            DCEScheme(0)

    def test_reusing_key_requires_matching_dim(self):
        key = dce_keygen(16, np.random.default_rng(0))
        with pytest.raises(DimensionMismatchError):
            DCEScheme(20, key=key)

    def test_shared_key_interoperates(self):
        # Owner and user instances sharing a key must produce compatible
        # ciphertexts/trapdoors (Figure 1 step 0).
        rng_owner = np.random.default_rng(11)
        owner = DCEScheme(8, rng=rng_owner)
        user = DCEScheme(8, rng=np.random.default_rng(12), key=owner.key)
        vectors = np.random.default_rng(13).standard_normal((5, 8))
        q = np.random.default_rng(14).standard_normal(8)
        db = owner.encrypt_database(vectors)
        t = user.trapdoor(q)
        dists = ((vectors - q) ** 2).sum(axis=1)
        z = distance_comp(db[0], db[1], t)
        assert (z < 0) == (dists[0] < dists[1])

    def test_malformed_ciphertext_rejected(self):
        with pytest.raises(CiphertextFormatError):
            DCECiphertext(np.zeros((3, 10)), key_id=0)

    def test_malformed_trapdoor_rejected(self):
        with pytest.raises(CiphertextFormatError):
            DCETrapdoor(np.zeros((2, 5)), key_id=0)


class TestEncryptedDatabase:
    def test_len_and_getitem(self, workload):
        _, _, encrypted, _, _ = workload
        assert len(encrypted) == 60
        assert encrypted[3].components.shape == (4, 48)

    def test_subset(self, workload):
        _, _, encrypted, _, _ = workload
        sub = encrypted.subset(np.array([1, 4, 7]))
        assert len(sub) == 3
        assert np.array_equal(sub[0].components, encrypted[1].components)

    def test_append(self, scheme, workload):
        database, _, encrypted, _, _ = workload
        new_ct = scheme.encrypt(database[0])
        grown = encrypted.append(new_ct)
        assert len(grown) == 61
        assert np.array_equal(grown[60].components, new_ct.components)

    def test_append_foreign_key_rejected(self, workload):
        _, _, encrypted, _, _ = workload
        other = DCEScheme(16, rng=np.random.default_rng(55))
        foreign = other.encrypt(np.zeros(16))
        with pytest.raises(KeyMismatchError):
            encrypted.append(foreign)


class TestCiphertextRandomness:
    def test_same_plaintext_encrypts_differently(self, scheme):
        p = np.ones(16)
        a = scheme.encrypt(p)
        b = scheme.encrypt(p)
        assert not np.allclose(a.components, b.components)

    def test_trapdoors_randomized(self, scheme):
        q = np.ones(16)
        a = scheme.trapdoor(q)
        b = scheme.trapdoor(q)
        assert not np.allclose(a.vector, b.vector)

    def test_randomized_ciphertexts_still_compare(self, scheme):
        rng = np.random.default_rng(20)
        vectors = rng.standard_normal((2, 16))
        q = rng.standard_normal(16)
        dists = ((vectors - q) ** 2).sum(axis=1)
        for _ in range(5):
            db = scheme.encrypt_database(vectors)
            t = scheme.trapdoor(q)
            z = distance_comp(db[0], db[1], t)
            assert (z < 0) == (dists[0] < dists[1])
