"""Persistence tests: index and key round-trips through disk."""

import numpy as np
import pytest

from repro.core.dce import DCEScheme, distance_comp
from repro.core.errors import CiphertextFormatError
from repro.core.persistence import load_index, load_keys, save_index, save_keys
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.maintenance import delete_vector
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def deployed(tmp_path_factory):
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((150, 12)) * 3.0
    owner = DataOwner(12, beta=0.2, hnsw_params=FAST_HNSW, rng=rng)
    index = owner.build_index(vectors)
    return owner, index, vectors


class TestIndexRoundtrip:
    def test_search_results_identical(self, deployed, tmp_path):
        owner, index, vectors = deployed
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)

        user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(1))
        query = vectors[5] + 0.01
        encrypted = user.encrypt_query(query, 10)
        original = CloudServer(index).answer(encrypted, ef_search=100)
        restored = CloudServer(loaded).answer(encrypted, ef_search=100)
        assert set(original.ids.tolist()) == set(restored.ids.tolist())

    def test_graph_structure_preserved(self, deployed, tmp_path):
        _, index, _ = deployed
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.backend.substrate.entry_point == index.backend.substrate.entry_point
        assert loaded.backend.substrate.max_level == index.backend.substrate.max_level
        for node in range(0, 150, 17):
            assert loaded.backend.substrate.neighbors(node, 0) == index.backend.substrate.neighbors(node, 0)

    def test_tombstones_preserved(self, deployed, tmp_path):
        owner, _, vectors = deployed
        index = owner.build_index(vectors)
        delete_vector(index, 3)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert not loaded.is_live(3)
        assert len(loaded) == len(index)

    def test_v1_files_still_load(self, deployed, tmp_path):
        """A synthesized seed-era (v1, HNSW-only) file loads transparently.

        v1 had no ``backend_kind`` and duplicated the vectors under
        ``graph_vectors``; see docs/FORMATS.md.
        """
        owner, index, vectors = deployed
        path = tmp_path / "index_v1.npz"
        save_index(path, index)
        data = dict(np.load(path))
        data["format_version"] = np.array([1], dtype=np.int64)
        del data["backend_kind"]
        data["graph_vectors"] = index.sap_vectors
        np.savez_compressed(path, **data)

        loaded = load_index(path)
        assert loaded.backend_kind == "hnsw"
        user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(4))
        encrypted = user.encrypt_query(vectors[9] + 0.01, 10)
        original = CloudServer(index).answer(encrypted, ef_search=100)
        restored = CloudServer(loaded).answer(encrypted, ef_search=100)
        assert set(original.ids.tolist()) == set(restored.ids.tolist())

    def test_v2_is_still_the_monolithic_write_format(self, deployed, tmp_path):
        _, index, _ = deployed
        path = tmp_path / "index_v2.npz"
        save_index(path, index)
        with np.load(path) as data:
            assert int(data["format_version"][0]) == 2
            assert "num_shards" not in data.files

    def test_version_check(self, deployed, tmp_path):
        _, index, _ = deployed
        path = tmp_path / "index.npz"
        save_index(path, index)
        data = dict(np.load(path))
        data["format_version"] = np.array([99], dtype=np.int64)
        np.savez_compressed(path, **data)
        with pytest.raises(CiphertextFormatError):
            load_index(path)


class TestKeyRoundtrip:
    def test_loaded_keys_interoperate(self, deployed, tmp_path):
        owner, index, vectors = deployed
        path = tmp_path / "keys.npz"
        save_keys(path, owner.authorize_user())
        keys = load_keys(path)
        assert keys.dim == 12
        user = QueryUser(keys, rng=np.random.default_rng(2))
        encrypted = user.encrypt_query(vectors[7] + 0.01, 5)
        report = CloudServer(index).answer(encrypted, ef_search=100)
        assert 7 in report.ids

    def test_dce_key_exact(self, deployed, tmp_path):
        owner, _, vectors = deployed
        path = tmp_path / "keys.npz"
        save_keys(path, owner.authorize_user())
        keys = load_keys(path)
        # A fresh DCE scheme from loaded keys must produce ciphertexts
        # compatible with the owner's trapdoors and vice versa.
        loaded_scheme = DCEScheme(12, rng=np.random.default_rng(3), key=keys.dce_key)
        db = loaded_scheme.encrypt_database(vectors[:4])
        trapdoor = owner.dce_scheme.trapdoor(vectors[0])
        dists = ((vectors[:4] - vectors[0]) ** 2).sum(axis=1)
        z = distance_comp(db[1], db[2], trapdoor)
        assert (z < 0) == (dists[1] < dists[2])

    def test_key_version_check(self, deployed, tmp_path):
        owner, _, _ = deployed
        path = tmp_path / "keys.npz"
        save_keys(path, owner.authorize_user())
        data = dict(np.load(path))
        data["format_version"] = np.array([99], dtype=np.int64)
        np.savez_compressed(path, **data)
        with pytest.raises(CiphertextFormatError):
            load_keys(path)
