"""Unit tests for the parallel index-construction pipeline."""

import numpy as np
import pytest

from repro.core.build import (
    BUILD_MODES,
    BuildReport,
    ShardBuildTiming,
    build_shard_backends,
    resolve_build_workers,
    spawn_shard_rngs,
)
from repro.core.errors import ParameterError
from repro.core.executor import pool_width
from repro.core.persistence import load_index, save_index
from repro.core.roles import DataOwner
from repro.core.scheme import PPANNS
from repro.core.sharding import build_sharded_index
from repro.eval.costmodel import SetupCost
from repro.eval.runner import sweep_build
from tests.conftest import FAST_HNSW


def _database(n=60, dim=8, seed=0):
    return np.random.default_rng(seed).standard_normal((n, dim)) * 2.0


class TestKnobValidation:
    def test_resolve_build_workers(self):
        assert resolve_build_workers(None) == pool_width()
        assert resolve_build_workers(3) == 3
        with pytest.raises(ParameterError):
            resolve_build_workers(0)

    def test_owner_rejects_bad_knobs(self):
        with pytest.raises(ParameterError):
            DataOwner(4, beta=0.3, build_workers=0)
        with pytest.raises(ParameterError):
            DataOwner(4, beta=0.3, build_mode="turbo")

    def test_build_index_override_validation(self):
        owner = DataOwner(8, beta=0.3, backend="bruteforce")
        with pytest.raises(ParameterError):
            owner.build_index(_database(), build_workers=-1)
        with pytest.raises(ParameterError):
            owner.build_index(_database(), build_mode="turbo")

    def test_build_shard_backends_rejects_bad_mode(self):
        data = _database(10)
        with pytest.raises(ParameterError):
            build_shard_backends(
                "bruteforce", data, [np.arange(10, dtype=np.int64)],
                build_mode="turbo",
            )

    def test_modes_registry(self):
        assert BUILD_MODES == ("sequential", "bulk")


class TestSpawnShardRngs:
    def test_same_parent_seed_same_children(self):
        first = spawn_shard_rngs(np.random.default_rng(5), 3)
        second = spawn_shard_rngs(np.random.default_rng(5), 3)
        for a, b in zip(first, second):
            assert np.array_equal(a.integers(0, 100, 8), b.integers(0, 100, 8))

    def test_children_are_independent(self):
        children = spawn_shard_rngs(np.random.default_rng(5), 3)
        draws = [tuple(child.integers(0, 2**31, 8).tolist()) for child in children]
        assert len(set(draws)) == 3

    def test_successive_spawns_differ(self):
        parent = np.random.default_rng(5)
        first = spawn_shard_rngs(parent, 2)
        second = spawn_shard_rngs(parent, 2)
        assert not np.array_equal(
            first[0].integers(0, 2**31, 8), second[0].integers(0, 2**31, 8)
        )

    def test_parent_stream_not_advanced(self):
        parent = np.random.default_rng(5)
        spawn_shard_rngs(parent, 4)
        assert np.array_equal(
            parent.integers(0, 100, 8),
            np.random.default_rng(5).integers(0, 100, 8),
        )

    def test_none_parent_allowed(self):
        assert len(spawn_shard_rngs(None, 2)) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ParameterError):
            spawn_shard_rngs(np.random.default_rng(0), -1)


class TestBuildReport:
    def test_owner_records_split_monolithic(self):
        owner = DataOwner(8, beta=0.3, backend="bruteforce")
        index = owner.build_index(_database())
        report = index.build_report
        assert report is not None
        assert report.backend == "bruteforce"
        assert report.shards == 1
        assert report.encrypt_seconds > 0
        assert report.build_seconds >= 0
        assert report.total_seconds == pytest.approx(
            report.encrypt_seconds + report.build_seconds
        )
        assert report.shard_timings == ()

    def test_owner_records_shard_timings(self):
        owner = DataOwner(8, beta=0.3, backend="bruteforce", shards=3)
        index = owner.build_index(_database(n=30))
        report = index.build_report
        assert report.shards == 3
        assert [timing.shard_id for timing in report.shard_timings] == [0, 1, 2]
        assert sum(t.num_vectors for t in report.shard_timings) == 30
        assert all(t.seconds >= 0.0 for t in report.shard_timings)

    def test_empty_shard_timing_is_zero(self):
        # 7 shards over 5 vectors: the tail shards never build a backend.
        owner = DataOwner(8, beta=0.3, backend="bruteforce", shards=7)
        report = owner.build_index(_database(n=5)).build_report
        empty = [t for t in report.shard_timings if t.num_vectors == 0]
        assert empty and all(t.seconds == 0.0 for t in empty)

    def test_as_dict_is_json_ready(self):
        report = BuildReport(
            backend="hnsw",
            num_vectors=10,
            dim=4,
            shards=2,
            build_mode="bulk",
            build_workers=None,
            encrypt_seconds=0.5,
            build_seconds=1.5,
            shard_timings=(ShardBuildTiming(0, 1.0, 5), ShardBuildTiming(1, 0.5, 5)),
        )
        payload = report.as_dict()
        assert payload["total_seconds"] == 2.0
        assert payload["shard_timings"][1] == {
            "shard_id": 1,
            "seconds": 0.5,
            "num_vectors": 5,
        }

    def test_build_mode_threads_to_graph(self):
        owner = DataOwner(
            8, beta=0.3, hnsw_params=FAST_HNSW, shards=2, build_mode="bulk"
        )
        report = owner.build_index(_database()).build_report
        assert report.build_mode == "bulk"

    def test_ppanns_passes_knobs(self):
        scheme = PPANNS(
            dim=8, beta=0.3, backend="bruteforce", shards=2,
            build_workers=2, build_mode="bulk",
        ).fit(_database())
        report = scheme.server.index.build_report
        assert report.build_workers == 2
        assert report.build_mode == "bulk"


class TestPersistedBuildMetadata:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_roundtrip(self, shards, tmp_path):
        owner = DataOwner(
            8, beta=0.3, backend="bruteforce", shards=shards, build_workers=2
        )
        index = owner.build_index(_database(n=30))
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        original = index.build_report
        restored = loaded.build_report
        assert restored is not None
        assert restored.encrypt_seconds == original.encrypt_seconds
        assert restored.build_seconds == original.build_seconds
        assert restored.build_mode == original.build_mode
        assert restored.build_workers == 2
        assert restored.shards == (shards if shards > 1 else 1)
        assert [
            (t.shard_id, t.seconds, t.num_vectors) for t in restored.shard_timings
        ] == [
            (t.shard_id, t.seconds, t.num_vectors) for t in original.shard_timings
        ]

    def test_files_without_metadata_load_report_free(self, tmp_path):
        index = DataOwner(8, beta=0.3, backend="bruteforce").build_index(_database())
        index.build_report = None
        path = tmp_path / "index.npz"
        save_index(path, index)
        assert load_index(path).build_report is None

    def test_none_workers_roundtrip(self, tmp_path):
        index = DataOwner(8, beta=0.3, backend="bruteforce", shards=2).build_index(
            _database()
        )
        assert index.build_report.build_workers is None
        path = tmp_path / "index.npz"
        save_index(path, index)
        assert load_index(path).build_report.build_workers is None


class TestBuildShardedIndex:
    def test_report_attached_and_encrypt_half_zero(self):
        data = _database(n=40)
        owner = DataOwner(8, beta=0.3, backend="bruteforce")
        full = owner.build_index(data)
        index = build_sharded_index(
            full.sap_vectors, full.dce_database, backend="bruteforce",
            num_shards=2, build_workers=2,
        )
        report = index.build_report
        assert report.encrypt_seconds == 0.0
        assert report.shards == 2
        assert len(report.shard_timings) == 2


class TestSweepBuild:
    def test_sweep_points_and_speedup(self):
        curve = sweep_build(
            _database(n=40),
            beta=0.3,
            worker_grid=(1, 2),
            backend="bruteforce",
            shards=2,
        )
        assert len(curve.points) == 2
        assert curve.points[0].parameter == 1.0
        assert all(point.encrypt_seconds > 0 for point in curve.points)
        assert all(len(point.shard_seconds) == 2 for point in curve.points)
        assert curve.speedup() > 0


class TestSetupCost:
    def test_from_build_report(self):
        report = BuildReport(
            backend="hnsw", num_vectors=10, dim=4,
            encrypt_seconds=2.0, build_seconds=6.0,
        )
        setup = SetupCost.from_build_report(report)
        assert setup.encrypt_seconds == 2.0
        assert setup.build_seconds == 6.0
        assert setup.total_seconds == 8.0
        assert setup.amortized_seconds(4) == 2.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            SetupCost(encrypt_seconds=-1.0)
        with pytest.raises(ParameterError):
            SetupCost().amortized_seconds(0)
