"""Unit tests for the sharded scatter-gather serving layer."""

import numpy as np
import pytest

from repro.core.backends import available_backends
from repro.core.errors import CiphertextFormatError, ParameterError
from repro.core.maintenance import delete_vector, insert_vector
from repro.core.persistence import load_index, save_index
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.core.sharding import (
    SHARD_STRATEGIES,
    Shard,
    ShardedEncryptedIndex,
    assign_shards,
    shard_of,
)
from tests.conftest import FAST_HNSW


def _deployed(backend="bruteforce", shards=3, strategy="round_robin",
              n=120, dim=10, seed=0):
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim)) * 2.0
    owner = DataOwner(
        dim,
        beta=0.3,
        hnsw_params=FAST_HNSW,
        backend=backend,
        shards=shards,
        shard_strategy=strategy,
        rng=rng,
    )
    index = owner.build_index(vectors)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(seed + 1))
    return owner, index, user, vectors


class TestAssignment:
    def test_round_robin_balances_perfectly(self):
        assignment = assign_shards(12, 3, "round_robin")
        assert np.array_equal(np.bincount(assignment), [4, 4, 4])
        assert assignment[0] == 0 and assignment[4] == 1 and assignment[11] == 2

    def test_hash_is_deterministic_and_covers_all_shards(self):
        a = assign_shards(500, 4, "hash")
        b = assign_shards(500, 4, "hash")
        assert np.array_equal(a, b)
        assert set(a.tolist()) == {0, 1, 2, 3}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ParameterError):
            shard_of("alphabetical", 0, 2)
        with pytest.raises(ParameterError):
            assign_shards(10, 2, "alphabetical")

    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    def test_vectorized_assignment_matches_scalar(self, strategy):
        """assign_shards (vectorized) must agree with shard_of (scalar),
        which routes individual inserts."""
        assignment = assign_shards(300, 5, strategy)
        expected = [shard_of(strategy, i, 5) for i in range(300)]
        assert assignment.tolist() == expected

    def test_strategy_registry_matches_owner_validation(self):
        for strategy in SHARD_STRATEGIES:
            DataOwner(4, beta=0.3, shards=2, shard_strategy=strategy)
        with pytest.raises(ParameterError):
            DataOwner(4, beta=0.3, shards=2, shard_strategy="nope")


class TestConstruction:
    def test_owner_builds_sharded_index(self):
        _, index, _, vectors = _deployed(shards=4)
        assert isinstance(index, ShardedEncryptedIndex)
        assert index.num_shards == 4
        assert index.strategy == "round_robin"
        assert sum(len(shard) for shard in index.shards) == vectors.shape[0]

    def test_shards_one_builds_monolithic(self):
        owner, index, _, _ = _deployed(shards=1)
        assert not isinstance(index, ShardedEncryptedIndex)

    def test_build_index_override_beats_owner_config(self):
        owner, _, _, vectors = _deployed(shards=2)
        index = owner.build_index(vectors, shards=5, shard_strategy="hash")
        assert index.num_shards == 5
        assert index.strategy == "hash"

    def test_assignment_recorded(self):
        _, index, _, _ = _deployed(shards=3, n=30)
        assignment = index.shard_assignment()
        assert np.array_equal(assignment, np.arange(30) % 3)

    def test_empty_shards_allowed(self):
        # More shards than vectors: the tail shards stay empty.
        _, index, user, vectors = _deployed(shards=7, n=5)
        assert index.num_shards == 7
        result = CloudServer(index).answer(user.encrypt_query(vectors[0], 3))
        assert result.ids.shape[0] == 3

    def test_mixed_backend_kinds_rejected(self):
        rng = np.random.default_rng(3)
        vectors = rng.standard_normal((20, 6))
        owner = DataOwner(6, beta=0.3, backend="bruteforce", rng=rng)
        sharded = owner.build_index(vectors, shards=2)
        shard1_ids = sharded.shards[1].global_ids
        other = DataOwner(6, beta=0.3, backend="ivf", rng=rng).build_index(
            vectors[shard1_ids]
        )
        shards = [
            sharded.shards[0],
            Shard(1, other.backend, shard1_ids),
        ]
        with pytest.raises(CiphertextFormatError):
            ShardedEncryptedIndex(
                sharded.sap_vectors, shards, sharded.dce_database
            )

    def test_unowned_ids_rejected(self):
        _, index, _, _ = _deployed(shards=2, n=20)
        shards = [index.shards[0]]  # shard 1's ids now unowned
        with pytest.raises(CiphertextFormatError):
            ShardedEncryptedIndex(index.sap_vectors, shards, index.dce_database)


class TestScatterGather:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    def test_bruteforce_matches_monolithic_bit_for_bit(self, shards):
        rng = np.random.default_rng(11)
        vectors = rng.standard_normal((150, 8)) * 2.0
        queries = rng.standard_normal((12, 8)) * 2.0
        flat_owner = DataOwner(8, beta=0.3, backend="bruteforce",
                               rng=np.random.default_rng(5))
        sharded_owner = DataOwner(8, beta=0.3, backend="bruteforce",
                                  shards=shards, rng=np.random.default_rng(5))
        flat = CloudServer(flat_owner.build_index(vectors))
        shard_server = CloudServer(sharded_owner.build_index(vectors))
        user = QueryUser(flat_owner.authorize_user(),
                         rng=np.random.default_rng(6))
        batch = user.encrypt_queries(queries, 10, ratio_k=4)
        flat_ids = flat.answer(batch).ids_matrix()
        sharded_ids = shard_server.answer(batch).ids_matrix()
        assert np.array_equal(flat_ids, sharded_ids)

    def test_filter_only_mode(self):
        _, index, user, vectors = _deployed(shards=3)
        batch = user.encrypt_queries(vectors[:4], 5, ratio_k=2,
                                     mode="filter_only")
        results = CloudServer(index).answer(batch)
        assert results.refine_comparisons == 0
        for result in results:
            assert result.ids.shape[0] == 5
            assert result.shard_timings is not None

    def test_shard_timings_cover_every_shard(self):
        _, index, user, vectors = _deployed(shards=3)
        result = CloudServer(index).answer(user.encrypt_query(vectors[1], 5))
        assert result.shard_timings is not None
        assert sorted(t.shard_id for t in result.shard_timings) == [0, 1, 2]
        assert all(t.seconds >= 0.0 for t in result.shard_timings)
        assert result.gather_bytes() == 12 * sum(
            t.candidates for t in result.shard_timings
        )

    def test_batch_aggregates_shard_instrumentation(self):
        _, index, user, vectors = _deployed(shards=2)
        batch = user.encrypt_queries(vectors[:5], 4)
        results = CloudServer(index).answer(batch)
        per_shard = results.shard_seconds()
        assert set(per_shard) == {0, 1}
        assert results.gather_bytes() == sum(r.gather_bytes() for r in results)

    def test_monolithic_results_carry_no_shard_timings(self):
        _, index, user, vectors = _deployed(shards=1)
        result = CloudServer(index).answer(user.encrypt_query(vectors[0], 3))
        assert result.shard_timings is None
        assert result.gather_bytes() == 0

    @pytest.mark.parametrize("backend", available_backends())
    def test_all_backends_answer_sharded(self, backend):
        _, index, user, vectors = _deployed(backend=backend, shards=3)
        results = CloudServer(index).answer(
            user.encrypt_queries(vectors[:3] + 0.01, 5, ef_search=60)
        )
        for i, result in enumerate(results):
            assert i in result.ids.tolist()

    def test_hash_strategy_answers_correctly(self):
        _, index, user, vectors = _deployed(shards=4, strategy="hash")
        result = CloudServer(index).answer(
            user.encrypt_query(vectors[7] + 0.01, 5, ef_search=60)
        )
        assert 7 in result.ids.tolist()


class TestMaintenance:
    def test_insert_routes_to_strategy_shard(self):
        owner, index, user, _ = _deployed(shards=3, n=30)
        new_id = insert_vector(owner, index, np.zeros(10))
        assert new_id == 30
        expected = shard_of("round_robin", 30, 3)
        assert index.shard_assignment()[30] == expected
        assert 30 in index.shards[expected].global_ids

    def test_inserted_vector_is_searchable(self):
        owner, index, user, _ = _deployed(shards=3)
        probe = np.full(10, 9.0)
        new_id = insert_vector(owner, index, probe)
        result = CloudServer(index).answer(user.encrypt_query(probe, 3))
        assert new_id in result.ids.tolist()

    def test_delete_routes_to_owning_shard(self):
        owner, index, user, vectors = _deployed(shards=3)
        delete_vector(index, 4)
        assert not index.is_live(4)
        result = CloudServer(index).answer(
            user.encrypt_query(vectors[4], 5, ef_search=80)
        )
        assert 4 not in result.ids.tolist()

    def test_insert_into_empty_shard_builds_backend(self):
        owner, index, user, _ = _deployed(shards=7, n=5)
        # Global id 5 -> shard 5, which is empty before the insert.
        assert index.shards[5].backend is None
        probe = np.full(10, -7.0)
        new_id = insert_vector(owner, index, probe)
        assert new_id == 5
        assert index.shards[5].backend is not None
        result = CloudServer(index).answer(user.encrypt_query(probe, 2))
        assert new_id in result.ids.tolist()

    def test_lazy_build_inherits_sibling_params_after_load(self, tmp_path):
        """A v3 load drops construction params; the lazily built shard
        must copy a sibling's substrate params, not library defaults."""
        owner, index, user, _ = _deployed(backend="hnsw", shards=7, n=5)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.shards[5].backend is None
        insert_vector(owner, loaded, np.full(10, -7.0))
        built = loaded.shards[5].backend.substrate.params
        sibling = loaded.shards[0].backend.substrate.params
        assert built.m == sibling.m == FAST_HNSW.m
        assert built.ef_construction == sibling.ef_construction


class TestPersistenceV3:
    @pytest.mark.parametrize("backend", available_backends())
    def test_v3_roundtrip_all_backends(self, backend, tmp_path):
        _, index, user, vectors = _deployed(backend=backend, shards=3)
        path = tmp_path / "index.npz"
        save_index(path, index)
        with np.load(path) as data:
            assert int(data["format_version"][0]) == 3
        loaded = load_index(path)
        assert isinstance(loaded, ShardedEncryptedIndex)
        assert loaded.num_shards == index.num_shards
        assert loaded.strategy == index.strategy
        assert np.array_equal(loaded.shard_assignment(),
                              index.shard_assignment())
        batch = user.encrypt_queries(vectors[:4] + 0.01, 5, ef_search=60)
        original = CloudServer(index).answer(batch)
        restored = CloudServer(loaded).answer(batch)
        assert np.array_equal(original.ids_matrix(), restored.ids_matrix())

    def test_v3_preserves_tombstones(self, tmp_path):
        _, index, user, vectors = _deployed(shards=2)
        delete_vector(index, 7)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert not loaded.is_live(7)
        assert len(loaded) == len(index)

    def test_v3_roundtrips_empty_shards(self, tmp_path):
        _, index, user, vectors = _deployed(shards=7, n=5)
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.num_shards == 7
        assert loaded.shards[6].backend is None
        result = CloudServer(loaded).answer(user.encrypt_query(vectors[2], 3))
        assert 2 in result.ids.tolist()

    def test_monolithic_still_saves_v2(self, tmp_path):
        _, index, _, _ = _deployed(shards=1)
        path = tmp_path / "index.npz"
        save_index(path, index)
        with np.load(path) as data:
            assert int(data["format_version"][0]) == 2

    def test_corrupted_assignment_rejected(self, tmp_path):
        _, index, _, _ = _deployed(shards=2)
        path = tmp_path / "index.npz"
        save_index(path, index)
        data = dict(np.load(path))
        data["shard_assignment"] = data["shard_assignment"][::-1].copy()
        np.savez_compressed(path, **data)
        with pytest.raises(CiphertextFormatError):
            load_index(path)

    def test_hash_strategy_roundtrip(self, tmp_path):
        _, index, user, vectors = _deployed(shards=4, strategy="hash")
        path = tmp_path / "index.npz"
        save_index(path, index)
        loaded = load_index(path)
        assert loaded.strategy == "hash"
        # Post-load inserts must keep routing with the recorded strategy.
        assert np.array_equal(loaded.shard_assignment(),
                              index.shard_assignment())


class TestSizeReport:
    def test_edges_summed_across_shards(self):
        _, sharded, _, vectors = _deployed(backend="hnsw", shards=3)
        report = sharded.size_report()
        assert report.num_vectors == vectors.shape[0]
        assert report.graph_edges == sum(
            shard.backend.edge_count() for shard in sharded.shards
        )
        assert report.sap_floats == vectors.size
