"""Shared worker-pool tests: ordering, error isolation, nesting."""

import threading
import time

import pytest

from repro.core.errors import ParameterError
from repro.core.executor import (
    EXECUTOR_MODES,
    Settled,
    in_worker_thread,
    map_ordered,
    map_settled,
    pool_width,
    resolve_executor,
    shared_pool,
)


class TestMapOrdered:
    def test_empty(self):
        assert map_ordered(lambda x: x, []) == []

    def test_single_item_runs_inline(self):
        thread_names = []

        def record(x):
            thread_names.append(threading.current_thread().name)
            return x * 2

        assert map_ordered(record, [21]) == [42]
        assert thread_names == [threading.current_thread().name]

    def test_results_in_input_order(self):
        # Later items finish first; gather order must still be input order.
        def staggered(i):
            time.sleep(0.02 * (4 - i))
            return i

        assert map_ordered(staggered, range(5)) == [0, 1, 2, 3, 4]

    def test_error_isolation_siblings_complete(self):
        completed = []

        def task(i):
            if i == 1:
                raise ValueError(f"boom {i}")
            time.sleep(0.01)
            completed.append(i)
            return i

        with pytest.raises(ValueError, match="boom 1"):
            map_ordered(task, range(6))
        # Every non-failing task ran to completion despite the failure.
        assert sorted(completed) == [0, 2, 3, 4, 5]

    def test_first_error_by_input_position_wins(self):
        # The later-positioned error completes first; the earlier one is
        # still the one reported.
        def task(i):
            if i == 4:
                raise KeyError("late but fast")
            if i == 2:
                time.sleep(0.05)
                raise ValueError("early but slow")
            return i

        with pytest.raises(ValueError, match="early but slow"):
            map_ordered(task, range(6))

    def test_base_exceptions_propagate_immediately(self):
        # KeyboardInterrupt / SystemExit are not "task failures" to
        # isolate: they must win even over an earlier-positioned error.
        def task(i):
            if i == 0:
                raise ValueError("ordinary failure")
            if i == 1:
                raise KeyboardInterrupt
            return i

        with pytest.raises(KeyboardInterrupt):
            map_ordered(task, range(4))

    def test_nested_fanout_runs_inner_inline(self):
        # A fan-out from inside a pool worker must not resubmit to the
        # (bounded) pool — that is the classic nested-pool deadlock.
        inner_flags = []

        def inner(i):
            inner_flags.append(in_worker_thread())
            return i

        def outer(i):
            return sum(map_ordered(inner, range(3)))

        results = map_ordered(outer, range(pool_width() + 2))
        assert results == [3] * (pool_width() + 2)
        assert all(inner_flags)

    def test_max_workers_one_runs_inline(self):
        thread_names = []

        def record(x):
            thread_names.append(threading.current_thread().name)
            return x + 1

        assert map_ordered(record, range(4), max_workers=1) == [1, 2, 3, 4]
        assert set(thread_names) == {threading.current_thread().name}

    def test_max_workers_preserves_order_and_results(self):
        def staggered(i):
            time.sleep(0.01 * (5 - i))
            return i

        assert map_ordered(staggered, range(6), max_workers=2) == list(range(6))

    def test_max_workers_error_position_spans_waves(self):
        # The wave split must not change which failure is reported: the
        # first failing *input position*, even across wave boundaries.
        def task(i):
            if i == 5:
                raise KeyError("later wave")
            if i == 1:
                raise ValueError("first wave")
            return i

        with pytest.raises(ValueError, match="first wave"):
            map_ordered(task, range(6), max_workers=2)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            map_ordered(lambda x: x, range(3), max_workers=0)

    def test_saturating_nested_fanout_completes(self):
        # More outer tasks than workers, each nesting another fan-out;
        # completes quickly when the inner level runs inline.
        def outer(i):
            return map_ordered(lambda j: j + i, range(4))

        start = time.perf_counter()
        results = map_ordered(outer, range(4 * pool_width()))
        assert time.perf_counter() - start < 30.0
        assert results[1] == [1, 2, 3, 4]


class TestMapSettled:
    def test_all_success(self):
        settled = map_settled(lambda x: x * 2, range(4))
        assert [s.value for s in settled] == [0, 2, 4, 6]
        assert all(s.ok for s in settled)

    def test_failures_settle_in_position(self):
        def task(i):
            if i % 2:
                raise ValueError(f"boom {i}")
            return i

        settled = map_settled(task, range(5))
        assert [s.ok for s in settled] == [True, False, True, False, True]
        assert [s.value for s in settled if s.ok] == [0, 2, 4]
        assert str(settled[1].error) == "boom 1"
        assert str(settled[3].error) == "boom 3"

    def test_unwrap_reraises(self):
        settled = Settled(error=KeyError("nope"))
        with pytest.raises(KeyError):
            settled.unwrap()
        assert Settled(value=7).unwrap() == 7

    def test_inline_path_isolates_too(self):
        """Single-item / capped / nested calls keep settled semantics."""
        def task(i):
            if i == 0:
                raise ValueError("first fails")
            return i

        settled = map_settled(task, range(3), max_workers=1)
        assert [s.ok for s in settled] == [False, True, True]
        assert [s.value for s in settled[1:]] == [1, 2]

    def test_nested_fanout_settles_inline(self):
        def inner(i):
            if i == 1:
                raise RuntimeError("inner failure")
            return in_worker_thread()

        def outer(_):
            return map_settled(inner, range(3))

        outers = map_settled(outer, range(3))
        for outcome in outers:
            assert outcome.ok
            inner_settled = outcome.value
            assert inner_settled[0].value is True  # ran inline in a worker
            assert not inner_settled[1].ok

    def test_base_exceptions_propagate(self):
        def task(i):
            if i == 1:
                raise KeyboardInterrupt
            return i

        with pytest.raises(KeyboardInterrupt):
            map_settled(task, range(4))


class TestPool:
    def test_shared_pool_is_singleton(self):
        assert shared_pool() is shared_pool()

    def test_main_thread_is_not_worker(self):
        assert not in_worker_thread()

    def test_pool_width_positive(self):
        assert pool_width() >= 1


class TestPoolWidthOverride:
    def test_env_override_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert pool_width() == 3
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert pool_width() == 1

    def test_env_override_capped_at_pool_maximum(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert pool_width() == 32

    @pytest.mark.parametrize("bad", ["0", "-2", "four", "2.5"])
    def test_invalid_override_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ParameterError, match="REPRO_WORKERS"):
            pool_width()

    def test_blank_override_falls_back_to_host_width(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert pool_width() >= 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert pool_width() >= 1


class TestExecutorModes:
    def test_modes_registry(self):
        assert EXECUTOR_MODES == ("threads", "processes")

    def test_resolve_default_and_passthrough(self):
        assert resolve_executor(None) == "threads"
        for mode in EXECUTOR_MODES:
            assert resolve_executor(mode) == mode

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown executor"):
            resolve_executor("fibers")
