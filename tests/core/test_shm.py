"""Shared-memory arena tests: layout, refs, lifecycle, leak hygiene.

These run entirely in-process (attach works within the owning process
too); the cross-process path is exercised by the data-plane tests in
``tests/core/test_executor_processes.py``.
"""

import pickle

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.shm import (
    ShmArena,
    ShmArrayRef,
    active_arenas,
    shared_memory_available,
)

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def _sample_arrays():
    rng = np.random.default_rng(9)
    return [
        rng.standard_normal((7, 5)),
        np.arange(13, dtype=np.int64),
        rng.standard_normal((3, 4, 6)),
    ]


class TestPublishResolve:
    def test_roundtrip_owner_side(self):
        arrays = _sample_arrays()
        with ShmArena.publish(arrays) as arena:
            assert arena.owner
            assert len(arena.refs) == len(arrays)
            for array, ref in zip(arrays, arena.refs):
                view = arena.resolve(ref)
                assert np.array_equal(view, array)
                assert view.dtype == array.dtype

    def test_roundtrip_through_attach(self):
        arrays = _sample_arrays()
        with ShmArena.publish(arrays) as arena:
            attached = ShmArena.attach(arena.name)
            try:
                assert not attached.owner
                for array, ref in zip(arrays, arena.refs):
                    # Refs travel by value (pickle) to the attacher.
                    wire_ref = pickle.loads(pickle.dumps(ref))
                    assert np.array_equal(attached.resolve(wire_ref), array)
            finally:
                attached.close()

    def test_views_are_readonly(self):
        with ShmArena.publish([np.zeros(4)]) as arena:
            view = arena.resolve(arena.refs[0])
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_offsets_are_cache_line_aligned(self):
        with ShmArena.publish(_sample_arrays()) as arena:
            for ref in arena.refs:
                assert ref.offset % 64 == 0

    def test_refs_pickle_small(self):
        # The whole point: a multi-megabyte array ships as a descriptor
        # of a few dozen bytes, not as its contents.
        big = np.zeros((512, 512))
        with ShmArena.publish([big]) as arena:
            ref = arena.refs[0]
            assert ref.nbytes == big.nbytes
            assert len(pickle.dumps(ref)) < 200

    def test_non_contiguous_input_is_packed_correctly(self):
        base = np.arange(40, dtype=np.float64).reshape(8, 5)
        strided = base[::2]  # non-contiguous view
        with ShmArena.publish([strided]) as arena:
            assert np.array_equal(arena.resolve(arena.refs[0]), strided)


class TestRefValidation:
    def test_resolve_rejects_foreign_segment(self):
        with ShmArena.publish([np.zeros(3)]) as arena:
            foreign = ShmArrayRef(
                segment="repro-arena-nope", dtype="float64", shape=(3,), offset=0
            )
            with pytest.raises(ParameterError, match="names segment"):
                arena.resolve(foreign)

    def test_resolve_after_close_raises(self):
        arena = ShmArena.publish([np.zeros(3)])
        ref = arena.refs[0]
        arena.close()
        try:
            with pytest.raises(ParameterError, match="closed"):
                arena.resolve(ref)
        finally:
            arena.unlink()


class TestLifecycle:
    def test_double_close_and_double_unlink_are_noops(self):
        arena = ShmArena.publish([np.zeros(5)])
        arena.close()
        arena.close()
        arena.unlink()
        arena.unlink()

    def test_registry_tracks_owned_arenas(self):
        arena = ShmArena.publish([np.zeros(2)])
        try:
            assert arena.name in active_arenas()
        finally:
            arena.close()
            arena.unlink()
        assert arena.name not in active_arenas()

    def test_context_manager_unlinks(self):
        with ShmArena.publish([np.zeros(2)]) as arena:
            name = arena.name
            assert name in active_arenas()
        assert name not in active_arenas()

    def test_attacher_close_does_not_unlink(self):
        with ShmArena.publish([np.ones(4)]) as arena:
            attached = ShmArena.attach(arena.name)
            attached.close()
            attached.unlink()  # non-owner: explicit no-op
            assert attached.closed
            # The segment must still be there for the owner.
            again = ShmArena.attach(arena.name)
            try:
                assert np.array_equal(again.resolve(arena.refs[0]), np.ones(4))
            finally:
                again.close()
