"""Refine-engine tests: registry, contract, parity, instrumentation."""

import numpy as np
import pytest

from repro.core.dce import DCEScheme, distance_comp, distance_comp_many
from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.refine import (
    DEFAULT_REFINE_ENGINE,
    REFINE_ENGINES,
    HeapRefineEngine,
    RefineEngine,
    VectorizedRefineEngine,
    available_refine_engines,
    get_refine_engine,
)


@pytest.fixture(scope="module")
def scheme():
    return DCEScheme(12, rng=np.random.default_rng(11))


@pytest.fixture(scope="module")
def workload(scheme):
    rng = np.random.default_rng(12)
    database = rng.standard_normal((50, 12)) * 3.0
    query = rng.standard_normal(12) * 3.0
    encrypted = scheme.encrypt_database(database)
    trapdoor = scheme.trapdoor(query)
    dists = ((database - query) ** 2).sum(axis=1)
    return database, encrypted, trapdoor, dists


class TestRegistry:
    def test_available_engines(self):
        assert available_refine_engines() == ("heap", "vectorized")

    def test_default_is_vectorized(self):
        assert DEFAULT_REFINE_ENGINE == "vectorized"
        assert get_refine_engine(None).name == "vectorized"

    def test_lookup_by_name(self):
        assert get_refine_engine("heap") is REFINE_ENGINES["heap"]

    def test_instance_passthrough(self):
        engine = HeapRefineEngine()
        assert get_refine_engine(engine) is engine

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown refine engine"):
            get_refine_engine("quantum")

    def test_non_engine_rejected(self):
        with pytest.raises(ParameterError):
            get_refine_engine(42)

    def test_engines_satisfy_protocol(self):
        for engine in REFINE_ENGINES.values():
            assert isinstance(engine, RefineEngine)


class TestEngineContract:
    @pytest.mark.parametrize("name", ["heap", "vectorized"])
    def test_selects_true_nearest(self, workload, name):
        _, encrypted, trapdoor, dists = workload
        candidates = np.arange(50, dtype=np.int64)
        outcome = REFINE_ENGINES[name].refine(encrypted, trapdoor, candidates, 5)
        assert set(outcome.ids.tolist()) == set(np.argsort(dists)[:5].tolist())
        assert outcome.ids.dtype == np.int64

    @pytest.mark.parametrize("name", ["heap", "vectorized"])
    def test_k_at_least_candidate_count(self, workload, name):
        _, encrypted, trapdoor, _ = workload
        candidates = np.array([7, 3, 19], dtype=np.int64)
        outcome = REFINE_ENGINES[name].refine(encrypted, trapdoor, candidates, 10)
        assert set(outcome.ids.tolist()) == {3, 7, 19}

    @pytest.mark.parametrize("name", ["heap", "vectorized"])
    def test_empty_candidates(self, workload, name):
        _, encrypted, trapdoor, _ = workload
        empty = np.empty(0, dtype=np.int64)
        outcome = REFINE_ENGINES[name].refine(encrypted, trapdoor, empty, 4)
        assert outcome.ids.shape == (0,)
        assert outcome.comparisons == 0

    @pytest.mark.parametrize("name", ["heap", "vectorized"])
    def test_consumes_int64_array_directly(self, workload, name):
        # The engines take the filter phase's np.int64 ids without
        # per-element boxing; a plain list still works via coercion.
        _, encrypted, trapdoor, dists = workload
        as_array = np.argsort(dists)[:20].astype(np.int64)
        as_list = [int(i) for i in as_array]
        engine = REFINE_ENGINES[name]
        from_array = engine.refine(encrypted, trapdoor, as_array, 5)
        from_list = engine.refine(encrypted, trapdoor, np.asarray(as_list), 5)
        assert np.array_equal(from_array.ids, from_list.ids)

    @pytest.mark.parametrize("name", ["heap", "vectorized"])
    def test_rejects_2d_candidates(self, workload, name):
        _, encrypted, trapdoor, _ = workload
        with pytest.raises(ParameterError):
            REFINE_ENGINES[name].refine(
                encrypted, trapdoor, np.zeros((2, 2), dtype=np.int64), 3
            )

    def test_engines_bit_identical_on_full_scan(self, workload):
        _, encrypted, trapdoor, _ = workload
        candidates = np.arange(50, dtype=np.int64)
        heap = REFINE_ENGINES["heap"].refine(encrypted, trapdoor, candidates, 8)
        vec = REFINE_ENGINES["vectorized"].refine(
            encrypted, trapdoor, candidates, 8
        )
        assert np.array_equal(heap.ids, vec.ids)
        assert heap.comparisons == vec.comparisons

    def test_kernel_seconds_semantics(self, workload):
        _, encrypted, trapdoor, _ = workload
        candidates = np.arange(50, dtype=np.int64)
        heap = REFINE_ENGINES["heap"].refine(encrypted, trapdoor, candidates, 8)
        vec = REFINE_ENGINES["vectorized"].refine(
            encrypted, trapdoor, candidates, 8
        )
        assert heap.kernel_seconds == 0.0
        assert vec.kernel_seconds > 0.0

    def test_vectorized_rejects_foreign_trapdoor(self, workload):
        _, encrypted, _, _ = workload
        other = DCEScheme(12, rng=np.random.default_rng(99))
        foreign = other.trapdoor(np.zeros(12))
        with pytest.raises(KeyMismatchError):
            REFINE_ENGINES["vectorized"].refine(
                encrypted, foreign, np.arange(10, dtype=np.int64), 3
            )

    def test_single_candidate_foreign_trapdoor_parity(self, workload):
        # One candidate means zero comparisons: the heap engine never
        # consults the oracle, so it cannot notice a foreign trapdoor —
        # and the vectorized engine must behave identically.
        _, encrypted, _, _ = workload
        other = DCEScheme(12, rng=np.random.default_rng(98))
        foreign = other.trapdoor(np.zeros(12))
        lone = np.array([9], dtype=np.int64)
        heap = REFINE_ENGINES["heap"].refine(encrypted, foreign, lone, 3)
        vec = REFINE_ENGINES["vectorized"].refine(encrypted, foreign, lone, 3)
        assert np.array_equal(heap.ids, vec.ids)
        assert heap.comparisons == vec.comparisons == 0


class TestDistanceCompMany:
    def test_matches_scalar_oracle(self, scheme, workload):
        _, encrypted, trapdoor, _ = workload
        o_ids = np.array([0, 5, 9], dtype=np.int64)
        p_ids = np.array([1, 2, 3, 4], dtype=np.int64)
        matrix = distance_comp_many(
            encrypted.subset(o_ids), encrypted.subset(p_ids), trapdoor
        )
        assert matrix.shape == (3, 4)
        for row, o in enumerate(o_ids):
            for col, p in enumerate(p_ids):
                scalar = distance_comp(encrypted[o], encrypted[p], trapdoor)
                assert matrix[row, col] == pytest.approx(scalar, rel=1e-9)

    def test_sign_semantics(self, workload):
        _, encrypted, trapdoor, dists = workload
        order = np.argsort(dists).astype(np.int64)
        near, far = order[:4], order[-4:]
        matrix = distance_comp_many(
            encrypted.subset(far), encrypted.subset(near), trapdoor
        )
        # Every far o-role vector is farther than every near p-role one.
        assert (matrix >= 0).all()

    def test_key_mismatch_parity_with_scalar(self, workload):
        # distance_comp raises KeyMismatchError on foreign trapdoors;
        # the batched kernel must behave identically.
        _, encrypted, _, _ = workload
        other = DCEScheme(12, rng=np.random.default_rng(123))
        foreign = other.trapdoor(np.zeros(12))
        with pytest.raises(KeyMismatchError):
            distance_comp(encrypted[0], encrypted[1], foreign)
        with pytest.raises(KeyMismatchError):
            distance_comp_many(
                encrypted.subset(np.array([0])),
                encrypted.subset(np.array([1])),
                foreign,
            )

    def test_mixed_database_keys_rejected(self, workload):
        _, encrypted, trapdoor, _ = workload
        other = DCEScheme(12, rng=np.random.default_rng(124))
        foreign_db = other.encrypt_database(np.zeros((3, 12)))
        with pytest.raises(KeyMismatchError):
            distance_comp_many(
                encrypted.subset(np.array([0])), foreign_db, trapdoor
            )
