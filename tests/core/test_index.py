"""EncryptedIndex tests: alignment, tombstones, storage accounting."""

import numpy as np
import pytest

from repro.core.errors import CiphertextFormatError
from repro.core.index import EncryptedIndex
from repro.core.roles import DataOwner
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def built():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((80, 12)) * 2.0
    owner = DataOwner(12, beta=0.2, hnsw_params=FAST_HNSW, rng=rng)
    return owner, owner.build_index(vectors), vectors


class TestConstruction:
    def test_component_alignment(self, built):
        _, index, vectors = built
        assert len(index) == vectors.shape[0]
        assert index.sap_vectors.shape == vectors.shape
        assert len(index.dce_database) == vectors.shape[0]
        assert index.backend.substrate.vectors.shape[0] == vectors.shape[0]

    def test_graph_is_over_sap_not_plaintext(self, built):
        _, index, vectors = built
        # Graph stores the DCPE ciphertexts, which are scaled by s=1024.
        assert np.allclose(index.backend.substrate.vectors, index.sap_vectors)
        assert not np.allclose(index.backend.substrate.vectors, vectors)

    def test_misaligned_components_rejected(self, built):
        _, index, _ = built
        with pytest.raises(CiphertextFormatError):
            EncryptedIndex(
                index.sap_vectors[:-1], index.backend.substrate, index.dce_database
            )

    def test_non_2d_sap_rejected(self, built):
        _, index, _ = built
        with pytest.raises(CiphertextFormatError):
            EncryptedIndex(
                index.sap_vectors[0], index.backend.substrate, index.dce_database
            )


class TestLiveness:
    def test_is_live(self, built):
        _, index, _ = built
        assert index.is_live(0)
        assert index.is_live(79)
        assert not index.is_live(80)
        assert not index.is_live(-1)

    def test_tombstone(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((30, 8))
        owner = DataOwner(8, beta=0.2, hnsw_params=FAST_HNSW, rng=rng)
        index = owner.build_index(vectors)
        index._mark_deleted(5)
        assert not index.is_live(5)
        assert len(index) == 29
        assert 5 in index.tombstones


class TestSizeReport:
    def test_dce_overhead_matches_paper(self, built):
        # Section V-C: C_DCE is (8 + 64/d) times the plaintext size.
        _, index, vectors = built
        report = index.size_report()
        d = vectors.shape[1]
        assert np.isclose(report.dce_overhead_ratio, 8 + 64 / d)

    def test_sap_same_size_as_plaintext(self, built):
        _, index, vectors = built
        report = index.size_report()
        assert report.sap_floats == vectors.size

    def test_totals(self, built):
        _, index, _ = built
        report = index.size_report()
        assert report.total_floats == report.sap_floats + report.dce_floats
        assert report.graph_edges > 0
