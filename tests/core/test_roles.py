"""System-model tests: owner / user / server interplay (Figure 1)."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.roles import CloudServer, DataOwner, QueryUser
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def actors():
    rng = np.random.default_rng(0)
    vectors = rng.standard_normal((120, 10)) * 3.0
    owner = DataOwner(10, beta=0.2, hnsw_params=FAST_HNSW, rng=rng)
    index = owner.build_index(vectors)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(1))
    return owner, user, server, vectors


class TestDataOwner:
    def test_build_index_alignment(self, actors):
        _, _, server, vectors = actors
        assert len(server.index) == vectors.shape[0]

    def test_rejects_bad_shapes(self):
        owner = DataOwner(10, beta=0.2, rng=np.random.default_rng(0))
        with pytest.raises(ParameterError):
            owner.build_index(np.zeros((5, 4)))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ParameterError):
            DataOwner(0, beta=0.2)

    def test_encrypt_vector_pair(self, actors):
        owner, _, _, vectors = actors
        sap, dce = owner.encrypt_vector(vectors[0])
        assert sap.shape == (10,)
        assert dce.components.shape == (4, 2 * 10 + 16)


class TestQueryUser:
    def test_authorized_user_queries_succeed(self, actors):
        _, user, server, vectors = actors
        query = vectors[3] + 0.01
        encrypted = user.encrypt_query(query, 5)
        report = server.answer(encrypted, ef_search=80)
        assert 3 in report.ids

    def test_unauthorized_user_rejected(self, actors):
        _, _, server, vectors = actors
        rogue_owner = DataOwner(10, beta=0.2, rng=np.random.default_rng(99))
        rogue = QueryUser(rogue_owner.authorize_user())
        encrypted = rogue.encrypt_query(vectors[0], 5)
        from repro.core.errors import KeyMismatchError

        with pytest.raises(KeyMismatchError):
            server.answer(encrypted)

    def test_key_bundle_contents(self, actors):
        owner, _, _, _ = actors
        bundle = owner.authorize_user()
        assert bundle.dim == 10
        assert bundle.dce_key is owner.dce_scheme.key
        assert bundle.dcpe_key is owner.dcpe_scheme.key


class TestCloudServer:
    def test_default_ratio_k(self, actors):
        _, user, server, vectors = actors
        encrypted = user.encrypt_query(vectors[0], 5)
        report = server.answer(encrypted)
        assert report.k_prime == server.default_ratio_k * 5

    def test_explicit_ratio_k(self, actors):
        _, user, server, vectors = actors
        encrypted = user.encrypt_query(vectors[0], 5)
        report = server.answer(encrypted, ratio_k=4)
        assert report.k_prime == 20

    def test_invalid_ratio_k(self, actors):
        _, user, server, vectors = actors
        encrypted = user.encrypt_query(vectors[0], 5)
        with pytest.raises(ParameterError):
            server.answer(encrypted, ratio_k=0)

    def test_invalid_default_ratio(self, actors):
        _, _, server, _ = actors
        with pytest.raises(ParameterError):
            CloudServer(server.index, default_ratio_k=0)

    def test_filter_only_endpoint(self, actors):
        _, user, server, vectors = actors
        encrypted = user.encrypt_query(vectors[0], 5)
        report = server.answer_filter_only(encrypted, ef_search=60)
        assert report.ids.shape[0] == 5
        assert report.refine_comparisons == 0

    def test_default_refine_engine(self, actors):
        _, user, server, vectors = actors
        assert server.refine_engine == "vectorized"
        report = server.answer(user.encrypt_query(vectors[0], 5))
        assert report.refine_engine == "vectorized"

    def test_configured_refine_engine(self, actors):
        _, user, server, vectors = actors
        heap_server = CloudServer(server.index, refine_engine="heap")
        assert heap_server.refine_engine == "heap"
        report = heap_server.answer(user.encrypt_query(vectors[0], 5))
        assert report.refine_engine == "heap"
        assert report.refine_kernel_seconds == 0.0

    def test_refine_engine_per_call_override(self, actors):
        _, user, server, vectors = actors
        batch = user.encrypt_queries(vectors[:4] + 0.01, 5)
        default = server.answer(batch)
        overridden = server.answer(batch, refine_engine="heap")
        assert default.refine_engines == ("vectorized",)
        assert overridden.refine_engines == ("heap",)
        # The engines are bit-identical, so the answers agree exactly.
        assert np.array_equal(default.ids_matrix(), overridden.ids_matrix())
        assert default.refine_comparisons == overridden.refine_comparisons

    def test_unknown_refine_engine_rejected(self, actors):
        _, _, server, _ = actors
        with pytest.raises(ParameterError):
            CloudServer(server.index, refine_engine="quantum")

    def test_refine_engine_override_rejected_for_filter_only(self, actors):
        _, user, server, vectors = actors
        batch = user.encrypt_queries(vectors[:2], 5, mode="filter_only")
        with pytest.raises(ParameterError, match="filter_only"):
            server.answer(batch, refine_engine="heap")
        # Without the override the filter-only batch answers normally.
        assert len(server.answer(batch)) == 2


class TestTrustBoundary:
    def test_server_never_sees_plaintext(self, actors):
        # The server's whole state is the EncryptedIndex; none of its
        # arrays may (numerically) contain the plaintext database.
        _, _, server, vectors = actors
        sap = server.index.sap_vectors
        assert not np.allclose(sap[: vectors.shape[0]], vectors)
        dce = server.index.dce_database.components
        assert dce.shape[2] == 2 * 10 + 16  # transformed, not raw width
