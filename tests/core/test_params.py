"""Parameter tuning tests (Section VII-A procedures)."""

import numpy as np
import pytest

from repro import PPANNS
from repro.core.errors import ParameterError
from repro.core.params import (
    grid_search_ratio_k,
    measure_filter_recall_ceiling,
    tune_beta,
)
from repro.datasets import make_clustered
from tests.conftest import FAST_HNSW


@pytest.fixture(scope="module")
def tuning_workload():
    return make_clustered(
        num_vectors=300,
        dim=10,
        num_queries=8,
        num_clusters=8,
        value_scale=2.0,
        rng=np.random.default_rng(71),
    )


class TestFilterRecallCeiling:
    def test_beta_zero_gives_high_ceiling(self, tuning_workload):
        recall = measure_filter_recall_ceiling(
            tuning_workload.database,
            tuning_workload.queries,
            beta=0.0,
            k=10,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(1),
        )
        assert recall >= 0.85

    def test_recall_decreases_with_beta(self, tuning_workload):
        recalls = [
            measure_filter_recall_ceiling(
                tuning_workload.database,
                tuning_workload.queries,
                beta=beta,
                k=10,
                hnsw_params=FAST_HNSW,
                rng=np.random.default_rng(2),
            )
            for beta in (0.0, 20.0)
        ]
        assert recalls[1] < recalls[0]


class TestTuneBeta:
    def test_bisection_hits_target_region(self, tuning_workload):
        result = tune_beta(
            tuning_workload.database,
            tuning_workload.queries,
            target_ceiling=0.5,
            k=10,
            num_steps=4,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(3),
        )
        assert result.beta > 0
        assert result.recall_ceiling >= 0.5
        assert len(result.trace) == 4

    def test_invalid_target_rejected(self, tuning_workload):
        with pytest.raises(ParameterError):
            tune_beta(
                tuning_workload.database,
                tuning_workload.queries,
                target_ceiling=0.0,
            )


class TestGridSearchRatioK:
    def test_recall_monotone_in_ratio(self, tuning_workload):
        scheme = PPANNS(
            dim=tuning_workload.dim,
            beta=1.5,
            hnsw_params=FAST_HNSW,
            rng=np.random.default_rng(4),
        ).fit(tuning_workload.database)
        result = grid_search_ratio_k(
            scheme,
            tuning_workload.database,
            tuning_workload.queries,
            k=10,
            recall_target=0.9,
            ratio_grid=(1, 4, 16),
            ef_search=160,
        )
        recalls = [r for _, r, _ in result.frontier]
        assert recalls == sorted(recalls) or recalls[-1] >= recalls[0]
        assert result.ratio_k in (1, 4, 16)

    def test_unfitted_scheme_rejected(self, tuning_workload):
        scheme = PPANNS(dim=tuning_workload.dim, beta=1.0)
        with pytest.raises(ParameterError):
            grid_search_ratio_k(
                scheme, tuning_workload.database, tuning_workload.queries
            )
