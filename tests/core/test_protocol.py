"""Request/response protocol tests: SearchRequest validation, batch
message types, result aggregation, the unified ef_search clamp, and
dimension validation at the API boundary."""

import numpy as np
import pytest

from repro.core.errors import ParameterError
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
    resolve_ef_search,
)
from repro.core.search import filter_and_refine, filter_only
from repro.hnsw.graph import SearchStats


class TestSearchRequest:
    def test_defaults(self):
        request = SearchRequest(k=5)
        assert request.ratio_k is None
        assert request.ef_search is None
        assert request.mode == "full"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"k": -3},
            {"k": 5, "ratio_k": 0},
            {"k": 5, "ef_search": 0},
            {"k": 5, "mode": "refine_only"},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ParameterError):
            SearchRequest(**kwargs)

    def test_resolve_precedence(self):
        request = SearchRequest(k=4, ratio_k=3)
        # Explicit override beats the carried value beats the default.
        assert request.resolve(8).ratio_k == 3
        assert request.resolve(8, ratio_k=5).ratio_k == 5
        assert SearchRequest(k=4).resolve(8).ratio_k == 8

    def test_resolve_rejects_bad_override(self):
        with pytest.raises(ParameterError):
            SearchRequest(k=4).resolve(8, ratio_k=0)

    def test_k_prime_requires_resolution(self):
        with pytest.raises(ParameterError):
            _ = SearchRequest(k=4).k_prime
        assert SearchRequest(k=4, ratio_k=3).k_prime == 12


class TestEfSearchClamp:
    def test_clamps_below_k_prime(self):
        assert resolve_ef_search(10, 40) == 40

    def test_passes_through_above(self):
        assert resolve_ef_search(100, 40) == 100

    def test_none_defers_to_backend(self):
        assert resolve_ef_search(None, 40) is None

    def test_both_modes_clamp_identically(self, fitted_scheme, small_dataset):
        """Regression: filter_only used to pass ef_search through unclamped
        while filter_and_refine raised it to k'; both must clamp now."""
        encrypted = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 10)
        # ef_search=10 < k'=40 would make the graph search raise
        # (ef < k') were it not clamped; both paths must succeed and
        # return k results.
        full = filter_and_refine(
            fitted_scheme.server.index, encrypted, k_prime=40, ef_search=10
        )
        filt = filter_only(
            fitted_scheme.server.index, encrypted, k_prime=40, ef_search=10
        )
        assert full.ids.shape[0] == 10
        assert filt.ids.shape[0] == 10


class TestEncryptedQueryBatch:
    def test_from_queries_and_indexing(self, fitted_scheme, small_dataset):
        user = fitted_scheme.user
        queries = [
            user.encrypt_query(small_dataset.queries[i], 5, ratio_k=4)
            for i in range(3)
        ]
        batch = EncryptedQueryBatch.from_queries(queries)
        assert len(batch) == 3
        for i, query in enumerate(queries):
            assert np.array_equal(batch[i].sap_vector, query.sap_vector)
            assert np.array_equal(batch[i].trapdoor.vector, query.trapdoor.vector)
            assert batch[i].request == query.request

    def test_from_queries_rejects_mixed_requests(self, fitted_scheme, small_dataset):
        user = fitted_scheme.user
        with pytest.raises(ParameterError):
            EncryptedQueryBatch.from_queries(
                [
                    user.encrypt_query(small_dataset.queries[0], 5),
                    user.encrypt_query(small_dataset.queries[1], 7),
                ]
            )

    def test_upload_bytes_is_sum_of_queries(self, fitted_scheme, small_dataset):
        batch = fitted_scheme.user.encrypt_queries(small_dataset.queries[:4], 5)
        assert batch.upload_bytes() == sum(
            batch[i].upload_bytes() for i in range(len(batch))
        )

    def test_legacy_k_constructor(self, fitted_scheme, small_dataset):
        query = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 5)
        legacy = EncryptedQuery(query.sap_vector, query.trapdoor, k=5)
        assert legacy.k == 5
        assert legacy.request == SearchRequest(k=5)


class TestSearchResultBatch:
    def _result(self, ids, seconds=0.5, comparisons=3):
        return SearchResult(
            ids=np.array(ids, dtype=np.int64),
            filter_stats=SearchStats(distance_computations=10, hops=2),
            refine_comparisons=comparisons,
            k_prime=8,
            filter_seconds=seconds,
            mask_seconds=seconds / 10,
            refine_seconds=seconds,
            refine_engine="vectorized",
            refine_kernel_seconds=seconds / 4,
        )

    def test_aggregates(self):
        batch = SearchResultBatch([self._result([1, 2]), self._result([3, 4])])
        assert len(batch) == 2
        assert batch.total_seconds == pytest.approx(2.1)
        assert batch.mean_seconds == pytest.approx(1.05)
        assert batch.refine_comparisons == 6
        assert batch.filter_stats.distance_computations == 20
        assert batch.filter_stats.hops == 4
        assert batch.download_bytes() == 16

    def test_stage_timing_aggregates(self):
        batch = SearchResultBatch([self._result([1, 2]), self._result([3, 4])])
        assert batch.filter_seconds == pytest.approx(1.0)
        assert batch.mask_seconds == pytest.approx(0.1)
        assert batch.refine_seconds == pytest.approx(1.0)
        assert batch.refine_kernel_seconds == pytest.approx(0.25)
        assert batch.total_seconds == pytest.approx(
            batch.filter_seconds + batch.mask_seconds + batch.refine_seconds
        )
        assert batch.refine_engines == ("vectorized",)

    def test_refine_engines_empty_for_filter_only(self):
        result = SearchResult(ids=np.array([1], dtype=np.int64))
        batch = SearchResultBatch([result])
        assert batch.refine_engines == ()
        assert batch.refine_kernel_seconds == 0.0

    def test_ids_matrix_pads_short_rows(self):
        batch = SearchResultBatch([self._result([1, 2, 3]), self._result([4])])
        matrix = batch.ids_matrix()
        assert matrix.shape == (2, 3)
        assert matrix[0].tolist() == [1, 2, 3]
        assert matrix[1].tolist() == [4, -1, -1]


class TestDimensionValidation:
    """Satellite: clear ParameterError at the API boundary, not a numpy
    shape error from deep inside DCE."""

    def test_encrypt_query_rejects_wrong_dim(self, fitted_scheme):
        with pytest.raises(ParameterError):
            fitted_scheme.user.encrypt_query(np.zeros(3), 5)

    def test_encrypt_query_rejects_matrix(self, fitted_scheme, small_dataset):
        with pytest.raises(ParameterError):
            fitted_scheme.user.encrypt_query(small_dataset.queries[:2], 5)

    def test_encrypt_queries_rejects_wrong_dim(self, fitted_scheme):
        with pytest.raises(ParameterError):
            fitted_scheme.user.encrypt_queries(np.zeros((4, 3)), 5)

    def test_server_rejects_wrong_dim_query(self, fitted_scheme, small_dataset):
        query = fitted_scheme.user.encrypt_query(small_dataset.queries[0], 5)
        truncated = EncryptedQuery(
            query.sap_vector[:-2], query.trapdoor, request=query.request
        )
        with pytest.raises(ParameterError):
            fitted_scheme.server.answer(truncated)

    def test_server_rejects_wrong_dim_batch(self, fitted_scheme, small_dataset):
        batch = fitted_scheme.user.encrypt_queries(small_dataset.queries[:3], 5)
        bad = EncryptedQueryBatch(
            batch.sap_vectors[:, :-2],
            batch.trapdoor_vectors,
            batch.key_id,
            batch.request,
        )
        with pytest.raises(ParameterError):
            fitted_scheme.server.answer(bad)
