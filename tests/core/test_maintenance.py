"""Index maintenance tests (Section V-D)."""

import numpy as np
import pytest

from repro import PPANNS
from repro.core.errors import ParameterError
from repro.datasets import make_clustered
from repro.hnsw.bruteforce import exact_knn
from tests.conftest import FAST_HNSW


@pytest.fixture()
def mutable_scheme():
    dataset = make_clustered(
        num_vectors=200,
        dim=12,
        num_queries=5,
        num_clusters=8,
        value_scale=2.0,
        rng=np.random.default_rng(31),
    )
    scheme = PPANNS(
        dim=12, beta=0.2, hnsw_params=FAST_HNSW, rng=np.random.default_rng(32)
    ).fit(dataset.database)
    return scheme, dataset


class TestInsert:
    def test_insert_assigns_next_id(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        new_id = scheme.insert(dataset.database[0] + 0.01)
        assert new_id == dataset.num_vectors

    def test_inserted_vector_is_findable(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        vector = dataset.database[3] + 1e-4
        new_id = scheme.insert(vector)
        ids = scheme.query(vector, k=5, ratio_k=8, ef_search=100)
        assert new_id in ids

    def test_insert_keeps_alignment(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        scheme.insert(dataset.database[0])
        index = scheme.server.index
        n = dataset.num_vectors + 1
        assert index.sap_vectors.shape[0] == n
        assert len(index.dce_database) == n
        assert index.backend.substrate.vectors.shape[0] == n

    def test_insert_wrong_dim(self, mutable_scheme):
        scheme, _ = mutable_scheme
        with pytest.raises(ParameterError):
            scheme.insert(np.zeros(5))

    def test_many_inserts_preserve_recall(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        rng = np.random.default_rng(33)
        for _ in range(20):
            scheme.insert(
                dataset.database[rng.integers(0, dataset.num_vectors)]
                + rng.normal(0, 0.05, size=12)
            )
        # Original content still searchable.
        ids = scheme.query(dataset.database[10], k=5, ratio_k=8, ef_search=100)
        assert 10 in ids


class TestDelete:
    def test_deleted_vector_never_returned(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        query = dataset.queries[0]
        victim = int(exact_knn(dataset.database, query, 1)[0][0])
        scheme.delete(victim)
        ids = scheme.query(query, k=10, ratio_k=8, ef_search=120)
        assert victim not in ids

    def test_delete_is_server_only(self, mutable_scheme):
        # Deletion must not touch owner state; it's a pure index mutation.
        scheme, dataset = mutable_scheme
        key_before = scheme.owner.dce_scheme.key.key_id
        scheme.delete(0)
        assert scheme.owner.dce_scheme.key.key_id == key_before

    def test_delete_twice_rejected(self, mutable_scheme):
        scheme, _ = mutable_scheme
        scheme.delete(4)
        with pytest.raises(ParameterError):
            scheme.delete(4)

    def test_delete_out_of_range(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        with pytest.raises(ParameterError):
            scheme.delete(dataset.num_vectors + 5)

    def test_recall_survives_deletions(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        rng = np.random.default_rng(34)
        victims = rng.choice(dataset.num_vectors, size=15, replace=False)
        for victim in victims:
            scheme.delete(int(victim))
        live = np.setdiff1d(np.arange(dataset.num_vectors), victims)
        query = dataset.queries[1]
        exact_ids, _ = exact_knn(dataset.database[live], query, 5)
        exact_set = set(live[exact_ids].tolist())
        found = scheme.query(query, k=5, ratio_k=8, ef_search=150)
        assert len(set(found.tolist()) & exact_set) >= 3

    def test_delete_then_insert(self, mutable_scheme):
        scheme, dataset = mutable_scheme
        scheme.delete(7)
        new_vector = dataset.database[7] + 0.01
        new_id = scheme.insert(new_vector)
        ids = scheme.query(new_vector, k=5, ratio_k=8, ef_search=100)
        assert new_id in ids
        assert 7 not in ids
