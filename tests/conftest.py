"""Shared fixtures for the test suite.

Heavy objects (fitted schemes, built graphs) are session-scoped so the
suite stays fast; tests must not mutate them — mutation tests build their
own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PPANNS
from repro.datasets import compute_ground_truth, make_clustered
from repro.hnsw.graph import HNSWParams

#: Small, fast graph parameters used across the suite.
FAST_HNSW = HNSWParams(m=8, ef_construction=60)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session randomness with a fixed seed; do not consume destructively."""
    return np.random.default_rng(20250612)


@pytest.fixture(scope="session")
def small_dataset():
    """A small clustered workload: 500 x 24, 10 queries."""
    return make_clustered(
        num_vectors=500,
        dim=24,
        num_queries=10,
        num_clusters=12,
        value_scale=2.0,
        rng=np.random.default_rng(101),
        name="small",
    )


@pytest.fixture(scope="session")
def small_ground_truth(small_dataset):
    """Exact 10-NN for the small workload."""
    return compute_ground_truth(small_dataset.database, small_dataset.queries, 10)


@pytest.fixture(scope="session")
def fitted_scheme(small_dataset) -> PPANNS:
    """A fitted PP-ANNS scheme over the small workload (read-only)."""
    scheme = PPANNS(
        dim=small_dataset.dim,
        beta=0.3,
        hnsw_params=FAST_HNSW,
        rng=np.random.default_rng(202),
    )
    return scheme.fit(small_dataset.database)
