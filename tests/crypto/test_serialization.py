"""Vector byte-packing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.serialization import (
    BYTES_PER_COMPONENT,
    BYTES_PER_COMPONENT_F64,
    bytes_to_vector,
    bytes_to_vectors,
    bytes_to_vectors_f64,
    vector_to_bytes,
    vectors_to_bytes,
    vectors_to_bytes_f64,
)

_matrix_shapes = st.tuples(
    st.integers(min_value=0, max_value=8), st.integers(min_value=1, max_value=16)
)
_seeds = st.integers(min_value=0, max_value=2**32 - 1)


class TestSingleVector:
    def test_roundtrip(self):
        vector = np.array([1.5, -2.25, 0.0, 1e6])
        recovered = bytes_to_vector(vector_to_bytes(vector))
        assert np.allclose(recovered, vector)

    def test_size(self):
        vector = np.zeros(13)
        assert len(vector_to_bytes(vector)) == 13 * BYTES_PER_COMPONENT

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            vector_to_bytes(np.zeros((2, 3)))

    def test_rejects_misaligned_bytes(self):
        with pytest.raises(ValueError):
            bytes_to_vector(b"abc")

    def test_float32_precision_loss_is_bounded(self):
        vector = np.array([1.0 / 3.0])
        recovered = bytes_to_vector(vector_to_bytes(vector))
        assert abs(recovered[0] - vector[0]) < 1e-7

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=32))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, values):
        vector = np.array(values)
        recovered = bytes_to_vector(vector_to_bytes(vector))
        assert np.allclose(recovered, vector, rtol=1e-6, atol=1e-3)


class TestBatch:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((5, 7))
        recovered = bytes_to_vectors(vectors_to_bytes(vectors), 7)
        assert np.allclose(recovered, vectors, rtol=1e-6)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            vectors_to_bytes(np.zeros(4))

    def test_rejects_bad_dim(self):
        data = vectors_to_bytes(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            bytes_to_vectors(data, 3)

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            bytes_to_vectors(b"\x00" * 8, 0)

    @given(shape=_matrix_shapes, seed=_seeds)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_arbitrary_shapes(self, shape, seed):
        n, d = shape
        vectors = np.random.default_rng(seed).standard_normal((n, d)) * 100.0
        recovered = bytes_to_vectors(vectors_to_bytes(vectors), d)
        assert recovered.shape == (n, d)
        assert np.allclose(recovered, vectors, rtol=1e-6, atol=1e-3)


class TestBatchF64:
    """The float64 pair carries DCE trapdoors: exactness is the point."""

    @given(shape=_matrix_shapes, seed=_seeds)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_is_bit_exact(self, shape, seed):
        n, d = shape
        vectors = np.random.default_rng(seed).standard_normal((n, d)) * 1e6
        recovered = bytes_to_vectors_f64(vectors_to_bytes_f64(vectors), d)
        assert recovered.shape == (n, d)
        assert np.array_equal(recovered, vectors)  # float64: lossless

    def test_size_accounting(self):
        assert len(vectors_to_bytes_f64(np.zeros((3, 5)))) == (
            3 * 5 * BYTES_PER_COMPONENT_F64
        )

    def test_zero_dim_matrix_roundtrips(self):
        """The filter_only zero-trapdoor edge: a (n, 0) matrix encodes
        to zero bytes and dim=0 decodes back to an empty matrix."""
        data = vectors_to_bytes_f64(np.zeros((4, 0)))
        assert data == b""
        recovered = bytes_to_vectors_f64(data, 0)
        assert recovered.shape == (0, 0)
        assert recovered.size == 0

    def test_zero_dim_with_payload_rejected(self):
        with pytest.raises(ValueError):
            bytes_to_vectors_f64(b"\x00" * 8, 0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            vectors_to_bytes_f64(np.zeros(4))

    def test_rejects_misaligned_bytes(self):
        with pytest.raises(ValueError):
            bytes_to_vectors_f64(b"\x00" * 9, 3)

    def test_rejects_bad_dim(self):
        data = vectors_to_bytes_f64(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            bytes_to_vectors_f64(data, 3)

    def test_rejects_negative_dim(self):
        with pytest.raises(ValueError):
            bytes_to_vectors_f64(b"", -1)
