"""Paillier / HE distance-protocol tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import (
    HEDistanceProtocol,
    PaillierKeypair,
    paillier_keygen,
)

#: One shared small keypair — keygen is the slow part.
KEYPAIR = paillier_keygen(256, np.random.default_rng(7))


@pytest.fixture(scope="module")
def protocol():
    return HEDistanceProtocol(6, keypair=KEYPAIR, rng=np.random.default_rng(8))


class TestPaillierCore:
    def test_encrypt_decrypt_roundtrip(self, protocol):
        for message in (0, 1, 12345, -987):
            assert protocol.decrypt_int(protocol.encrypt_int(message)) == message

    def test_homomorphic_addition(self, protocol):
        a, b = 1234, 5678
        combined = protocol.add(protocol.encrypt_int(a), protocol.encrypt_int(b))
        assert protocol.decrypt_int(combined) == a + b

    def test_homomorphic_scalar_multiplication(self, protocol):
        cipher = protocol.encrypt_int(321)
        assert protocol.decrypt_int(protocol.scalar_multiply(cipher, 7)) == 2247

    def test_negative_scalar(self, protocol):
        cipher = protocol.encrypt_int(50)
        assert protocol.decrypt_int(protocol.scalar_multiply(cipher, -3)) == -150

    def test_probabilistic_encryption(self, protocol):
        assert protocol.encrypt_int(42) != protocol.encrypt_int(42)

    def test_keygen_validation(self):
        with pytest.raises(ValueError):
            paillier_keygen(32)
        with pytest.raises(ValueError):
            paillier_keygen(127)

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_additive_homomorphism_property(self, a, b):
        protocol = HEDistanceProtocol(2, keypair=KEYPAIR, rng=np.random.default_rng(abs(a) + 1))
        combined = protocol.add(protocol.encrypt_int(a), protocol.encrypt_int(b))
        assert protocol.decrypt_int(combined) == a + b


class TestHEDistanceProtocol:
    def test_distance_recovery(self, protocol):
        rng = np.random.default_rng(9)
        p = rng.standard_normal(6)
        q = rng.standard_normal(6)
        ciphertext = protocol.encrypt_vector(p)
        term = protocol.encrypted_distance_term(ciphertext, q)
        recovered = protocol.decrypted_distance(term, q)
        assert recovered == pytest.approx(float(((p - q) ** 2).sum()), abs=1e-4)

    def test_comparison_via_he(self, protocol):
        rng = np.random.default_rng(10)
        o, p, q = rng.standard_normal((3, 6))
        ct_o = protocol.encrypt_vector(o)
        ct_p = protocol.encrypt_vector(p)
        dist_o = protocol.decrypted_distance(protocol.encrypted_distance_term(ct_o, q), q)
        dist_p = protocol.decrypted_distance(protocol.encrypted_distance_term(ct_p, q), q)
        true_o = float(((o - q) ** 2).sum())
        true_p = float(((p - q) ** 2).sum())
        assert (dist_o < dist_p) == (true_o < true_p)

    def test_vector_shape_validation(self, protocol):
        with pytest.raises(ValueError):
            protocol.encrypt_vector(np.zeros(3))

    def test_dim_validation(self):
        with pytest.raises(ValueError):
            HEDistanceProtocol(0, keypair=KEYPAIR)
