"""Random matrix sampling tests: orthogonality, invertibility, conditioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.matrices import (
    random_invertible_matrix,
    random_orthogonal_matrix,
    split_rows,
)


class TestOrthogonal:
    def test_orthogonality(self):
        rng = np.random.default_rng(0)
        q = random_orthogonal_matrix(16, rng)
        assert np.allclose(q @ q.T, np.eye(16), atol=1e-12)

    def test_determinant_magnitude_one(self):
        rng = np.random.default_rng(1)
        q = random_orthogonal_matrix(10, rng)
        assert abs(abs(np.linalg.det(q)) - 1.0) < 1e-10

    def test_rejects_nonpositive_dim(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_orthogonal_matrix(0, rng)

    def test_dim_one(self):
        rng = np.random.default_rng(0)
        q = random_orthogonal_matrix(1, rng)
        assert q.shape == (1, 1)
        assert abs(abs(q[0, 0]) - 1.0) < 1e-12

    def test_distribution_varies(self):
        rng = np.random.default_rng(2)
        a = random_orthogonal_matrix(8, rng)
        b = random_orthogonal_matrix(8, rng)
        assert not np.allclose(a, b)


class TestInvertible:
    def test_inverse_is_exact(self):
        rng = np.random.default_rng(3)
        m, m_inv = random_invertible_matrix(20, rng)
        assert np.allclose(m @ m_inv, np.eye(20), atol=1e-10)
        assert np.allclose(m_inv @ m, np.eye(20), atol=1e-10)

    def test_condition_number_bounded(self):
        rng = np.random.default_rng(4)
        m, _ = random_invertible_matrix(30, rng, singular_range=(0.5, 2.0))
        assert np.linalg.cond(m) <= 4.0 + 1e-6

    def test_custom_singular_range(self):
        rng = np.random.default_rng(5)
        m, _ = random_invertible_matrix(12, rng, singular_range=(1.0, 1.0))
        singular_values = np.linalg.svd(m, compute_uv=False)
        assert np.allclose(singular_values, 1.0, atol=1e-10)

    def test_rejects_nonpositive_singular_values(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_invertible_matrix(4, rng, singular_range=(0.0, 1.0))

    def test_rejects_inverted_range(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_invertible_matrix(4, rng, singular_range=(2.0, 1.0))

    @given(st.integers(min_value=1, max_value=24))
    @settings(max_examples=15, deadline=None)
    def test_invertibility_property(self, dim):
        rng = np.random.default_rng(dim)
        m, m_inv = random_invertible_matrix(dim, rng)
        assert np.allclose(m @ m_inv, np.eye(dim), atol=1e-9)


class TestSplitRows:
    def test_splits_evenly(self):
        matrix = np.arange(24).reshape(6, 4)
        upper, lower = split_rows(matrix)
        assert upper.shape == (3, 4)
        assert lower.shape == (3, 4)
        assert np.array_equal(np.vstack([upper, lower]), matrix)

    def test_rejects_odd_rows(self):
        with pytest.raises(ValueError):
            split_rows(np.zeros((5, 4)))
