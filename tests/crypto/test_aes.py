"""AES-128 / CTR tests, including the FIPS-197 known-answer vector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES128, AESCTRCipher


class TestAES128Block:
    def test_fips197_appendix_c_vector(self):
        # FIPS-197 Appendix C.1: the canonical AES-128 known-answer test.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_decrypt_inverts(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES128(key).decrypt_block(ciphertext) == expected

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_rejects_long_key(self):
        with pytest.raises(ValueError):
            AES128(b"x" * 17)

    def test_rejects_wrong_block_size_encrypt(self):
        aes = AES128(b"k" * 16)
        with pytest.raises(ValueError):
            aes.encrypt_block(b"too short")

    def test_rejects_wrong_block_size_decrypt(self):
        aes = AES128(b"k" * 16)
        with pytest.raises(ValueError):
            aes.decrypt_block(b"x" * 15)

    def test_deterministic(self):
        aes = AES128(b"k" * 16)
        block = b"m" * 16
        assert aes.encrypt_block(block) == aes.encrypt_block(block)

    def test_different_keys_differ(self):
        block = b"m" * 16
        assert AES128(b"a" * 16).encrypt_block(block) != AES128(b"b" * 16).encrypt_block(block)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_encrypt_changes_every_block(self):
        aes = AES128(b"k" * 16)
        block = bytes(16)
        assert aes.encrypt_block(block) != block


class TestAESBatch:
    def test_batch_matches_single(self):
        aes = AES128(b"batchkey12345678")
        rng = np.random.default_rng(0)
        blocks = rng.integers(0, 256, size=(37, 16)).astype(np.uint8)
        batch = aes.encrypt_blocks(blocks)
        for i in range(blocks.shape[0]):
            assert bytes(batch[i]) == aes.encrypt_block(bytes(blocks[i]))

    def test_batch_rejects_bad_shape(self):
        aes = AES128(b"k" * 16)
        with pytest.raises(ValueError):
            aes.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))

    def test_batch_does_not_mutate_input(self):
        aes = AES128(b"k" * 16)
        blocks = np.zeros((3, 16), dtype=np.uint8)
        aes.encrypt_blocks(blocks)
        assert np.all(blocks == 0)


class TestAESCTR:
    def test_roundtrip(self):
        cipher = AESCTRCipher(b"k" * 16)
        message = b"the quick brown fox jumps over the lazy dog"
        encrypted = cipher.process(b"12345678", message)
        assert cipher.process(b"12345678", encrypted) == message

    def test_ciphertext_differs_from_plaintext(self):
        cipher = AESCTRCipher(b"k" * 16)
        message = b"x" * 64
        assert cipher.process(b"12345678", message) != message

    def test_nonce_separates_streams(self):
        cipher = AESCTRCipher(b"k" * 16)
        message = b"x" * 64
        assert cipher.process(b"nonce--1", message) != cipher.process(b"nonce--2", message)

    def test_empty_message(self):
        cipher = AESCTRCipher(b"k" * 16)
        assert cipher.process(b"12345678", b"") == b""

    def test_length_preserving(self):
        cipher = AESCTRCipher(b"k" * 16)
        for length in (1, 15, 16, 17, 100):
            assert len(cipher.process(b"12345678", b"z" * length)) == length

    def test_keystream_prefix_consistency(self):
        cipher = AESCTRCipher(b"k" * 16)
        long = cipher.keystream(b"12345678", 256)
        short = cipher.keystream(b"12345678", 100)
        assert long[:100] == short

    def test_rejects_bad_nonce(self):
        cipher = AESCTRCipher(b"k" * 16)
        with pytest.raises(ValueError):
            cipher.keystream(b"short", 16)

    def test_rejects_negative_length(self):
        cipher = AESCTRCipher(b"k" * 16)
        with pytest.raises(ValueError):
            cipher.keystream(b"12345678", -1)

    @given(st.binary(min_size=0, max_size=200), st.binary(min_size=8, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, message, nonce):
        cipher = AESCTRCipher(b"propkey123456789"[:16])
        assert cipher.process(nonce, cipher.process(nonce, message)) == message
