"""Two-server XOR PIR tests: correctness, accounting, privacy shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.pir import TwoServerXorPIR


def _make_db(num_blocks: int, block_size: int, seed: int = 0) -> list[bytes]:
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 256, size=block_size, dtype=np.uint8).tobytes()
        for _ in range(num_blocks)
    ]


class TestRetrieve:
    def test_recovers_every_block(self):
        blocks = _make_db(20, 32)
        pir = TwoServerXorPIR(blocks)
        rng = np.random.default_rng(1)
        for index in range(20):
            block, _ = pir.retrieve(index, rng)
            assert block == blocks[index]

    def test_transcript_accounting(self):
        blocks = _make_db(100, 64)
        pir = TwoServerXorPIR(blocks)
        rng = np.random.default_rng(2)
        _, transcript = pir.retrieve(5, rng)
        assert transcript.rounds == 1
        assert transcript.download_bytes == 2 * 64
        assert transcript.upload_bytes == (2 * 100 + 7) // 8

    def test_out_of_range_raises(self):
        pir = TwoServerXorPIR(_make_db(4, 8))
        rng = np.random.default_rng(0)
        with pytest.raises(IndexError):
            pir.retrieve(4, rng)
        with pytest.raises(IndexError):
            pir.retrieve(-1, rng)

    def test_single_block_database(self):
        blocks = _make_db(1, 16)
        pir = TwoServerXorPIR(blocks)
        block, _ = pir.retrieve(0, np.random.default_rng(0))
        assert block == blocks[0]

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_retrieval_property(self, num_blocks, block_size):
        blocks = _make_db(num_blocks, block_size, seed=num_blocks * 100 + block_size)
        pir = TwoServerXorPIR(blocks)
        rng = np.random.default_rng(7)
        index = num_blocks // 2
        block, _ = pir.retrieve(index, rng)
        assert block == blocks[index]


class TestRetrieveMany:
    def test_batched_retrieval(self):
        blocks = _make_db(30, 24)
        pir = TwoServerXorPIR(blocks)
        rng = np.random.default_rng(3)
        wanted = [3, 17, 0, 29]
        result, transcript = pir.retrieve_many(wanted, rng)
        assert [r for r in result] == [blocks[i] for i in wanted]
        assert transcript.rounds == 1  # batched into one round trip
        assert transcript.download_bytes == len(wanted) * 2 * 24

    def test_empty_batch_raises(self):
        pir = TwoServerXorPIR(_make_db(4, 8))
        with pytest.raises(ValueError):
            pir.retrieve_many([], np.random.default_rng(0))


class TestValidation:
    def test_rejects_empty_database(self):
        with pytest.raises(ValueError):
            TwoServerXorPIR([])

    def test_rejects_empty_blocks(self):
        with pytest.raises(ValueError):
            TwoServerXorPIR([b""])

    def test_rejects_ragged_blocks(self):
        with pytest.raises(ValueError):
            TwoServerXorPIR([b"aa", b"bbb"])

    def test_properties(self):
        pir = TwoServerXorPIR(_make_db(7, 12))
        assert pir.num_blocks == 7
        assert pir.block_size == 12


class TestPrivacyShape:
    def test_selection_bitmaps_differ_only_at_target(self):
        # Reconstruct the protocol manually to check the core invariant:
        # the two servers' views differ in exactly the queried index, so
        # each marginal view is a uniform random bitmap.
        num_blocks = 16
        rng = np.random.default_rng(4)
        selection_a = rng.integers(0, 2, size=num_blocks, dtype=np.uint8)
        target = 9
        selection_b = selection_a.copy()
        selection_b[target] ^= 1
        difference = selection_a ^ selection_b
        assert difference[target] == 1
        assert difference.sum() == 1
