"""Permutation tests: roundtrip, composition, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.permutation import Permutation


class TestConstruction:
    def test_valid_permutation(self):
        p = Permutation(np.array([2, 0, 1]))
        assert p.size == 3

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 0, 1]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Permutation(np.array([0, 1, 3]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Permutation(np.array([], dtype=np.int64))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Permutation(np.zeros((2, 2), dtype=np.int64))

    def test_random_is_valid(self):
        rng = np.random.default_rng(0)
        p = Permutation.random(50, rng)
        assert p.size == 50
        assert np.array_equal(np.sort(p.indices), np.arange(50))

    def test_random_rejects_nonpositive(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            Permutation.random(0, rng)

    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity()
        x = np.arange(5.0)
        assert np.array_equal(p.apply(x), x)


class TestApplyInvert:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        p = Permutation.random(20, rng)
        x = rng.standard_normal(20)
        assert np.allclose(p.invert(p.apply(x)), x)
        assert np.allclose(p.apply(p.invert(x)), x)

    def test_apply_semantics(self):
        p = Permutation(np.array([2, 0, 1]))
        x = np.array([10.0, 20.0, 30.0])
        assert np.array_equal(p.apply(x), np.array([30.0, 10.0, 20.0]))

    def test_batch_apply(self):
        rng = np.random.default_rng(2)
        p = Permutation.random(8, rng)
        batch = rng.standard_normal((5, 8))
        applied = p.apply(batch)
        for i in range(5):
            assert np.array_equal(applied[i], p.apply(batch[i]))

    def test_preserves_inner_products(self):
        # The property DCE relies on: permuting both sides of a dot product
        # with the same pi leaves the product unchanged.
        rng = np.random.default_rng(3)
        p = Permutation.random(32, rng)
        a = rng.standard_normal(32)
        b = rng.standard_normal(32)
        assert np.isclose(p.apply(a) @ p.apply(b), a @ b)

    def test_width_mismatch_raises(self):
        p = Permutation.identity(4)
        with pytest.raises(ValueError):
            p.apply(np.zeros(5))

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, size):
        rng = np.random.default_rng(size)
        p = Permutation.random(size, rng)
        x = rng.standard_normal(size)
        assert np.allclose(p.invert(p.apply(x)), x)


class TestCompose:
    def test_compose_semantics(self):
        rng = np.random.default_rng(4)
        p = Permutation.random(10, rng)
        q = Permutation.random(10, rng)
        x = rng.standard_normal(10)
        assert np.array_equal(p.compose(q).apply(x), p.apply(q.apply(x)))

    def test_compose_size_mismatch(self):
        with pytest.raises(ValueError):
            Permutation.identity(3).compose(Permutation.identity(4))

    def test_compose_with_inverse_is_identity(self):
        rng = np.random.default_rng(5)
        p = Permutation.random(12, rng)
        inverse = Permutation(np.argsort(p.indices))
        assert p.compose(inverse).is_identity()


class TestEquality:
    def test_eq_and_hash(self):
        a = Permutation(np.array([1, 0, 2]))
        b = Permutation(np.array([1, 0, 2]))
        c = Permutation(np.array([2, 0, 1]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_eq_other_type(self):
        assert Permutation.identity(3) != "not a permutation"

    def test_repr(self):
        assert "size=3" in repr(Permutation.identity(3))
