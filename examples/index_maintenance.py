"""Index maintenance: inserting and deleting vectors (Section V-D).

Shows that after outsourcing, the index stays serviceable under updates:

* insertion — the owner encrypts the new vector, the server links it into
  the HNSW graph like a native insert; the new vector is immediately
  findable.
* deletion — server-only: edges into the deleted node are removed, its
  in-neighbors are repaired, the ciphertexts tombstoned; the deleted
  vector never reappears in results while recall on the rest holds.

Run:  python examples/index_maintenance.py
"""

import numpy as np

from repro import PPANNS
from repro.datasets import make_dataset
from repro.hnsw.bruteforce import exact_knn

K = 5


def main() -> None:
    rng = np.random.default_rng(13)
    dataset = make_dataset("glove", num_vectors=1500, num_queries=5, rng=rng)
    scheme = PPANNS(dim=dataset.dim, beta=1.0, rng=rng).fit(dataset.database)

    # --- insertion -----------------------------------------------------------
    new_vector = dataset.database[17] + rng.normal(0, 1e-3, size=dataset.dim)
    new_id = scheme.insert(new_vector)
    found = scheme.query(new_vector, k=K, ratio_k=8, ef_search=80)
    print(f"inserted vector got id {new_id}; query for it returns {found.tolist()}")
    assert new_id in found, "freshly inserted vector must be findable"

    # --- deletion --------------------------------------------------------------
    victim = int(exact_knn(dataset.database, dataset.queries[0], 1)[0][0])
    before = scheme.query(dataset.queries[0], k=K, ratio_k=8, ef_search=80)
    scheme.delete(victim)
    after = scheme.query(dataset.queries[0], k=K, ratio_k=8, ef_search=80)
    print(f"nearest neighbor {victim} deleted:")
    print(f"  results before: {sorted(before.tolist())}")
    print(f"  results after : {sorted(after.tolist())}")
    assert victim not in after, "deleted vector must not be returned"

    # The rest of the neighborhood is still served.
    overlap = len(set(before) & set(after))
    print(f"  {overlap}/{K} other neighbors retained after repair")


if __name__ == "__main__":
    main()
