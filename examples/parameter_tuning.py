"""Parameter tuning: the Section VII-A procedures, runnable.

1. **beta** — bisect for the largest DCPE noise whose *filter-only*
   recall ceiling stays near 0.5 (the paper's privacy rule: the server's
   approximate view identifies a true neighbor only half the time).
2. **k'** — grid-search ``ratio_k = k'/k`` for the smallest candidate
   multiplier that reaches a recall target with the refine phase on.

Run:  python examples/parameter_tuning.py
"""

import numpy as np

from repro import PPANNS
from repro.core.params import grid_search_ratio_k, tune_beta
from repro.datasets import make_dataset
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWParams

K = 10
HNSW = HNSWParams(m=12, ef_construction=80)


def main() -> None:
    rng = np.random.default_rng(99)
    dataset = make_dataset("deep", num_vectors=1200, num_queries=15, rng=rng)

    # --- step 1: tune beta --------------------------------------------------
    result = tune_beta(
        dataset.database,
        dataset.queries,
        target_ceiling=0.5,
        k=K,
        num_steps=4,
        hnsw_params=HNSW,
        rng=rng,
    )
    print(
        format_table(
            ["beta", "filter-only recall"],
            [[b, r] for b, r in result.trace],
            title="beta bisection trace (target ceiling 0.5)",
        )
    )
    print(f"\nchosen beta = {result.beta:.3f} (ceiling {result.recall_ceiling:.2f})\n")

    # --- step 2: grid-search ratio_k at that beta ------------------------------
    scheme = PPANNS(
        dim=dataset.dim, beta=result.beta, hnsw_params=HNSW, rng=rng
    ).fit(dataset.database)
    grid = grid_search_ratio_k(
        scheme,
        dataset.database,
        dataset.queries,
        k=K,
        recall_target=0.9,
        ratio_grid=(1, 2, 4, 8, 16, 32),
        ef_search=120,
    )
    print(
        format_table(
            ["ratio_k", "recall", "mean query s"],
            [[r, rec, sec] for r, rec, sec in grid.frontier],
            title="ratio_k grid (refine phase on)",
        )
    )
    print(
        f"\nsmallest ratio_k reaching recall 0.9: {grid.ratio_k} "
        f"(recall {grid.recall:.3f})"
    )


if __name__ == "__main__":
    main()
