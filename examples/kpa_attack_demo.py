"""Known-plaintext attack demo: breaking ASPE variants, DCE resisting.

Re-enacts Section III of the paper as a live experiment.  For each
"enhanced" ASPE variant (linear / exponential / logarithmic / square
distance leakage) the attacker:

1. obtains a leaked subset of plaintexts and the scheme's observable
   leakage values (exactly the values the server ranks neighbors with),
2. solves the Theorem-1/2 linear systems to recover a *query* vector,
3. uses recovered queries to recover a *database* vector it never saw.

The same attack shape is then pointed at DCE, where the pair-specific
positive randomizers reduce the attacker to noise.

Run:  python examples/kpa_attack_demo.py
"""

import numpy as np

from repro.attacks import ASPEAttacker, dce_linear_attack_error
from repro.baselines.aspe import ASPEScheme, DistanceTransform

DIM = 16


def attack_variant(transform: DistanceTransform, rng: np.random.Generator) -> None:
    scheme = ASPEScheme(DIM, transform, rng)
    attacker = ASPEAttacker(DIM, transform)

    leaked = rng.standard_normal((attacker.required_leak_size + 8, DIM)) * 3.0
    leaked_cts = scheme.encrypt_database(leaked)
    queries = [rng.standard_normal(DIM) * 3.0 for _ in range(DIM + 4)]
    trapdoors = [scheme.trapdoor(q) for q in queries]
    victim = rng.standard_normal(DIM) * 3.0
    victim_ct = scheme.encrypt(victim)

    recoveries, recovered_victim = attacker.full_attack(
        scheme, leaked, leaked_cts, trapdoors, victim_ct
    )
    query_err = np.linalg.norm(recoveries[0].query - queries[0]) / np.linalg.norm(queries[0])
    victim_err = np.linalg.norm(recovered_victim - victim) / np.linalg.norm(victim)
    print(
        f"ASPE[{transform.value:>11}]  query recovered to {query_err:.1e} rel. error, "
        f"database vector to {victim_err:.1e} -> BROKEN"
    )


def main() -> None:
    rng = np.random.default_rng(2025)
    print(f"attacking ASPE variants in d={DIM} (Theorems 1-2, Corollaries 1-2)\n")
    for transform in (
        DistanceTransform.LINEAR,
        DistanceTransform.EXPONENTIAL,
        DistanceTransform.LOGARITHMIC,
        DistanceTransform.SQUARE,
    ):
        attack_variant(transform, rng)

    error = dce_linear_attack_error(DIM, num_leaked=200, rng=rng)
    print(
        f"\nDCE under the same attack shape: {error:.2f} rel. error "
        "(no better than guessing the query's scale) -> attack fails"
    )


if __name__ == "__main__":
    main()
