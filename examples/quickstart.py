"""Quickstart: encrypted k-ANN search in a dozen lines.

Builds the full PP-ANNS pipeline — DCE + DCPE encryption, HNSW index over
ciphertexts, filter-and-refine search — on a synthetic workload and
verifies the recall against exact plaintext search.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PPANNS
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k

K = 10


def main() -> None:
    rng = np.random.default_rng(42)
    dataset = make_dataset("deep", num_vectors=3000, num_queries=20, rng=rng)
    print(f"dataset: {dataset.name}, n={dataset.num_vectors}, d={dataset.dim}")

    # The data owner picks beta (privacy noise), encrypts, and outsources.
    scheme = PPANNS(dim=dataset.dim, beta=0.5, rng=rng).fit(dataset.database)
    report = scheme.server.index.size_report()
    print(
        f"server stores: C_SAP {report.sap_floats} floats, "
        f"C_DCE {report.dce_floats} floats "
        f"({report.dce_overhead_ratio:.2f}x plaintext, paper predicts "
        f"{8 + 64 / dataset.dim:.2f}x), {report.graph_edges} graph edges"
    )

    # Batch-first querying: the user encrypts the whole workload with two
    # matrix products and the server answers it in one amortized pass.
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    results = scheme.query_batch(dataset.queries, k=K, ratio_k=8, ef_search=100)
    recalls = [
        recall_at_k(result.ids, truth.for_query(i), K)
        for i, result in enumerate(results)
    ]
    print(
        f"Recall@{K} = {np.mean(recalls):.3f} over {dataset.num_queries} queries; "
        f"mean DCE comparisons per query = "
        f"{results.refine_comparisons / len(results):.0f}; "
        f"{results.qps:.0f} QPS server-side"
    )


if __name__ == "__main__":
    main()
