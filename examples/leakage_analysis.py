"""Quantifying the index's leakage as beta varies.

The paper's threat model accepts that the server-side index leaks
*approximate* neighborhood relationships, and tunes the DCPE noise beta
so a curious server identifies a true neighbor only ~50% of the time.
This example measures both sides of that bargain on a synthetic workload:

* **neighborhood overlap** — how much of the true k-NN structure the
  DCPE ciphertexts (and hence any index built on them) still reveal;
* **reconstruction error** — how badly a known-scale inversion of
  ``C = s*p + noise`` misses the plaintext, relative to the data spread;
* **filter-only recall** — the accuracy cost the refine phase must repair.

Run:  python examples/leakage_analysis.py
"""

import numpy as np

from repro import PPANNS
from repro.attacks.leakage import profile_beta_leakage
from repro.core.params import measure_filter_recall_ceiling
from repro.datasets import make_dataset
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWParams

BETAS = (0.0, 1.0, 2.0, 4.0, 8.0)
HNSW = HNSWParams(m=10, ef_construction=60)


def main() -> None:
    rng = np.random.default_rng(77)
    dataset = make_dataset("deep", num_vectors=800, num_queries=10, rng=rng)

    profiles = profile_beta_leakage(
        dataset.database, betas=BETAS, k=10, sample_size=60, rng=rng
    )
    recalls = [
        measure_filter_recall_ceiling(
            dataset.database, dataset.queries, beta=beta, k=10,
            hnsw_params=HNSW, rng=rng,
        )
        for beta in BETAS
    ]

    rows = [
        [p.beta, p.neighborhood_overlap, p.reconstruction_error, recall]
        for p, recall in zip(profiles, recalls)
    ]
    print(
        format_table(
            ["beta", "kNN overlap (leak)", "reconstruction err", "filter recall"],
            rows,
            title="DCPE beta: privacy leakage vs filter accuracy",
        )
    )
    print(
        "\nreading: overlap is what index edges can reveal (paper aims ~0.5);"
        "\nreconstruction err is known-scale plaintext recovery error;"
        "\nfilter recall is what the DCE refine phase must repair."
    )

    # Show the repair: at the largest beta, full filter+refine recall.
    scheme = PPANNS(dataset.dim, beta=BETAS[-1], hnsw_params=HNSW, rng=rng).fit(
        dataset.database
    )
    from repro.datasets import compute_ground_truth
    from repro.eval.metrics import recall_at_k

    truth = compute_ground_truth(dataset.database, dataset.queries, 10)
    refined = np.mean(
        [
            recall_at_k(
                scheme.query(q, k=10, ratio_k=16, ef_search=200),
                truth.for_query(i),
                10,
            )
            for i, q in enumerate(dataset.queries)
        ]
    )
    print(
        f"\nat beta={BETAS[-1]}: filter-only recall {recalls[-1]:.2f} -> "
        f"filter+refine recall {refined:.2f} (Ratio_k=16)"
    )


if __name__ == "__main__":
    main()
