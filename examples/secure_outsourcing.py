"""Secure outsourcing walkthrough with explicit trust boundaries.

Plays out Figure 1 of the paper with three separate actors:

0. The data owner authorizes the query user by sharing the secret keys.
1. The owner encrypts the database and outsources the index to the cloud.
2. The user encrypts a query and sends it to the cloud.
3. The cloud searches entirely over ciphertexts and returns k ids.

Along the way we print what each party can see, the message sizes of the
two-message protocol (Section V-C's communication analysis), and confirm
the cloud's view contains no plaintext vector.

Run:  python examples/secure_outsourcing.py
"""

import numpy as np

from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k

K = 10


def main() -> None:
    rng = np.random.default_rng(7)
    dataset = make_dataset("sift", num_vectors=2000, num_queries=5, rng=rng)

    # --- data owner side -------------------------------------------------
    owner = DataOwner(dim=dataset.dim, beta=30.0, rng=rng)
    keys = owner.authorize_user()  # step 0: authorized secret key sk
    index = owner.build_index(dataset.database)  # step 1: encrypt + index
    print(f"owner outsources index over n={len(index)} vectors, d={index.dim}")

    # --- cloud side: only ciphertexts ---------------------------------------
    server = CloudServer(index, default_ratio_k=8)
    sap_sample = index.sap_vectors[0][:4]
    dce_sample = index.dce_database[0].components[0][:4]
    print(f"plaintext p[0][:4]      = {np.round(dataset.database[0][:4], 2)}")
    print(
        f"cloud sees C_SAP[0][:4] = {np.round(sap_sample, 2)}  "
        "(scale*p + ball noise: approximate by design, beta controls leakage)"
    )
    print(
        f"cloud sees C_DCE[0][:4] = {np.round(dce_sample, 2)}  "
        "(randomized, permuted, matrix-masked: no visible structure)"
    )

    # --- query user side ----------------------------------------------------
    user = QueryUser(keys, rng=rng)
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    batch = user.encrypt_queries(dataset.queries, K, ef_search=120)  # step 2
    results = server.answer(batch)  # step 3
    recalls = [
        recall_at_k(result.ids, truth.for_query(i), K)
        for i, result in enumerate(results)
    ]

    print(f"Recall@{K} = {np.mean(recalls):.3f}")
    print(
        f"communication per query: "
        f"{batch.upload_bytes() // len(batch)} B up, "
        f"{results.download_bytes() // len(batch)} B down "
        "(two messages total — no interaction during search)"
    )


if __name__ == "__main__":
    main()
