"""``python -m repro`` dispatches to the CLI.

The ``__name__`` guard is load-bearing: the process data plane's spawn
workers re-import this module (as ``__mp_main__``) while bootstrapping,
and must not re-run the command they were spawned to serve.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
