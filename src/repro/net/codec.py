"""The framed, versioned binary wire codec of the network serving layer.

Everything that crosses the ``repro.net`` socket boundary travels as a
**frame**: a fixed 12-byte header (magic, version, message type, length
prefix) followed by a type-specific body.  The layout is normative in
``docs/FORMATS.md`` ("Network envelope"); this module is its executable
counterpart, exactly as ``repro.core.protocol`` is for the message
objects themselves.

```
 offset  size  field
 0       4     magic  = b"PPAN"
 4       1     protocol version = 1
 5       1     message type (MessageType)
 6       2     reserved, must be zero
 8       4     body length (uint32 LE), bounded by max_body_bytes
 12      ...   body
```

Design points, each load-bearing for a satellite or chaos requirement:

* **The batch envelope carries its own ``key_id``.**  In-process, the
  DCE key tag rides on the trapdoors; a ``filter_only`` batch has a
  ``(n, 0)`` trapdoor matrix and therefore *nowhere* to put it.  The
  QUERY body stores ``key_id`` as an envelope field, so zero-trapdoor
  batches round-trip without a spurious trapdoor requirement and the
  tenancy layer can authenticate **before** touching any payload.
* **Length prefix first, body later.**  ``read_frame_from`` validates
  the header — magic, version, reserved bits, and the length against
  ``max_body_bytes`` — *before* reading a single body byte, so an
  oversized frame is refused in O(1) (:class:`FrameTooLargeError`)
  instead of buffered.
* **Typed rejection.**  Malformed input raises
  :class:`WireFormatError` subclasses — :class:`TruncatedFrameError`
  for streams that end mid-frame, :class:`FrameTooLargeError` for a
  length prefix over the limit — never a bare ``struct.error`` or a
  silent mis-parse.
* **Deadline reads.**  Socket reads take a per-*frame* deadline, not a
  per-``recv`` timeout: a slow-loris peer trickling one byte per
  timeout window still gets cut off when the frame's total budget is
  spent.

Dtypes on the wire: DCPE ciphertexts as little-endian float32 (the
paper's cost-model accounting, via :mod:`repro.crypto.serialization`),
DCE trapdoors and result payloads as float64/int64 — the refine phase's
comparison algebra must survive the wire bit-identically.
"""

from __future__ import annotations

import enum
import json
import socket
import struct
import time

import numpy as np

from repro.core.errors import PPANNSError
from repro.core.protocol import (
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
)
from repro.crypto.serialization import (
    bytes_to_vectors,
    bytes_to_vectors_f64,
    vectors_to_bytes,
    vectors_to_bytes_f64,
)

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "PROTOCOL_VERSION_MAX",
    "HEADER_SIZE",
    "DEFAULT_MAX_BODY_BYTES",
    "MessageType",
    "ErrorCode",
    "WireFormatError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "encode_frame",
    "decode_frame",
    "parse_header",
    "encode_hello",
    "decode_hello",
    "encode_hello_ok",
    "decode_hello_ok",
    "encode_query_batch",
    "decode_query_batch",
    "encode_query_batch_v2",
    "decode_query_batch_v2",
    "query_frame_size",
    "encode_result_batch",
    "decode_result_batch",
    "encode_error",
    "decode_error",
    "encode_error_v2",
    "decode_error_v2",
    "encode_stats",
    "decode_stats",
    "send_frame",
    "read_frame_from",
]

#: Frame magic: every conforming stream starts each frame with these bytes.
MAGIC = b"PPAN"

#: Wire protocol version; bumped on any incompatible layout change.
#: The frame *header* byte stays 1 — protocol v2 is purely additive
#: (new message types, negotiated via HELLO_OK), so v1 peers keep
#: parsing every frame a conforming peer will actually send them.
PROTOCOL_VERSION = 1

#: Highest *negotiable* protocol version this build understands.  The
#: server advertises it in the HELLO_OK body; both sides then speak
#: ``min(client max, server max)``.  An empty HELLO_OK body — what a
#: pre-negotiation server sends — decodes as version 1.
PROTOCOL_VERSION_MAX = 2

#: Default cap on a frame's body length (16 MiB).
DEFAULT_MAX_BODY_BYTES = 16 * 1024 * 1024

_HEADER = struct.Struct("<4sBBHI")  # magic, version, type, reserved, body length

#: Size of the fixed frame header in bytes.
HEADER_SIZE = _HEADER.size

# QUERY body prefix: key_id, n, d, trapdoor_dim, k, ratio_k, ef_search,
# mode, 3 pad bytes.  ratio_k / ef_search use -1 to encode None.
_QUERY_PREFIX = struct.Struct("<qIIIIiiB3x")

# RESULT body prefix: row count, wall_seconds (NaN encodes None).
_RESULT_PREFIX = struct.Struct("<Id")

# HELLO body prefix: key_id, token length.
_HELLO_PREFIX = struct.Struct("<qH")

# ERROR body prefix: error code.
_ERROR_PREFIX = struct.Struct("<H")

# v2 QUERY body prefix: the v1 fields plus deadline_ms (0 encodes None).
_QUERY_V2_PREFIX = struct.Struct("<qIIIIiiB3xI")

# v2 ERROR body prefix: error code, retry-after seconds (NaN encodes None).
_ERROR_V2_PREFIX = struct.Struct("<Hd")

# HELLO_OK body (v2+): the server's highest negotiable protocol version.
_HELLO_OK_PREFIX = struct.Struct("<B")

_MODE_CODES = {"full": 0, "filter_only": 1}
_MODE_NAMES = {code: name for name, code in _MODE_CODES.items()}


class MessageType(enum.IntEnum):
    """Frame type tags (the header's ``message type`` byte)."""

    HELLO = 1  #: client → server: key_id + token authentication
    HELLO_OK = 2  #: server → client: authentication accepted (empty body)
    QUERY = 3  #: client → server: one EncryptedQueryBatch envelope
    RESULT = 4  #: server → client: the SearchResultBatch answer
    ERROR = 5  #: server → client: typed failure for the preceding frame
    STATS = 6  #: client → server: request the tenancy/metrics view
    STATS_OK = 7  #: server → client: JSON stats payload
    QUERY_V2 = 8  #: client → server: QUERY envelope + deadline_ms (v2 only)


class ErrorCode(enum.IntEnum):
    """ERROR-frame codes; the client maps them back to typed exceptions."""

    AUTH = 1  #: authentication failed (unknown tenant / bad token)
    QUOTA = 2  #: per-tenant admission quota exhausted
    BUSY = 3  #: global admission queue full (QueueFullError)
    FORMAT = 4  #: malformed or oversized frame
    PARAMETER = 5  #: invalid search parameters
    KEY = 6  #: trapdoor key does not match the index
    INTERNAL = 7  #: any other server-side failure
    DEADLINE = 8  #: the query's deadline budget expired before execution


class WireFormatError(PPANNSError):
    """A frame violates the wire layout (bad magic, version, or body)."""


class TruncatedFrameError(WireFormatError):
    """The stream ended (or the buffer ran out) in the middle of a frame."""


class FrameTooLargeError(WireFormatError):
    """A frame's length prefix exceeds the configured body cap."""


# -- frame layer -------------------------------------------------------------------


def encode_frame(msg_type: MessageType, body: bytes = b"") -> bytes:
    """Wrap a message body in the 12-byte framed header."""
    return _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, int(msg_type), 0, len(body)
    ) + body


def parse_header(
    header: bytes, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> "tuple[MessageType, int]":
    """Validate a frame header; returns ``(message type, body length)``.

    Raises :class:`TruncatedFrameError` for a short header,
    :class:`FrameTooLargeError` for a length prefix over
    ``max_body_bytes``, and :class:`WireFormatError` for bad magic,
    version, reserved bits, or an unknown message type.  The body is
    *not* read here — oversized frames are refused before any body
    byte is consumed.
    """
    if len(header) < HEADER_SIZE:
        raise TruncatedFrameError(
            f"frame header is {len(header)} bytes, need {HEADER_SIZE}"
        )
    magic, version, type_code, reserved, length = _HEADER.unpack(
        header[:HEADER_SIZE]
    )
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise WireFormatError(
            f"unsupported protocol version {version} "
            f"(this side speaks {PROTOCOL_VERSION})"
        )
    if reserved != 0:
        raise WireFormatError(f"reserved header bits must be zero, got {reserved}")
    try:
        msg_type = MessageType(type_code)
    except ValueError:
        raise WireFormatError(f"unknown message type {type_code}") from None
    if length > max_body_bytes:
        raise FrameTooLargeError(
            f"frame body of {length} bytes exceeds the {max_body_bytes}-byte cap"
        )
    return msg_type, length


def decode_frame(
    data: bytes, max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
) -> "tuple[MessageType, bytes, int]":
    """Parse one frame from a byte buffer.

    Returns ``(message type, body, bytes consumed)``.  Raises
    :class:`TruncatedFrameError` when the buffer ends mid-frame — the
    streaming caller's signal to wait for more bytes — and the same
    typed errors as :func:`parse_header` for corruption.
    """
    msg_type, length = parse_header(data, max_body_bytes)
    end = HEADER_SIZE + length
    if len(data) < end:
        raise TruncatedFrameError(
            f"frame body needs {length} bytes, buffer holds {len(data) - HEADER_SIZE}"
        )
    return msg_type, data[HEADER_SIZE:end], end


# -- message bodies ----------------------------------------------------------------


def encode_hello(key_id: int, token: str | None = None) -> bytes:
    """HELLO body: the tenant's ``key_id`` plus its UTF-8 auth token."""
    raw = (token or "").encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireFormatError(f"auth token of {len(raw)} bytes exceeds 65535")
    return _HELLO_PREFIX.pack(int(key_id), len(raw)) + raw


def decode_hello(body: bytes) -> "tuple[int, str]":
    """Inverse of :func:`encode_hello`; returns ``(key_id, token)``."""
    if len(body) < _HELLO_PREFIX.size:
        raise TruncatedFrameError(
            f"HELLO body is {len(body)} bytes, need >= {_HELLO_PREFIX.size}"
        )
    key_id, token_len = _HELLO_PREFIX.unpack(body[: _HELLO_PREFIX.size])
    raw = body[_HELLO_PREFIX.size:]
    if len(raw) != token_len:
        raise WireFormatError(
            f"HELLO token length {token_len} disagrees with {len(raw)} payload bytes"
        )
    try:
        token = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireFormatError(f"HELLO token is not valid UTF-8: {exc}") from None
    return int(key_id), token


def _query_envelope_fields(
    batch: EncryptedQueryBatch,
) -> "tuple[int, int, int, int, int, int, int, int]":
    """The envelope prefix fields shared by the v1 and v2 QUERY bodies."""
    request = batch.request
    n, d = batch.sap_vectors.shape
    t_dim = int(batch.trapdoor_vectors.shape[1])
    return (
        int(batch.key_id),
        int(n),
        int(d),
        t_dim,
        int(request.k),
        -1 if request.ratio_k is None else int(request.ratio_k),
        -1 if request.ef_search is None else int(request.ef_search),
        _MODE_CODES[request.mode],
    )


def encode_hello_ok(max_version: int = PROTOCOL_VERSION_MAX) -> bytes:
    """HELLO_OK body: the server's highest negotiable protocol version.

    A v1-era server sent an *empty* HELLO_OK body; a v1-era client
    ignores the body entirely.  Advertising the version here is
    therefore backward compatible in both directions — the negotiated
    version is ``min(client max, server max)``, and an empty body
    decodes as 1.
    """
    if not 1 <= int(max_version) <= 0xFF:
        raise WireFormatError(f"protocol version {max_version} out of range")
    return _HELLO_OK_PREFIX.pack(int(max_version))


def decode_hello_ok(body: bytes) -> int:
    """Inverse of :func:`encode_hello_ok`; an empty body means version 1."""
    if not body:
        return 1
    (version,) = _HELLO_OK_PREFIX.unpack(body[: _HELLO_OK_PREFIX.size])
    if version < 1:
        raise WireFormatError(f"HELLO_OK advertises protocol version {version}")
    return int(version)


def encode_query_batch(batch: EncryptedQueryBatch) -> bytes:
    """QUERY body: the batch envelope plus both ciphertext matrices.

    The envelope carries ``key_id`` explicitly — **not** via the
    trapdoors — so a ``filter_only`` batch with a ``(n, 0)`` trapdoor
    matrix serializes without inventing one.  DCPE ciphertexts go as
    float32 (the FORMATS.md wire accounting), trapdoors as exact
    float64.
    """
    return (
        _QUERY_PREFIX.pack(*_query_envelope_fields(batch))
        + vectors_to_bytes(batch.sap_vectors)
        + vectors_to_bytes_f64(batch.trapdoor_vectors)
    )


def encode_query_batch_v2(
    batch: EncryptedQueryBatch, deadline_ms: int | None = None
) -> bytes:
    """QUERY_V2 body: the v1 envelope plus a per-batch deadline budget.

    ``deadline_ms`` is the client's remaining latency budget in
    milliseconds (0 on the wire encodes "no deadline").  The matrices
    are byte-identical to the v1 layout — v2 only prepends one more
    envelope field — so the dedup digest over the ciphertexts is
    unchanged and a retried query still hits the server's result cache.
    """
    if deadline_ms is not None:
        deadline_ms = int(deadline_ms)
        if not 0 < deadline_ms <= 0xFFFFFFFF:
            raise WireFormatError(
                f"deadline_ms must be in [1, {0xFFFFFFFF}], got {deadline_ms}"
            )
    return (
        _QUERY_V2_PREFIX.pack(
            *_query_envelope_fields(batch), 0 if deadline_ms is None else deadline_ms
        )
        + vectors_to_bytes(batch.sap_vectors)
        + vectors_to_bytes_f64(batch.trapdoor_vectors)
    )


def decode_query_batch(body: bytes) -> EncryptedQueryBatch:
    """Inverse of :func:`encode_query_batch`.

    Rejects any body whose length disagrees with its declared shape
    (:class:`TruncatedFrameError` when short, :class:`WireFormatError`
    when over-long or self-inconsistent).
    """
    if len(body) < _QUERY_PREFIX.size:
        raise TruncatedFrameError(
            f"QUERY body is {len(body)} bytes, need >= {_QUERY_PREFIX.size}"
        )
    key_id, n, d, t_dim, k, ratio_k, ef_search, mode_code = _QUERY_PREFIX.unpack(
        body[: _QUERY_PREFIX.size]
    )
    return _decode_query_payload(
        body, _QUERY_PREFIX.size, key_id, n, d, t_dim, k, ratio_k, ef_search,
        mode_code,
    )


def decode_query_batch_v2(
    body: bytes,
) -> "tuple[EncryptedQueryBatch, int | None]":
    """Inverse of :func:`encode_query_batch_v2`.

    Returns ``(batch, deadline_ms)`` where ``deadline_ms`` is ``None``
    when the client declared no budget (0 on the wire).
    """
    if len(body) < _QUERY_V2_PREFIX.size:
        raise TruncatedFrameError(
            f"QUERY_V2 body is {len(body)} bytes, need >= {_QUERY_V2_PREFIX.size}"
        )
    (
        key_id, n, d, t_dim, k, ratio_k, ef_search, mode_code, deadline_ms,
    ) = _QUERY_V2_PREFIX.unpack(body[: _QUERY_V2_PREFIX.size])
    batch = _decode_query_payload(
        body, _QUERY_V2_PREFIX.size, key_id, n, d, t_dim, k, ratio_k, ef_search,
        mode_code,
    )
    return batch, None if deadline_ms == 0 else int(deadline_ms)


def _decode_query_payload(
    body: bytes,
    prefix_size: int,
    key_id: int,
    n: int,
    d: int,
    t_dim: int,
    k: int,
    ratio_k: int,
    ef_search: int,
    mode_code: int,
) -> EncryptedQueryBatch:
    """Decode the matrices + request shared by the v1 and v2 bodies."""
    if mode_code not in _MODE_NAMES:
        raise WireFormatError(f"unknown search-mode code {mode_code}")
    sap_bytes = n * d * 4
    trap_bytes = n * t_dim * 8
    expected = prefix_size + sap_bytes + trap_bytes
    if len(body) < expected:
        raise TruncatedFrameError(
            f"QUERY body declares ({n}, {d}) + ({n}, {t_dim}) matrices "
            f"({expected} bytes) but carries {len(body)}"
        )
    if len(body) != expected:
        raise WireFormatError(
            f"QUERY body carries {len(body) - expected} trailing bytes"
        )
    try:
        request = SearchRequest(
            k=int(k),
            ratio_k=None if ratio_k < 0 else int(ratio_k),
            ef_search=None if ef_search < 0 else int(ef_search),
            mode=_MODE_NAMES[mode_code],
        )
    except PPANNSError as exc:
        raise WireFormatError(f"QUERY carries invalid parameters: {exc}") from None
    sap_end = prefix_size + sap_bytes
    if d > 0:
        sap = bytes_to_vectors(body[prefix_size:sap_end], d)
        if sap.shape[0] != n:
            raise WireFormatError(
                f"QUERY SAP payload holds {sap.shape[0]} rows, declared {n}"
            )
    else:
        raise WireFormatError("QUERY declares zero-dimensional ciphertexts")
    if t_dim > 0:
        trapdoors = bytes_to_vectors_f64(body[sap_end:expected], t_dim)
    else:
        trapdoors = np.zeros((n, 0))
    try:
        return EncryptedQueryBatch(sap, trapdoors, int(key_id), request)
    except PPANNSError as exc:
        raise WireFormatError(f"QUERY payload is inconsistent: {exc}") from None


def query_frame_size(n: int, d: int, trapdoor_dim: int) -> int:
    """Total bytes of a QUERY frame for a declared batch shape.

    Header + envelope prefix + ``4nd`` float32 SAP bytes +
    ``8 * n * trapdoor_dim`` float64 trapdoor bytes; the size
    accounting doctested in ``docs/FORMATS.md``.
    """
    return HEADER_SIZE + _QUERY_PREFIX.size + 4 * n * d + 8 * n * trapdoor_dim


def encode_result_batch(results: SearchResultBatch) -> bytes:
    """RESULT body: ragged per-query id rows plus the batch wall clock.

    Only what the user is entitled to travels — the neighbor ids and
    the batch throughput clock.  Server-side instrumentation (stage
    splits, shard timings, comparison counts) never crosses the wire.
    """
    rows = [np.asarray(result.ids, dtype="<i8") for result in results]
    wall = results.wall_seconds
    parts = [
        _RESULT_PREFIX.pack(len(rows), float("nan") if wall is None else wall),
        np.asarray([row.shape[0] for row in rows], dtype="<u4").tobytes(),
    ]
    parts.extend(row.tobytes() for row in rows)
    return b"".join(parts)


def decode_result_batch(body: bytes) -> SearchResultBatch:
    """Inverse of :func:`encode_result_batch`."""
    if len(body) < _RESULT_PREFIX.size:
        raise TruncatedFrameError(
            f"RESULT body is {len(body)} bytes, need >= {_RESULT_PREFIX.size}"
        )
    n, wall = _RESULT_PREFIX.unpack(body[: _RESULT_PREFIX.size])
    lengths_end = _RESULT_PREFIX.size + 4 * n
    if len(body) < lengths_end:
        raise TruncatedFrameError(
            f"RESULT body declares {n} rows but truncates the length table"
        )
    lengths = np.frombuffer(
        body[_RESULT_PREFIX.size:lengths_end], dtype="<u4"
    ).astype(np.int64)
    expected = lengths_end + 8 * int(lengths.sum())
    if len(body) < expected:
        raise TruncatedFrameError(
            f"RESULT body needs {expected} bytes for its id rows, has {len(body)}"
        )
    if len(body) != expected:
        raise WireFormatError(
            f"RESULT body carries {len(body) - expected} trailing bytes"
        )
    flat = np.frombuffer(body[lengths_end:expected], dtype="<i8").astype(np.int64)
    results, offset = [], 0
    for length in lengths:
        results.append(SearchResult(ids=flat[offset:offset + length].copy()))
        offset += int(length)
    return SearchResultBatch(
        results, wall_seconds=None if np.isnan(wall) else float(wall)
    )


def encode_error(code: ErrorCode, message: str) -> bytes:
    """ERROR body: a typed code plus a human-readable UTF-8 message."""
    return _ERROR_PREFIX.pack(int(code)) + message.encode("utf-8")


def decode_error(body: bytes) -> "tuple[ErrorCode, str]":
    """Inverse of :func:`encode_error`; unknown codes map to INTERNAL."""
    if len(body) < _ERROR_PREFIX.size:
        raise TruncatedFrameError(
            f"ERROR body is {len(body)} bytes, need >= {_ERROR_PREFIX.size}"
        )
    (code,) = _ERROR_PREFIX.unpack(body[: _ERROR_PREFIX.size])
    try:
        error_code = ErrorCode(code)
    except ValueError:
        error_code = ErrorCode.INTERNAL
    return error_code, body[_ERROR_PREFIX.size:].decode("utf-8", errors="replace")


def encode_error_v2(
    code: ErrorCode, message: str, retry_after: float | None = None
) -> bytes:
    """v2 ERROR body: code, retry-after hint, then the UTF-8 message.

    ``retry_after`` is the server's advice (in seconds) on when a
    retry might succeed — populated for load-shedding refusals (BUSY,
    QUOTA) and NaN-encoded as "no hint" otherwise.  Only sent on
    connections that negotiated protocol v2; v1 peers get the
    :func:`encode_error` layout.
    """
    hint = float("nan") if retry_after is None else float(retry_after)
    return _ERROR_V2_PREFIX.pack(int(code), hint) + message.encode("utf-8")


def decode_error_v2(body: bytes) -> "tuple[ErrorCode, str, float | None]":
    """Inverse of :func:`encode_error_v2`; unknown codes map to INTERNAL."""
    if len(body) < _ERROR_V2_PREFIX.size:
        raise TruncatedFrameError(
            f"v2 ERROR body is {len(body)} bytes, need >= {_ERROR_V2_PREFIX.size}"
        )
    code, hint = _ERROR_V2_PREFIX.unpack(body[: _ERROR_V2_PREFIX.size])
    try:
        error_code = ErrorCode(code)
    except ValueError:
        error_code = ErrorCode.INTERNAL
    message = body[_ERROR_V2_PREFIX.size:].decode("utf-8", errors="replace")
    return error_code, message, None if np.isnan(hint) else float(hint)


def encode_stats(payload: dict) -> bytes:
    """STATS_OK body: the tenancy/metrics view as UTF-8 JSON."""
    return json.dumps(payload).encode("utf-8")


def decode_stats(body: bytes) -> dict:
    """Inverse of :func:`encode_stats`."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"STATS_OK body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise WireFormatError("STATS_OK body must be a JSON object")
    return payload


# -- socket transport --------------------------------------------------------------


def send_frame(sock: socket.socket, msg_type: MessageType, body: bytes = b"") -> None:
    """Write one complete frame to a connected socket."""
    sock.sendall(encode_frame(msg_type, body))


def _recv_exact(
    sock: socket.socket,
    count: int,
    deadline: float | None,
    allow_clean_eof: bool = False,
) -> bytes | None:
    """Read exactly ``count`` bytes, racing a per-frame deadline.

    Every ``recv`` gets only the *remaining* budget — a peer trickling
    one byte per call (slow loris) cannot reset the clock; the whole
    frame must arrive within the deadline or ``socket.timeout`` fires.
    ``allow_clean_eof`` returns ``None`` when the peer closes before
    the first byte (a normal end of stream); mid-read EOF always
    raises :class:`TruncatedFrameError`.
    """
    chunks: list[bytes] = []
    received = 0
    while received < count:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise socket.timeout("frame deadline exceeded")
            sock.settimeout(remaining)
        chunk = sock.recv(count - received)
        if not chunk:
            if not chunks and allow_clean_eof:
                return None
            raise TruncatedFrameError(
                f"peer closed the stream {count - received} bytes short of a frame"
            )
        chunks.append(chunk)
        received += len(chunk)
    return b"".join(chunks)


def read_frame_from(
    sock: socket.socket,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    timeout: float | None = None,
) -> "tuple[MessageType, bytes] | None":
    """Read one frame off a socket; ``None`` on a clean end of stream.

    ``timeout`` bounds the **whole frame** (header + body) — see
    :func:`_recv_exact` for the slow-loris rationale.  The header is
    validated before the body is read, so a frame whose length prefix
    exceeds ``max_body_bytes`` raises :class:`FrameTooLargeError`
    without buffering its body.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    header = _recv_exact(sock, HEADER_SIZE, deadline, allow_clean_eof=True)
    if header is None:
        return None
    msg_type, length = parse_header(header, max_body_bytes)
    body = _recv_exact(sock, length, deadline) if length else b""
    return msg_type, body
