"""Network serving: the wire codec, TCP server, tenancy, and client.

The socket face of the serving stack (PR 6).  The dataflow — normative
diagram in ``docs/ARCHITECTURE.md`` — is::

    client ──▶ codec ──▶ tenancy ──▶ frontend ──▶ scheduler

* :mod:`repro.net.codec` — framed, versioned binary wire layout
  (normative in ``docs/FORMATS.md``, "Network envelope").
* :mod:`repro.net.server` — threaded TCP server over one
  :class:`~repro.serve.frontend.ServingFrontend`.
* :mod:`repro.net.tenancy` — per-``key_id`` auth, admission quotas,
  and per-tenant metrics.
* :mod:`repro.net.client` — :class:`NetClient`, mirroring in-process
  serving ergonomics over the socket.
"""

from repro.net.client import (
    ConnectionClosedError,
    NetClient,
    RemoteError,
    RequestTimeoutError,
)
from repro.net.codec import (
    DEFAULT_MAX_BODY_BYTES,
    PROTOCOL_VERSION_MAX,
    ErrorCode,
    FrameTooLargeError,
    MessageType,
    TruncatedFrameError,
    WireFormatError,
)
from repro.net.server import ConnectionLimitError, NetServer
from repro.net.tenancy import (
    AuthError,
    QuotaExceededError,
    RateLimitError,
    TenantAdmission,
    TenantChannel,
    TenantConfig,
    TenantRegistry,
    TokenBucket,
)

__all__ = [
    "NetClient",
    "NetServer",
    "RemoteError",
    "ConnectionClosedError",
    "RequestTimeoutError",
    "ConnectionLimitError",
    "MessageType",
    "ErrorCode",
    "WireFormatError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "DEFAULT_MAX_BODY_BYTES",
    "PROTOCOL_VERSION_MAX",
    "AuthError",
    "QuotaExceededError",
    "RateLimitError",
    "TokenBucket",
    "TenantConfig",
    "TenantRegistry",
    "TenantAdmission",
    "TenantChannel",
]
