"""Network serving: the wire codec, TCP server, tenancy, and client.

The socket face of the serving stack (PR 6).  The dataflow — normative
diagram in ``docs/ARCHITECTURE.md`` — is::

    client ──▶ codec ──▶ tenancy ──▶ frontend ──▶ scheduler

* :mod:`repro.net.codec` — framed, versioned binary wire layout
  (normative in ``docs/FORMATS.md``, "Network envelope").
* :mod:`repro.net.server` — threaded TCP server over one
  :class:`~repro.serve.frontend.ServingFrontend`.
* :mod:`repro.net.tenancy` — per-``key_id`` auth, admission quotas,
  and per-tenant metrics.
* :mod:`repro.net.client` — :class:`NetClient`, mirroring in-process
  serving ergonomics over the socket.
"""

from repro.net.client import ConnectionClosedError, NetClient, RemoteError
from repro.net.codec import (
    DEFAULT_MAX_BODY_BYTES,
    ErrorCode,
    FrameTooLargeError,
    MessageType,
    TruncatedFrameError,
    WireFormatError,
)
from repro.net.server import NetServer
from repro.net.tenancy import (
    AuthError,
    QuotaExceededError,
    TenantAdmission,
    TenantChannel,
    TenantConfig,
    TenantRegistry,
)

__all__ = [
    "NetClient",
    "NetServer",
    "RemoteError",
    "ConnectionClosedError",
    "MessageType",
    "ErrorCode",
    "WireFormatError",
    "TruncatedFrameError",
    "FrameTooLargeError",
    "DEFAULT_MAX_BODY_BYTES",
    "AuthError",
    "QuotaExceededError",
    "TenantConfig",
    "TenantRegistry",
    "TenantAdmission",
    "TenantChannel",
]
