"""The long-running TCP server over a serving frontend.

:class:`NetServer` is the socket face of the serving stack.  It owns no
execution path of its own: every query that arrives over the wire is
decoded by the codec, admitted by the tenancy layer, and submitted to
the **same** :class:`~repro.serve.frontend.ServingFrontend` /
:class:`~repro.serve.scheduler.BatchScheduler` pair that in-process
callers use — micro-batching, caching, backpressure, and metrics apply
identically whether a query arrived by function call or by socket.

```
                 ┌── per connection ───────────────────────────────┐
 TCP accept ──▶  │ reader thread: frame → decode → tenancy.submit ─┼──▶ frontend ──▶ scheduler
 (thread per     │        │ (futures + reply slot, FIFO)           │        │
  connection)    │ writer thread: await futures → encode → send ◀──┼────────┘
                 └─────────────────────────────────────────────────┘
```

Connection protocol: the first frame must be HELLO (``key_id`` +
token); the server authenticates against its
:class:`~repro.net.tenancy.TenantRegistry` and answers HELLO_OK or an
AUTH error.  After that, any number of QUERY and STATS frames; every
request frame receives exactly one RESULT/STATS_OK/ERROR reply, **in
request order**.

Fault containment — each chaos mode fails only its own connection:

* **Slow loris** — frame reads run against a per-frame deadline
  (:func:`repro.net.codec.read_frame_from`), so a peer trickling bytes
  is cut off when the frame's budget expires.  Nothing of a partial
  frame ever reaches the scheduler.
* **Oversized body** — the length prefix is validated before the body
  is read; the connection gets a FORMAT error and closes without
  buffering the declared payload.
* **Mid-stream disconnect** — a vanished peer kills its reader; the
  writer drains (futures still settle in the scheduler, quota returns
  via completion callbacks) and exits on the send failure.  The
  scheduler never learns the client left.

The split into reader and writer threads is what keeps the socket path
**open-loop**: the reader admits frames as fast as they arrive while
answers are still in flight, so a single pipelined connection gives the
scheduler real batching opportunities instead of one-query lockstep.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading

from repro.core.errors import KeyMismatchError, ParameterError
from repro.net import codec
from repro.net.codec import ErrorCode, FrameTooLargeError, MessageType, WireFormatError
from repro.net.tenancy import (
    AuthError,
    QuotaExceededError,
    TenantAdmission,
    TenantConfig,
    TenantRegistry,
)
from repro.serve.frontend import (
    DeadlineExceededError,
    QueueFullError,
    ServingFrontend,
)

__all__ = ["NetServer", "DEFAULT_FRAME_TIMEOUT", "ConnectionLimitError"]

#: Default per-frame read deadline in seconds (the slow-loris budget).
DEFAULT_FRAME_TIMEOUT = 30.0


class ConnectionLimitError(QueueFullError):
    """The server-wide connection limit refused this connection.

    A :class:`~repro.serve.frontend.QueueFullError` subclass (BUSY on
    the wire) carrying ``retry_after`` — the server's hint on when an
    accept slot may be free again.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def classify_error(exc: BaseException) -> ErrorCode:
    """Map a server-side exception to its wire error code."""
    if isinstance(exc, AuthError):
        return ErrorCode.AUTH
    if isinstance(exc, DeadlineExceededError):
        return ErrorCode.DEADLINE
    if isinstance(exc, QuotaExceededError):
        return ErrorCode.QUOTA
    if isinstance(exc, QueueFullError):
        return ErrorCode.BUSY
    if isinstance(exc, WireFormatError):
        return ErrorCode.FORMAT
    if isinstance(exc, KeyMismatchError):
        return ErrorCode.KEY
    if isinstance(exc, ParameterError):
        return ErrorCode.PARAMETER
    return ErrorCode.INTERNAL


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One client connection: a frame reader plus an ordered reply writer."""

    # -- writer side -------------------------------------------------------------

    def _writer_loop(self) -> None:
        """Pop reply slots in request order; wait, encode, send.

        Each slot is either pre-encoded ``bytes`` (errors, stats) or a
        ``(futures, )`` tuple whose answers are awaited *here*, off the
        reader thread — the reader keeps admitting new frames while
        earlier answers are still computing.  A send failure means the
        client is gone; pending futures still settle inside the
        scheduler (quota releases ride their completion callbacks), so
        the writer simply stops writing.
        """
        sock = self.request
        while True:
            slot = self._outbox.get()
            if slot is None:
                return
            try:
                payload = slot() if callable(slot) else slot
                sock.sendall(payload)
            except OSError:
                return  # peer gone; scheduler-side work settles on its own

    def _reply_result(self, futures, v2: bool = False) -> bytes:
        """Await one QUERY frame's futures and encode its reply."""
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                # One reply per request frame: the first per-query
                # failure answers for the frame (siblings still settle
                # and release their quota via callbacks).
                return self._error_frame(exc, v2)
        batch = codec.SearchResultBatch(results)
        return codec.encode_frame(
            MessageType.RESULT, codec.encode_result_batch(batch)
        )

    # -- reader side -------------------------------------------------------------

    def _error_frame(self, exc: BaseException, v2: bool) -> bytes:
        """Encode an ERROR frame in the version the request negotiated.

        A peer proves it speaks v2 by sending QUERY_V2; its errors then
        carry the v2 body with the ``retry_after`` hint (load-shedding
        refusals attach one).  Everything earlier — including the
        handshake and connection-limit refusals — stays in the v1
        layout every peer parses.
        """
        code = classify_error(exc)
        if v2:
            body = codec.encode_error_v2(
                code, str(exc), getattr(exc, "retry_after", None)
            )
        else:
            body = codec.encode_error(code, str(exc))
        return codec.encode_frame(MessageType.ERROR, body)

    def _send_error(self, exc: BaseException, v2: bool = False) -> None:
        """Enqueue an in-order ERROR reply for the frame just read."""
        self._outbox.put(self._error_frame(exc, v2))

    def _handshake(self) -> bool:
        """Authenticate the connection's first frame (HELLO)."""
        server: NetServer = self.server.owner
        frame = codec.read_frame_from(
            self.request, server.max_body_bytes, server.frame_timeout
        )
        if frame is None:
            return False
        msg_type, body = frame
        if msg_type is not MessageType.HELLO:
            self._outbox.put(
                codec.encode_frame(
                    MessageType.ERROR,
                    codec.encode_error(
                        ErrorCode.FORMAT,
                        f"expected HELLO as the first frame, got {msg_type.name}",
                    ),
                )
            )
            return False
        key_id, token = codec.decode_hello(body)
        try:
            self._channel = server.admission.channel(key_id, token or None)
        except AuthError as exc:
            self._send_error(exc)
            return False
        # HELLO_OK advertises the server's highest negotiable protocol
        # version.  v1 clients ignore the body (negotiation is free for
        # them); v2 clients answer with QUERY_V2 frames from then on.
        self._outbox.put(
            codec.encode_frame(
                MessageType.HELLO_OK,
                codec.encode_hello_ok(codec.PROTOCOL_VERSION_MAX),
            )
        )
        return True

    def _serve_frames(self) -> None:
        """The post-handshake request loop (QUERY / STATS frames)."""
        server: NetServer = self.server.owner
        while not server.closing:
            frame = codec.read_frame_from(
                self.request, server.max_body_bytes, server.frame_timeout
            )
            if frame is None:
                return
            msg_type, body = frame
            if msg_type in (MessageType.QUERY, MessageType.QUERY_V2):
                # Error-body encoding follows the *request*: a QUERY_V2
                # frame gets v2 ERROR replies (retry hints attached),
                # anything else stays in the v1 layout every peer parses.
                v2 = msg_type is MessageType.QUERY_V2
                try:
                    if v2:
                        batch, deadline_ms = codec.decode_query_batch_v2(body)
                    else:
                        batch, deadline_ms = codec.decode_query_batch(body), None
                    futures = self._channel.submit_batch(
                        list(batch), deadline_ms=deadline_ms
                    )
                except Exception as exc:
                    self._send_error(exc, v2)
                    continue
                self._outbox.put(
                    lambda futures=futures, v2=v2: self._reply_result(futures, v2)
                )
            elif msg_type is MessageType.STATS:
                self._outbox.put(
                    codec.encode_frame(
                        MessageType.STATS_OK, codec.encode_stats(server.stats())
                    )
                )
            else:
                self._send_error(
                    WireFormatError(
                        f"unexpected {msg_type.name} frame after the handshake"
                    )
                )

    # -- socketserver plumbing ---------------------------------------------------

    def setup(self) -> None:  # noqa: D102 (socketserver hook)
        self.request.settimeout(self.server.owner.frame_timeout)
        self._outbox: "queue.Queue" = queue.Queue()
        self._channel = None
        self._admitted = self.server.owner._acquire_connection()
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-net-writer", daemon=True
        )
        self._writer.start()

    def handle(self) -> None:  # noqa: D102 (socketserver hook)
        try:
            if not self._admitted:
                # Refused before the handshake: the peer gets one BUSY
                # error (v1 layout — nothing is negotiated yet) with a
                # retry hint, then the connection closes.
                server: NetServer = self.server.owner
                self._send_error(
                    ConnectionLimitError(
                        "server is at its connection limit "
                        f"({server.max_connections}); retry later",
                        retry_after=1.0,
                    )
                )
                return
            if self._handshake():
                self._serve_frames()
        except (FrameTooLargeError, WireFormatError) as exc:
            # Framing is unrecoverable mid-stream (the body was never
            # read / the stream position is unknowable): report, close.
            self._send_error(exc)
        except (socket.timeout, TimeoutError):
            pass  # slow-loris / idle deadline: drop the connection
        except OSError:
            pass  # peer vanished mid-read

    def finish(self) -> None:  # noqa: D102 (socketserver hook)
        self._outbox.put(None)
        self._writer.join(timeout=DEFAULT_FRAME_TIMEOUT)
        if self._admitted:
            self.server.owner._release_connection()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP server with an owner backref."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, owner: "NetServer", address) -> None:
        self.owner = owner
        super().__init__(address, _ConnectionHandler)


class NetServer:
    """The wire-protocol server over one serving frontend.

    Parameters
    ----------
    frontend:
        The :class:`~repro.serve.frontend.ServingFrontend` every
        network query is submitted to (the single execution path).
    tenants:
        The admitted tenants: a :class:`TenantRegistry`, or a list of
        :class:`TenantConfig` to build one from.
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` for the bound one).
    max_body_bytes:
        Frame-body cap; larger length prefixes are refused before the
        body is read.
    frame_timeout:
        Per-frame read deadline in seconds (the slow-loris budget) —
        also the idle timeout between a connection's frames.
    max_connections:
        Server-wide cap on concurrently open connections; an accept
        over the cap is answered with one BUSY error (retry hint
        attached) and closed.  ``None`` = unlimited.

    The server is a context manager: ``with NetServer(...) as server:``
    binds, starts accepting in a background thread, and shuts down on
    exit.  The frontend's lifecycle stays with its creator — wrap the
    ``NetServer`` *inside* the frontend's ``with`` block.
    """

    def __init__(
        self,
        frontend: ServingFrontend,
        tenants: "TenantRegistry | list[TenantConfig]",
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = codec.DEFAULT_MAX_BODY_BYTES,
        frame_timeout: float = DEFAULT_FRAME_TIMEOUT,
        max_connections: int | None = None,
    ) -> None:
        if max_connections is not None and max_connections < 1:
            raise ParameterError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        registry = (
            tenants
            if isinstance(tenants, TenantRegistry)
            else TenantRegistry(list(tenants))
        )
        self.admission = TenantAdmission(frontend, registry)
        self.max_body_bytes = max_body_bytes
        self.frame_timeout = frame_timeout
        self.max_connections = max_connections
        self.closing = False
        self._connection_lock = threading.Lock()
        self._connections = 0
        self._tcp = _ThreadingTCPServer(self, (host, port))
        self._thread: threading.Thread | None = None

    def _acquire_connection(self) -> bool:
        """Claim an accept slot; ``False`` (and a metric) over the cap."""
        with self._connection_lock:
            if (
                self.max_connections is not None
                and self._connections >= self.max_connections
            ):
                self.frontend.metrics.record_connection_refused()
                return False
            self._connections += 1
            return True

    def _release_connection(self) -> None:
        with self._connection_lock:
            self._connections = max(0, self._connections - 1)

    @property
    def connections(self) -> int:
        """Connections currently admitted (past the limit check)."""
        with self._connection_lock:
            return self._connections

    @property
    def frontend(self) -> ServingFrontend:
        """The serving frontend network queries are submitted to."""
        return self.admission.frontend

    @property
    def registry(self) -> TenantRegistry:
        """The tenant registry guarding admission."""
        return self.admission.registry

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves an ephemeral port 0)."""
        return self._tcp.server_address

    def stats(self) -> dict:
        """The ``stats`` wire payload: tenancy view + frontend metrics."""
        payload = self.admission.stats()
        payload["frontend"] = self.frontend.metrics.snapshot().as_dict()
        return payload

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "NetServer":
        """Begin accepting connections in a background thread."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-net-accept",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_until_interrupt(self) -> None:
        """Foreground accept loop (the CLI ``listen`` body)."""
        try:
            self._tcp.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting and release the listening socket (idempotent)."""
        if self.closing:
            return
        self.closing = True
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
