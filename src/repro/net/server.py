"""The long-running TCP server over a serving frontend.

:class:`NetServer` is the socket face of the serving stack.  It owns no
execution path of its own: every query that arrives over the wire is
decoded by the codec, admitted by the tenancy layer, and submitted to
the **same** :class:`~repro.serve.frontend.ServingFrontend` /
:class:`~repro.serve.scheduler.BatchScheduler` pair that in-process
callers use — micro-batching, caching, backpressure, and metrics apply
identically whether a query arrived by function call or by socket.

```
                 ┌── per connection ───────────────────────────────┐
 TCP accept ──▶  │ reader thread: frame → decode → tenancy.submit ─┼──▶ frontend ──▶ scheduler
 (thread per     │        │ (futures + reply slot, FIFO)           │        │
  connection)    │ writer thread: await futures → encode → send ◀──┼────────┘
                 └─────────────────────────────────────────────────┘
```

Connection protocol: the first frame must be HELLO (``key_id`` +
token); the server authenticates against its
:class:`~repro.net.tenancy.TenantRegistry` and answers HELLO_OK or an
AUTH error.  After that, any number of QUERY and STATS frames; every
request frame receives exactly one RESULT/STATS_OK/ERROR reply, **in
request order**.

Fault containment — each chaos mode fails only its own connection:

* **Slow loris** — frame reads run against a per-frame deadline
  (:func:`repro.net.codec.read_frame_from`), so a peer trickling bytes
  is cut off when the frame's budget expires.  Nothing of a partial
  frame ever reaches the scheduler.
* **Oversized body** — the length prefix is validated before the body
  is read; the connection gets a FORMAT error and closes without
  buffering the declared payload.
* **Mid-stream disconnect** — a vanished peer kills its reader; the
  writer drains (futures still settle in the scheduler, quota returns
  via completion callbacks) and exits on the send failure.  The
  scheduler never learns the client left.

The split into reader and writer threads is what keeps the socket path
**open-loop**: the reader admits frames as fast as they arrive while
answers are still in flight, so a single pipelined connection gives the
scheduler real batching opportunities instead of one-query lockstep.
"""

from __future__ import annotations

import queue
import socket
import socketserver
import threading

from repro.core.errors import KeyMismatchError, ParameterError
from repro.net import codec
from repro.net.codec import ErrorCode, FrameTooLargeError, MessageType, WireFormatError
from repro.net.tenancy import (
    AuthError,
    QuotaExceededError,
    TenantAdmission,
    TenantConfig,
    TenantRegistry,
)
from repro.serve.frontend import QueueFullError, ServingFrontend

__all__ = ["NetServer", "DEFAULT_FRAME_TIMEOUT"]

#: Default per-frame read deadline in seconds (the slow-loris budget).
DEFAULT_FRAME_TIMEOUT = 30.0


def classify_error(exc: BaseException) -> ErrorCode:
    """Map a server-side exception to its wire error code."""
    if isinstance(exc, AuthError):
        return ErrorCode.AUTH
    if isinstance(exc, QuotaExceededError):
        return ErrorCode.QUOTA
    if isinstance(exc, QueueFullError):
        return ErrorCode.BUSY
    if isinstance(exc, WireFormatError):
        return ErrorCode.FORMAT
    if isinstance(exc, KeyMismatchError):
        return ErrorCode.KEY
    if isinstance(exc, ParameterError):
        return ErrorCode.PARAMETER
    return ErrorCode.INTERNAL


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One client connection: a frame reader plus an ordered reply writer."""

    # -- writer side -------------------------------------------------------------

    def _writer_loop(self) -> None:
        """Pop reply slots in request order; wait, encode, send.

        Each slot is either pre-encoded ``bytes`` (errors, stats) or a
        ``(futures, )`` tuple whose answers are awaited *here*, off the
        reader thread — the reader keeps admitting new frames while
        earlier answers are still computing.  A send failure means the
        client is gone; pending futures still settle inside the
        scheduler (quota releases ride their completion callbacks), so
        the writer simply stops writing.
        """
        sock = self.request
        while True:
            slot = self._outbox.get()
            if slot is None:
                return
            try:
                payload = slot() if callable(slot) else slot
                sock.sendall(payload)
            except OSError:
                return  # peer gone; scheduler-side work settles on its own

    def _reply_result(self, futures) -> bytes:
        """Await one QUERY frame's futures and encode its reply."""
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                # One reply per request frame: the first per-query
                # failure answers for the frame (siblings still settle
                # and release their quota via callbacks).
                return codec.encode_frame(
                    MessageType.ERROR,
                    codec.encode_error(classify_error(exc), str(exc)),
                )
        batch = codec.SearchResultBatch(results)
        return codec.encode_frame(
            MessageType.RESULT, codec.encode_result_batch(batch)
        )

    # -- reader side -------------------------------------------------------------

    def _send_error(self, exc: BaseException) -> None:
        """Enqueue an in-order ERROR reply for the frame just read."""
        self._outbox.put(
            codec.encode_frame(
                MessageType.ERROR,
                codec.encode_error(classify_error(exc), str(exc)),
            )
        )

    def _handshake(self) -> bool:
        """Authenticate the connection's first frame (HELLO)."""
        server: NetServer = self.server.owner
        frame = codec.read_frame_from(
            self.request, server.max_body_bytes, server.frame_timeout
        )
        if frame is None:
            return False
        msg_type, body = frame
        if msg_type is not MessageType.HELLO:
            self._outbox.put(
                codec.encode_frame(
                    MessageType.ERROR,
                    codec.encode_error(
                        ErrorCode.FORMAT,
                        f"expected HELLO as the first frame, got {msg_type.name}",
                    ),
                )
            )
            return False
        key_id, token = codec.decode_hello(body)
        try:
            self._channel = server.admission.channel(key_id, token or None)
        except AuthError as exc:
            self._send_error(exc)
            return False
        self._outbox.put(codec.encode_frame(MessageType.HELLO_OK))
        return True

    def _serve_frames(self) -> None:
        """The post-handshake request loop (QUERY / STATS frames)."""
        server: NetServer = self.server.owner
        while not server.closing:
            frame = codec.read_frame_from(
                self.request, server.max_body_bytes, server.frame_timeout
            )
            if frame is None:
                return
            msg_type, body = frame
            if msg_type is MessageType.QUERY:
                try:
                    batch = codec.decode_query_batch(body)
                    futures = self._channel.submit_batch(list(batch))
                except Exception as exc:
                    self._send_error(exc)
                    continue
                self._outbox.put(
                    lambda futures=futures: self._reply_result(futures)
                )
            elif msg_type is MessageType.STATS:
                self._outbox.put(
                    codec.encode_frame(
                        MessageType.STATS_OK, codec.encode_stats(server.stats())
                    )
                )
            else:
                self._send_error(
                    WireFormatError(
                        f"unexpected {msg_type.name} frame after the handshake"
                    )
                )

    # -- socketserver plumbing ---------------------------------------------------

    def setup(self) -> None:  # noqa: D102 (socketserver hook)
        self.request.settimeout(self.server.owner.frame_timeout)
        self._outbox: "queue.Queue" = queue.Queue()
        self._channel = None
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-net-writer", daemon=True
        )
        self._writer.start()

    def handle(self) -> None:  # noqa: D102 (socketserver hook)
        try:
            if self._handshake():
                self._serve_frames()
        except (FrameTooLargeError, WireFormatError) as exc:
            # Framing is unrecoverable mid-stream (the body was never
            # read / the stream position is unknowable): report, close.
            self._send_error(exc)
        except (socket.timeout, TimeoutError):
            pass  # slow-loris / idle deadline: drop the connection
        except OSError:
            pass  # peer vanished mid-read

    def finish(self) -> None:  # noqa: D102 (socketserver hook)
        self._outbox.put(None)
        self._writer.join(timeout=DEFAULT_FRAME_TIMEOUT)


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    """Thread-per-connection TCP server with an owner backref."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, owner: "NetServer", address) -> None:
        self.owner = owner
        super().__init__(address, _ConnectionHandler)


class NetServer:
    """The wire-protocol server over one serving frontend.

    Parameters
    ----------
    frontend:
        The :class:`~repro.serve.frontend.ServingFrontend` every
        network query is submitted to (the single execution path).
    tenants:
        The admitted tenants: a :class:`TenantRegistry`, or a list of
        :class:`TenantConfig` to build one from.
    host / port:
        Bind address; port 0 picks an ephemeral port (see
        :attr:`address` for the bound one).
    max_body_bytes:
        Frame-body cap; larger length prefixes are refused before the
        body is read.
    frame_timeout:
        Per-frame read deadline in seconds (the slow-loris budget) —
        also the idle timeout between a connection's frames.

    The server is a context manager: ``with NetServer(...) as server:``
    binds, starts accepting in a background thread, and shuts down on
    exit.  The frontend's lifecycle stays with its creator — wrap the
    ``NetServer`` *inside* the frontend's ``with`` block.
    """

    def __init__(
        self,
        frontend: ServingFrontend,
        tenants: "TenantRegistry | list[TenantConfig]",
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = codec.DEFAULT_MAX_BODY_BYTES,
        frame_timeout: float = DEFAULT_FRAME_TIMEOUT,
    ) -> None:
        registry = (
            tenants
            if isinstance(tenants, TenantRegistry)
            else TenantRegistry(list(tenants))
        )
        self.admission = TenantAdmission(frontend, registry)
        self.max_body_bytes = max_body_bytes
        self.frame_timeout = frame_timeout
        self.closing = False
        self._tcp = _ThreadingTCPServer(self, (host, port))
        self._thread: threading.Thread | None = None

    @property
    def frontend(self) -> ServingFrontend:
        """The serving frontend network queries are submitted to."""
        return self.admission.frontend

    @property
    def registry(self) -> TenantRegistry:
        """The tenant registry guarding admission."""
        return self.admission.registry

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves an ephemeral port 0)."""
        return self._tcp.server_address

    def stats(self) -> dict:
        """The ``stats`` wire payload: tenancy view + frontend metrics."""
        payload = self.admission.stats()
        payload["frontend"] = self.frontend.metrics.snapshot().as_dict()
        return payload

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "NetServer":
        """Begin accepting connections in a background thread."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._tcp.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="repro-net-accept",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_until_interrupt(self) -> None:
        """Foreground accept loop (the CLI ``listen`` body)."""
        try:
            self._tcp.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.close()

    def close(self) -> None:
        """Stop accepting and release the listening socket (idempotent)."""
        if self.closing:
            return
        self.closing = True
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
