"""Multi-tenant admission: per-``key_id`` auth, quotas, and metrics.

The serving frontend (PR 5) is a single shared resource — one bounded
queue, one scheduler.  Exposed to the network, "shared" needs a policy:
*which* key holders may submit, *how much* of the queue each may hold,
and *who* is responsible when the server runs hot.  This module is that
policy layer, sitting between the wire codec and the frontend:

```
 client ──▶ codec ──▶ tenancy (auth · quota · per-tenant metrics) ──▶ frontend ──▶ scheduler
```

* A **tenant is a DCE ``key_id``** — the natural identity of this
  system: every query already carries the tag of the key it was
  encrypted under, the batch envelope carries it even for
  zero-trapdoor ``filter_only`` traffic, and the scheduler already
  groups micro-batches by it.  :class:`TenantConfig` attaches an auth
  token and an admission quota to that identity.
* **Auth happens at the boundary.**  :meth:`TenantRegistry.authenticate`
  runs on the HELLO frame, before any ciphertext is decoded into the
  serving path; tokens compare in constant time.
* **Quotas bound in-flight queries, not rates.**  Each tenant may hold
  at most ``max_in_flight`` positions of the bounded admission queue;
  the (N+1)-th concurrent query is refused with
  :class:`QuotaExceededError` while other tenants' admissions are
  untouched — a noisy tenant saturates its own quota, never the
  scheduler.  Quota positions are released by future-completion
  callbacks, so they cannot leak on failures, cancellations, or
  disconnected clients.
* **Per-tenant metrics.**  Every tenant carries its own
  :class:`~repro.serve.metrics.ServerMetrics`; :meth:`Tenant.stats`
  is the per-tenant slice of the ``stats`` wire message and of the
  CLI's ``serve --json`` tenancy view.

:class:`TenantAdmission` binds a registry to a frontend;
:meth:`TenantAdmission.channel` authenticates once per connection and
returns the :class:`TenantChannel` whose ``submit`` mirrors
:meth:`~repro.serve.frontend.ServingFrontend.submit` with the quota
and accounting applied.
"""

from __future__ import annotations

import hmac
import threading
import time
from concurrent.futures import Future

from repro.core.errors import PPANNSError
from repro.core.protocol import EncryptedQuery, SearchResult
from repro.serve.frontend import ServingFrontend
from repro.serve.metrics import ServerMetrics

__all__ = [
    "AuthError",
    "QuotaExceededError",
    "RateLimitError",
    "TokenBucket",
    "TenantConfig",
    "Tenant",
    "TenantRegistry",
    "TenantAdmission",
    "TenantChannel",
]


class AuthError(PPANNSError):
    """Authentication refused: unknown tenant or wrong token."""


class QuotaExceededError(PPANNSError):
    """Admission refused: the tenant's in-flight quota is exhausted.

    The per-tenant counterpart of
    :class:`~repro.serve.frontend.QueueFullError` — backpressure scoped
    to one ``key_id`` so a noisy tenant sheds its own load instead of
    starving the shared scheduler.
    """


class RateLimitError(QuotaExceededError):
    """Admission refused: the tenant's token-bucket rate is exhausted.

    A subclass of :class:`QuotaExceededError` (same QUOTA wire code, so
    v1 peers see a familiar refusal) carrying ``retry_after`` — the
    bucket's own estimate, in seconds, of when enough tokens will have
    accrued for the refused request.  Protocol-v2 connections forward
    the hint in the ERROR frame; the resilient client sleeps on it
    instead of guessing.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` cap.

    The *rate* half of tenant admission (the in-flight quota bounds
    concurrency; this bounds throughput).  Tokens accrue continuously
    at ``rate`` up to ``burst``; each admitted query spends one.
    ``clock`` is injectable (monotonic seconds) so tests can drive the
    bucket deterministically.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0:
            raise PPANNSError(f"rate must be > 0 tokens/second, got {rate}")
        if burst < 1:
            raise PPANNSError(f"burst must be >= 1 token, got {burst}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self._burst
        self._updated_at = clock()

    @property
    def rate(self) -> float:
        """Sustained refill rate in tokens per second."""
        return self._rate

    @property
    def burst(self) -> float:
        """Bucket capacity (the largest instantaneous spend)."""
        return self._burst

    def try_acquire(self, count: int = 1) -> float | None:
        """Spend ``count`` tokens; ``None`` on success.

        On refusal returns the **retry-after hint**: the seconds until
        the bucket will have accrued enough tokens for this request
        (all-or-nothing, like the in-flight quota — a batch either fits
        or nothing is spent).
        """
        with self._lock:
            now = self._clock()
            elapsed = max(0.0, now - self._updated_at)
            self._tokens = min(self._burst, self._tokens + elapsed * self._rate)
            self._updated_at = now
            if count <= self._tokens:
                self._tokens -= count
                return None
            return (count - self._tokens) / self._rate


class TenantConfig:
    """Static tenant definition: identity, credential, quota.

    Parameters
    ----------
    key_id:
        The DCE key tag this tenant submits under (the tenant identity).
    token:
        Shared-secret auth token presented in the HELLO frame; ``None``
        admits the tenant without a credential (loopback / testing).
    max_in_flight:
        Admission quota: the most queries this tenant may hold in the
        serving queue at once; ``None`` = unbounded (only the global
        queue bound applies).
    rate:
        Sustained admission rate in queries/second enforced by a
        :class:`TokenBucket`; ``None`` = unmetered.  Refusals raise
        :class:`RateLimitError` with a retry-after hint.
    burst:
        Token-bucket capacity (largest instantaneous batch the rate
        quota admits).  Defaults to ``max(rate, 1)`` — one second of
        headroom — and requires ``rate``.
    """

    def __init__(
        self,
        key_id: int,
        token: str | None = None,
        max_in_flight: int | None = None,
        rate: float | None = None,
        burst: float | None = None,
    ) -> None:
        if max_in_flight is not None and max_in_flight < 1:
            raise PPANNSError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if rate is not None and rate <= 0:
            raise PPANNSError(f"rate must be > 0 queries/second, got {rate}")
        if burst is not None:
            if rate is None:
                raise PPANNSError("burst requires a rate")
            if burst < 1:
                raise PPANNSError(f"burst must be >= 1, got {burst}")
        self.key_id = int(key_id)
        self.token = token
        self.max_in_flight = max_in_flight
        self.rate = None if rate is None else float(rate)
        self.burst = (
            None
            if rate is None
            else (max(float(rate), 1.0) if burst is None else float(burst))
        )


class Tenant:
    """One tenant's live admission state: quota counter plus metrics.

    ``clock`` feeds the tenant's rate bucket (when its config carries a
    ``rate``); tests inject a fake clock for deterministic refills.
    """

    def __init__(self, config: TenantConfig, clock=time.monotonic) -> None:
        self.config = config
        self.metrics = ServerMetrics()
        self._lock = threading.Lock()
        self._in_flight = 0
        self.bucket = (
            None
            if config.rate is None
            else TokenBucket(config.rate, config.burst, clock=clock)
        )

    @property
    def key_id(self) -> int:
        """The tenant's DCE key tag (its identity)."""
        return self.config.key_id

    @property
    def in_flight(self) -> int:
        """Queries this tenant currently holds in the serving path."""
        with self._lock:
            return self._in_flight

    def try_acquire(self, count: int = 1) -> bool:
        """Reserve ``count`` quota positions; ``False`` when over quota.

        All-or-nothing: a batch either fits entirely under the quota or
        is refused entirely — partial admission would answer a random
        prefix of a batch message.
        """
        quota = self.config.max_in_flight
        with self._lock:
            if quota is not None and self._in_flight + count > quota:
                return False
            self._in_flight += count
            return True

    def release(self, count: int = 1) -> None:
        """Return quota positions (one per settled future)."""
        with self._lock:
            self._in_flight = max(0, self._in_flight - count)

    def check_rate(self, count: int = 1) -> None:
        """Spend rate tokens for ``count`` queries, or refuse typed.

        No-op for unmetered tenants.  Raises :class:`RateLimitError`
        carrying the bucket's retry-after hint when the tokens are not
        there; all-or-nothing, mirroring :meth:`try_acquire`.
        """
        if self.bucket is None:
            return
        retry_after = self.bucket.try_acquire(count)
        if retry_after is not None:
            raise RateLimitError(
                f"tenant {self.key_id} exceeded its rate quota "
                f"({self.config.rate:g} queries/second); retry in "
                f"{retry_after:.3f}s",
                retry_after=retry_after,
            )

    def stats(self) -> dict:
        """The tenant's slice of the tenancy view (JSON-ready)."""
        snapshot = self.metrics.snapshot()
        return {
            "key_id": self.key_id,
            "authenticated": self.config.token is not None,
            "max_in_flight": self.config.max_in_flight,
            "rate": self.config.rate,
            "rate_limited": snapshot.rate_limited,
            "in_flight": self.in_flight,
            "submitted": snapshot.submitted,
            "completed": snapshot.completed,
            "failed": snapshot.failed,
            "rejected": snapshot.rejected,
            "qps": snapshot.qps,
            "latency_p50": snapshot.latency_p50,
            "latency_p95": snapshot.latency_p95,
        }


class TenantRegistry:
    """The known tenants, keyed by ``key_id``; the auth authority."""

    def __init__(self, configs: "list[TenantConfig] | None" = None) -> None:
        self._lock = threading.Lock()
        self._tenants: "dict[int, Tenant]" = {}
        for config in configs or []:
            self.register(config)

    def register(self, config: TenantConfig, clock=time.monotonic) -> Tenant:
        """Add (or replace) a tenant; returns its live state.

        ``clock`` feeds the tenant's rate bucket (injectable for
        deterministic tests).
        """
        tenant = Tenant(config, clock=clock)
        with self._lock:
            self._tenants[config.key_id] = tenant
        return tenant

    def key_ids(self) -> "list[int]":
        """The registered tenant identities, ascending."""
        with self._lock:
            return sorted(self._tenants)

    def get(self, key_id: int) -> Tenant:
        """Look a tenant up without authentication (server-internal)."""
        with self._lock:
            tenant = self._tenants.get(int(key_id))
        if tenant is None:
            raise AuthError(f"unknown tenant key_id {key_id}")
        return tenant

    def authenticate(self, key_id: int, token: str | None) -> Tenant:
        """Check a presented credential; raises :class:`AuthError`.

        Token comparison is constant-time (``hmac.compare_digest``);
        unknown tenants and wrong tokens produce the same error shape,
        so the boundary does not leak which half was wrong.
        """
        with self._lock:
            tenant = self._tenants.get(int(key_id))
        if tenant is None:
            raise AuthError(f"authentication failed for key_id {key_id}")
        expected = tenant.config.token
        if expected is not None:
            if token is None or not hmac.compare_digest(
                expected.encode("utf-8"), token.encode("utf-8")
            ):
                raise AuthError(f"authentication failed for key_id {key_id}")
        return tenant

    def stats(self) -> dict:
        """The full tenancy view: one :meth:`Tenant.stats` per tenant."""
        with self._lock:
            tenants = list(self._tenants.values())
        return {str(tenant.key_id): tenant.stats() for tenant in tenants}


class TenantAdmission:
    """Binds a :class:`TenantRegistry` to a serving frontend.

    The single server-side construction of the admission path: the TCP
    server builds one and opens a :class:`TenantChannel` per
    authenticated connection; the CLI's local ``serve`` path opens one
    directly for its own key.
    """

    def __init__(self, frontend: ServingFrontend, registry: TenantRegistry) -> None:
        self._frontend = frontend
        self._registry = registry

    @property
    def frontend(self) -> ServingFrontend:
        """The wrapped serving frontend."""
        return self._frontend

    @property
    def registry(self) -> TenantRegistry:
        """The tenant registry enforcing auth and quotas."""
        return self._registry

    def channel(self, key_id: int, token: str | None = None) -> "TenantChannel":
        """Authenticate and open a submission channel for one tenant."""
        tenant = self._registry.authenticate(key_id, token)
        return TenantChannel(self._frontend, tenant)

    def stats(self) -> dict:
        """The tenancy view plus the shared frontend's queue state."""
        return {
            "key_ids": self._registry.key_ids(),
            "queue_depth": self._frontend.queue_depth,
            "tenants": self._registry.stats(),
        }


class TenantChannel:
    """A tenant's authenticated submission path into the frontend.

    ``submit`` mirrors :meth:`ServingFrontend.submit` — returns the
    query's future immediately — with three admissions-layer additions:
    the query's key tag must match the channel's tenant (isolation),
    a quota position must be free (:class:`QuotaExceededError`
    otherwise), and the tenant's own metrics record the outcome.  The
    quota position is released by a done-callback on the future, so it
    is returned exactly once no matter how the query settles.
    """

    def __init__(self, frontend: ServingFrontend, tenant: Tenant) -> None:
        self._frontend = frontend
        self._tenant = tenant

    @property
    def tenant(self) -> Tenant:
        """The authenticated tenant this channel submits for."""
        return self._tenant

    def _check_key(self, query: EncryptedQuery) -> None:
        if query.trapdoor.key_id != self._tenant.key_id:
            raise AuthError(
                f"query was encrypted under key_id {query.trapdoor.key_id}, "
                f"but this channel is authenticated for {self._tenant.key_id}"
            )

    def _track(self, future: "Future[SearchResult]") -> "Future[SearchResult]":
        tenant = self._tenant
        submitted_at = time.perf_counter()
        tenant.metrics.record_admitted(tenant.in_flight)

        def settle(done: "Future[SearchResult]") -> None:
            tenant.release()
            latency = time.perf_counter() - submitted_at
            error = done.exception() if not done.cancelled() else None
            if done.cancelled() or error is not None:
                tenant.metrics.record_failed(latency)
            else:
                tenant.metrics.record_completed(latency, done.result())

        future.add_done_callback(settle)
        return future

    def _refuse_rate(self, count: int, exc: RateLimitError) -> None:
        """Account a rate refusal on both metric scopes, then re-raise."""
        tenant = self._tenant
        for _ in range(count):
            tenant.metrics.record_rate_limited()
            tenant.metrics.record_rejected()
            self._frontend.metrics.record_rate_limited()
        raise exc

    def submit(
        self, query: EncryptedQuery, deadline_ms: int | None = None
    ) -> "Future[SearchResult]":
        """Admit one query under the tenant's quotas; returns its future.

        ``deadline_ms`` passes through to
        :meth:`ServingFrontend.submit` — the rate and in-flight quotas
        are checked first, so a refused query never spends its budget
        waiting.
        """
        self._check_key(query)
        tenant = self._tenant
        try:
            tenant.check_rate()
        except RateLimitError as exc:
            self._refuse_rate(1, exc)
        if not tenant.try_acquire():
            tenant.metrics.record_rejected()
            raise QuotaExceededError(
                f"tenant {tenant.key_id} is at its in-flight quota "
                f"({tenant.config.max_in_flight}); retry after completions"
            )
        try:
            future = self._frontend.submit(query, deadline_ms=deadline_ms)
        except Exception:
            tenant.release()
            tenant.metrics.record_rejected()
            raise
        return self._track(future)

    def submit_batch(
        self,
        queries: "list[EncryptedQuery]",
        deadline_ms: int | None = None,
    ) -> "list[Future[SearchResult]]":
        """Admit a whole batch message atomically against the quota.

        All-or-nothing at both quotas: the batch either fits under the
        tenant's remaining rate tokens and in-flight quota or raises
        :class:`RateLimitError` / :class:`QuotaExceededError`
        without submitting anything.  A mid-batch
        :class:`~repro.serve.frontend.QueueFullError` (global bound)
        releases the unsubmitted positions and re-raises; queries
        already submitted run to completion and settle their futures.
        """
        for query in queries:
            self._check_key(query)
        tenant = self._tenant
        count = len(queries)
        if count == 0:
            return []
        try:
            tenant.check_rate(count)
        except RateLimitError as exc:
            self._refuse_rate(count, exc)
        if not tenant.try_acquire(count):
            for _ in range(count):
                tenant.metrics.record_rejected()
            raise QuotaExceededError(
                f"tenant {tenant.key_id} cannot admit {count} queries under "
                f"its in-flight quota ({tenant.config.max_in_flight})"
            )
        futures: "list[Future[SearchResult]]" = []
        try:
            for query in queries:
                futures.append(
                    self._track(
                        self._frontend.submit(query, deadline_ms=deadline_ms)
                    )
                )
        except Exception:
            unsubmitted = count - len(futures)
            tenant.release(unsubmitted)
            for _ in range(unsubmitted):
                tenant.metrics.record_rejected()
            raise
        return futures

    def answer(self, query: EncryptedQuery, timeout: float | None = None):
        """Blocking convenience: ``submit`` + wait (frontend parity)."""
        return self.submit(query).result(timeout=timeout)
