"""The client side of the wire protocol, mirroring in-process serving.

:class:`NetClient` gives remote callers the same ergonomics as
:class:`~repro.serve.frontend.ServingFrontend`: ``submit`` returns a
future immediately, ``answer``/``answer_many`` block, and
``answer_batch`` takes a whole :class:`EncryptedQueryBatch`.  Because
``submit`` is all :func:`~repro.serve.frontend.replay_open_loop` needs,
the open-loop Poisson replayer drives a remote server unchanged — the
loopback bench's parity check depends on exactly that symmetry.

The connection is **pipelined**: a sender may have any number of frames
in flight; a background reader thread matches replies to requests in
FIFO order (the server guarantees one in-order reply per request
frame) and resolves the pending futures.  Wire errors come back as the
same typed exceptions the in-process path raises — a remote
:class:`~repro.net.tenancy.QuotaExceededError` is
``QuotaExceededError`` here too — so calling code cannot tell (and
need not care) which side of the socket refused it.

Resilience (the blocking APIs only — futures from ``submit`` settle
exactly once and are never replayed):

* **Version negotiation.**  The HELLO_OK body advertises the server's
  highest protocol version; the client speaks
  ``min(its max, server max)``.  Under v2 every query rides a QUERY_V2
  frame that can carry ``deadline_ms``, and ERROR replies carry
  retry-after hints.  A v1 server gets plain QUERY frames — the v1
  stream, byte for byte.
* **Retries with capped exponential backoff + full jitter.**  With
  ``retries=N``, the blocking calls retry transient refusals
  (connection loss, BUSY, QUOTA, caller timeouts) up to N times,
  sleeping ``uniform(0, min(cap, base * 2^attempt))`` between attempts
  and honoring any server retry-after hint.  The clock and RNG are
  injectable, so tests drive the schedule deterministically.
* **Safe re-execution.**  A retried query re-sends byte-identical
  ciphertexts; the server's result cache keys on exactly those bytes
  (:func:`repro.serve.cache.query_digest`), so a retry whose first
  attempt actually executed dedups server-side instead of
  double-running.
* **Fail-fast caller timeouts.**  ``answer(timeout=...)`` expiry aborts
  the connection (failing every in-flight future typed) and raises
  :class:`RequestTimeoutError` — the FIFO reply stream is never left
  desynced behind a stalled request.  The next blocking call (or retry
  attempt) reconnects automatically.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.core.errors import KeyMismatchError, ParameterError, PPANNSError
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchResult,
    SearchResultBatch,
)
from repro.net import codec
from repro.net.codec import ErrorCode, MessageType, WireFormatError
from repro.net.tenancy import AuthError, QuotaExceededError
from repro.serve.frontend import DeadlineExceededError, QueueFullError

__all__ = [
    "NetClient",
    "RemoteError",
    "ConnectionClosedError",
    "RequestTimeoutError",
    "exception_for",
]


class RemoteError(PPANNSError):
    """The server reported a failure with no more specific local type."""


class ConnectionClosedError(RemoteError):
    """The connection dropped with requests still awaiting replies."""


class RequestTimeoutError(RemoteError):
    """A caller-side timeout expired waiting for a reply.

    Raised by the blocking APIs instead of a bare
    ``concurrent.futures.TimeoutError``.  The connection is aborted
    first — every in-flight future fails typed and the FIFO reply
    stream cannot desync behind the stalled request; a retrying client
    reconnects on the next attempt.
    """


#: ERROR-frame code → the local exception type it round-trips to.
_ERROR_TYPES = {
    ErrorCode.AUTH: AuthError,
    ErrorCode.QUOTA: QuotaExceededError,
    ErrorCode.BUSY: QueueFullError,
    ErrorCode.FORMAT: WireFormatError,
    ErrorCode.PARAMETER: ParameterError,
    ErrorCode.KEY: KeyMismatchError,
    ErrorCode.INTERNAL: RemoteError,
    ErrorCode.DEADLINE: DeadlineExceededError,
}

#: Transient refusals the blocking APIs replay under ``retries=N``.
#: QUOTA/BUSY clear as completions drain, connection loss and caller
#: timeouts clear on reconnect; everything else (AUTH, KEY, FORMAT,
#: PARAMETER, DEADLINE) would fail identically and is raised at once.
_RETRYABLE = (
    ConnectionClosedError,
    RequestTimeoutError,
    QueueFullError,
    QuotaExceededError,
)


def exception_for(
    code: ErrorCode, message: str, retry_after: float | None = None
) -> PPANNSError:
    """Rehydrate an ERROR frame into the matching typed exception."""
    exc = _ERROR_TYPES.get(code, RemoteError)(message)
    if retry_after is not None:
        exc.retry_after = retry_after
    return exc


class NetClient:
    """One authenticated connection to a :class:`~repro.net.server.NetServer`.

    Parameters
    ----------
    host / port:
        The server's bound address.
    key_id:
        The tenant identity to authenticate as (the DCE key tag the
        connection's queries are encrypted under).
    token:
        The tenant's auth token, if its registration requires one.
    timeout:
        Seconds allowed for connect + handshake, and the per-frame
        read deadline on replies.
    retries:
        How many times the *blocking* APIs replay a transient refusal
        (see the module docstring) before raising it; 0 disables.
    backoff_base / backoff_cap:
        The capped-exponential schedule: attempt ``i`` sleeps a
        full-jitter draw from ``[0, min(cap, base * 2**i)]`` seconds.
    rng / sleep:
        The jitter source (``random.Random``-like) and sleep function —
        injectable so retry tests are deterministic and instant.
    on_retry:
        Optional zero-argument hook invoked once per performed retry —
        the CLI wires it to
        :meth:`~repro.serve.metrics.ServerMetrics.record_retry` so
        client-visible retries reach the metrics view.

    Construction performs the HELLO handshake; an
    :class:`~repro.net.tenancy.AuthError` raised here is the server's
    refusal.  The client is a context manager and thread-safe: any
    thread may ``submit`` while the reader resolves futures.
    """

    def __init__(
        self,
        host: str,
        port: int,
        key_id: int,
        token: str | None = None,
        timeout: float = 30.0,
        retries: int = 0,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        rng=None,
        sleep=time.sleep,
        on_retry=None,
    ) -> None:
        if retries < 0:
            raise ParameterError(f"retries must be >= 0, got {retries}")
        if backoff_base <= 0 or backoff_cap <= 0:
            raise ParameterError(
                "backoff_base and backoff_cap must be > 0, got "
                f"{backoff_base} / {backoff_cap}"
            )
        self.key_id = int(key_id)
        self._host = host
        self._port = port
        self._token = token
        self._timeout = timeout
        self._retries = int(retries)
        self._backoff_base = float(backoff_base)
        self._backoff_cap = float(backoff_cap)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._on_retry = on_retry
        self.retry_count = 0
        self._send_lock = threading.Lock()
        self._connect_lock = threading.Lock()
        self._pending: "deque[tuple[str, object, bool]]" = deque()
        self._closed = False
        self._sock: socket.socket | None = None
        self._reader: threading.Thread | None = None
        self.protocol_version = 1
        self._connect()

    # -- connection lifecycle ----------------------------------------------------

    def _connect(self) -> None:
        """Dial, handshake, negotiate, and start this socket's reader."""
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        try:
            codec.send_frame(
                sock,
                MessageType.HELLO,
                codec.encode_hello(self.key_id, self._token),
            )
            reply = codec.read_frame_from(sock, timeout=self._timeout)
            if reply is None:
                raise ConnectionClosedError(
                    "server closed the connection during the handshake"
                )
            msg_type, body = reply
            if msg_type is MessageType.ERROR:
                raise exception_for(*codec.decode_error(body))
            if msg_type is not MessageType.HELLO_OK:
                raise WireFormatError(
                    f"expected HELLO_OK, server sent {msg_type.name}"
                )
            # Negotiation: the HELLO_OK body advertises the server's
            # max version (empty body = a v1-era server).  Both sides
            # then speak the minimum.
            self.protocol_version = min(
                codec.PROTOCOL_VERSION_MAX, codec.decode_hello_ok(body)
            )
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self._reader = threading.Thread(
            target=self._reader_loop,
            args=(sock,),
            name="repro-net-client-reader",
            daemon=True,
        )
        self._reader.start()

    def _ensure_connected(self) -> None:
        """Reconnect if a previous abort dropped the socket."""
        if self._closed:
            raise ConnectionClosedError("client is closed")
        with self._connect_lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            if self._sock is None:
                self._connect()

    def _abort_connection(self) -> None:
        """Drop the socket now; every in-flight future fails typed.

        The fail-fast half of the caller-timeout contract: a stalled
        request must not leave the FIFO stream waiting behind it, so
        the whole connection goes — the reader unblocks, pending
        futures settle with :class:`ConnectionClosedError`, and the
        next blocking call reconnects.
        """
        with self._connect_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        self._fail_pending(
            ConnectionClosedError("connection aborted with requests in flight")
        )

    # -- reply side --------------------------------------------------------------

    def _reader_loop(self, sock: socket.socket) -> None:
        """Match reply frames to pending requests in FIFO order."""
        try:
            while True:
                frame = codec.read_frame_from(sock, timeout=None)
                if frame is None:
                    break
                self._dispatch(*frame)
        except (OSError, WireFormatError):
            pass
        with self._connect_lock:
            if sock is not self._sock:
                # A reconnect superseded this socket; whoever aborted it
                # already settled the futures that were riding it.
                return
            # The peer closed first: clear the slot so the next blocking
            # call (or retry attempt) reconnects instead of writing into
            # a dead socket.
            self._sock = None
        try:
            sock.close()
        except OSError:
            pass
        self._fail_pending(
            ConnectionClosedError("connection closed with requests in flight")
        )

    def _next_pending(self) -> "tuple[str, object, bool] | None":
        with self._send_lock:
            return self._pending.popleft() if self._pending else None

    def _decode_error(self, body: bytes, v2: bool) -> PPANNSError:
        """Decode an ERROR body in the layout its request negotiated."""
        if v2:
            return exception_for(*codec.decode_error_v2(body))
        return exception_for(*codec.decode_error(body))

    def _dispatch(self, msg_type: MessageType, body: bytes) -> None:
        entry = self._next_pending()
        if entry is None:
            return  # unsolicited frame; nothing is waiting on it
        kind, target, v2 = entry
        if msg_type is MessageType.RESULT and kind == "query":
            try:
                batch = codec.decode_result_batch(body)
            except WireFormatError as exc:
                self._settle_queries(target, error=exc)
                return
            if len(batch) != len(target):
                self._settle_queries(
                    target,
                    error=WireFormatError(
                        f"server answered {len(batch)} results "
                        f"for {len(target)} queries"
                    ),
                )
                return
            for future, result in zip(target, batch):
                if not future.cancelled():
                    future.set_result(result)
        elif msg_type is MessageType.ERROR:
            error = self._decode_error(body, v2)
            if kind == "query":
                self._settle_queries(target, error=error)
            else:
                if not target.cancelled():
                    target.set_exception(error)
        elif msg_type is MessageType.STATS_OK and kind == "stats":
            try:
                payload = codec.decode_stats(body)
            except WireFormatError as exc:
                target.set_exception(exc)
            else:
                target.set_result(payload)
        else:
            error = WireFormatError(
                f"server sent {msg_type.name} where a {kind} reply was due"
            )
            if kind == "query":
                self._settle_queries(target, error=error)
            else:
                target.set_exception(error)

    @staticmethod
    def _settle_queries(futures, error: BaseException) -> None:
        for future in futures:
            if not future.cancelled() and not future.done():
                future.set_exception(error)

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            entry = self._next_pending()
            if entry is None:
                return
            kind, target, _ = entry
            if kind == "query":
                self._settle_queries(target, error)
            elif not target.done():
                target.set_exception(error)

    # -- request side ------------------------------------------------------------

    def _send_request(
        self,
        kind: str,
        target,
        msg_type: MessageType,
        body: bytes,
        v2: bool = False,
    ):
        with self._send_lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            sock = self._sock
            if sock is None:
                raise ConnectionClosedError(
                    "connection is down (aborted by a timeout or fault); "
                    "a blocking call will reconnect"
                )
            # Registered before the bytes leave: the reader can never
            # see a reply with no pending entry to match it.
            self._pending.append((kind, target, v2))
            try:
                codec.send_frame(sock, msg_type, body)
            except OSError as exc:
                self._pending.pop()
                raise ConnectionClosedError(
                    f"connection lost while sending: {exc}"
                ) from None
        return target

    def submit_batch(
        self, batch: EncryptedQueryBatch, deadline_ms: int | None = None
    ) -> "list[Future[SearchResult]]":
        """Send one batch message; returns a future per query, in order.

        ``deadline_ms`` is the whole batch's latency budget, carried on
        the QUERY_V2 envelope; it requires a server that negotiated
        protocol v2 (:class:`~repro.core.errors.ParameterError`
        otherwise — a v1 server would silently ignore the budget, which
        is worse than refusing).
        """
        self._ensure_connected()
        if deadline_ms is not None:
            if deadline_ms <= 0:
                raise ParameterError(
                    f"deadline_ms must be a positive integer, got {deadline_ms}"
                )
            if self.protocol_version < 2:
                raise ParameterError(
                    "deadline_ms needs protocol v2, but the server "
                    "negotiated v1"
                )
        v2 = self.protocol_version >= 2
        if v2:
            msg_type = MessageType.QUERY_V2
            body = codec.encode_query_batch_v2(batch, deadline_ms)
        else:
            msg_type = MessageType.QUERY
            body = codec.encode_query_batch(batch)
        futures: "list[Future[SearchResult]]" = [
            Future() for _ in range(len(batch))
        ]
        self._send_request("query", futures, msg_type, body, v2)
        return futures

    def submit(
        self, query: EncryptedQuery, deadline_ms: int | None = None
    ) -> "Future[SearchResult]":
        """Admit one query (frontend parity); returns its future."""
        return self.submit_batch(
            EncryptedQueryBatch.from_queries([query]), deadline_ms=deadline_ms
        )[0]

    # -- retry engine ------------------------------------------------------------

    def _backoff_delay(self, attempt: int, hint: float | None) -> float:
        """Full-jitter draw, floored by the server's retry-after hint."""
        cap = min(self._backoff_cap, self._backoff_base * (2.0 ** attempt))
        delay = self._rng.uniform(0.0, cap)
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def _with_retries(self, op):
        """Run one blocking operation under the retry policy.

        Only :data:`_RETRYABLE` refusals are replayed, up to the
        configured count.  Re-sending is safe by construction: the
        retried ciphertext bytes are identical, so the server's result
        cache digest matches and an attempt that actually executed is
        answered from cache rather than run twice.
        """
        attempt = 0
        while True:
            try:
                self._ensure_connected()
                return op()
            except _RETRYABLE as exc:
                if attempt >= self._retries or self._closed:
                    raise
                self.retry_count += 1
                if self._on_retry is not None:
                    self._on_retry()
                self._sleep(
                    self._backoff_delay(
                        attempt, getattr(exc, "retry_after", None)
                    )
                )
                attempt += 1

    def _await(self, future: "Future", timeout: float | None):
        """Wait on one future; a caller timeout aborts the connection."""
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            self._abort_connection()
            raise RequestTimeoutError(
                f"no reply within {timeout}s; connection aborted so the "
                "reply stream cannot desync"
            ) from None

    # -- blocking conveniences (the retrying APIs) -------------------------------

    def answer(
        self,
        query: EncryptedQuery,
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ):
        """Blocking single-query convenience: ``submit`` + wait."""
        return self._with_retries(
            lambda: self._await(
                self.submit(query, deadline_ms=deadline_ms), timeout
            )
        )

    def answer_many(
        self,
        queries: "list[EncryptedQuery]",
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ) -> "list[SearchResult]":
        """Submit several queries as one message and wait for all."""
        if not queries:
            return []

        def op():
            futures = self.submit_batch(
                EncryptedQueryBatch.from_queries(queries),
                deadline_ms=deadline_ms,
            )
            return [self._await(future, timeout) for future in futures]

        return self._with_retries(op)

    def answer_batch(
        self,
        batch: EncryptedQueryBatch,
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ) -> SearchResultBatch:
        """Round-trip a whole batch; the remote ``PPANNS.serve()`` shape."""

        def op():
            futures = self.submit_batch(batch, deadline_ms=deadline_ms)
            return SearchResultBatch(
                [self._await(future, timeout) for future in futures]
            )

        return self._with_retries(op)

    def stats(self, timeout: float | None = None) -> dict:
        """Fetch the server's tenancy/metrics view (the STATS message)."""

        def op():
            future: "Future[dict]" = Future()
            self._send_request("stats", future, MessageType.STATS, b"")
            return self._await(
                future, timeout if timeout is not None else self._timeout
            )

        return self._with_retries(op)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop the connection; in-flight futures fail with a closed error."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        reader = self._reader
        self._abort_connection()
        if reader is not None and reader.is_alive():
            reader.join(timeout=self._timeout)

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
