"""The client side of the wire protocol, mirroring in-process serving.

:class:`NetClient` gives remote callers the same ergonomics as
:class:`~repro.serve.frontend.ServingFrontend`: ``submit`` returns a
future immediately, ``answer``/``answer_many`` block, and
``answer_batch`` takes a whole :class:`EncryptedQueryBatch`.  Because
``submit`` is all :func:`~repro.serve.frontend.replay_open_loop` needs,
the open-loop Poisson replayer drives a remote server unchanged — the
loopback bench's parity check depends on exactly that symmetry.

The connection is **pipelined**: a sender may have any number of frames
in flight; a background reader thread matches replies to requests in
FIFO order (the server guarantees one in-order reply per request
frame) and resolves the pending futures.  Wire errors come back as the
same typed exceptions the in-process path raises — a remote
:class:`~repro.net.tenancy.QuotaExceededError` is
``QuotaExceededError`` here too — so calling code cannot tell (and
need not care) which side of the socket refused it.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from concurrent.futures import Future

from repro.core.errors import KeyMismatchError, ParameterError, PPANNSError
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchResult,
    SearchResultBatch,
)
from repro.net import codec
from repro.net.codec import ErrorCode, MessageType, WireFormatError
from repro.net.tenancy import AuthError, QuotaExceededError
from repro.serve.frontend import QueueFullError

__all__ = ["NetClient", "RemoteError", "ConnectionClosedError", "exception_for"]


class RemoteError(PPANNSError):
    """The server reported a failure with no more specific local type."""


class ConnectionClosedError(RemoteError):
    """The connection dropped with requests still awaiting replies."""


#: ERROR-frame code → the local exception type it round-trips to.
_ERROR_TYPES = {
    ErrorCode.AUTH: AuthError,
    ErrorCode.QUOTA: QuotaExceededError,
    ErrorCode.BUSY: QueueFullError,
    ErrorCode.FORMAT: WireFormatError,
    ErrorCode.PARAMETER: ParameterError,
    ErrorCode.KEY: KeyMismatchError,
    ErrorCode.INTERNAL: RemoteError,
}


def exception_for(code: ErrorCode, message: str) -> PPANNSError:
    """Rehydrate an ERROR frame into the matching typed exception."""
    return _ERROR_TYPES.get(code, RemoteError)(message)


class NetClient:
    """One authenticated connection to a :class:`~repro.net.server.NetServer`.

    Parameters
    ----------
    host / port:
        The server's bound address.
    key_id:
        The tenant identity to authenticate as (the DCE key tag the
        connection's queries are encrypted under).
    token:
        The tenant's auth token, if its registration requires one.
    timeout:
        Seconds allowed for connect + handshake, and the per-frame
        read deadline on replies.

    Construction performs the HELLO handshake; an
    :class:`~repro.net.tenancy.AuthError` raised here is the server's
    refusal.  The client is a context manager and thread-safe: any
    thread may ``submit`` while the reader resolves futures.
    """

    def __init__(
        self,
        host: str,
        port: int,
        key_id: int,
        token: str | None = None,
        timeout: float = 30.0,
    ) -> None:
        self.key_id = int(key_id)
        self._timeout = timeout
        self._send_lock = threading.Lock()
        self._pending: "deque[tuple[str, object]]" = deque()
        self._closed = False
        self._sock = socket.create_connection((host, port), timeout=timeout)
        try:
            codec.send_frame(
                self._sock,
                MessageType.HELLO,
                codec.encode_hello(self.key_id, token),
            )
            reply = codec.read_frame_from(self._sock, timeout=timeout)
            if reply is None:
                raise ConnectionClosedError(
                    "server closed the connection during the handshake"
                )
            msg_type, body = reply
            if msg_type is MessageType.ERROR:
                raise exception_for(*codec.decode_error(body))
            if msg_type is not MessageType.HELLO_OK:
                raise WireFormatError(
                    f"expected HELLO_OK, server sent {msg_type.name}"
                )
        except BaseException:
            self._sock.close()
            raise
        self._reader = threading.Thread(
            target=self._reader_loop, name="repro-net-client-reader", daemon=True
        )
        self._reader.start()

    # -- reply side --------------------------------------------------------------

    def _reader_loop(self) -> None:
        """Match reply frames to pending requests in FIFO order."""
        try:
            while True:
                frame = codec.read_frame_from(self._sock, timeout=None)
                if frame is None:
                    break
                self._dispatch(*frame)
        except (OSError, WireFormatError):
            pass
        self._fail_pending(
            ConnectionClosedError("connection closed with requests in flight")
        )

    def _next_pending(self) -> "tuple[str, object] | None":
        with self._send_lock:
            return self._pending.popleft() if self._pending else None

    def _dispatch(self, msg_type: MessageType, body: bytes) -> None:
        entry = self._next_pending()
        if entry is None:
            return  # unsolicited frame; nothing is waiting on it
        kind, target = entry
        if msg_type is MessageType.RESULT and kind == "query":
            try:
                batch = codec.decode_result_batch(body)
            except WireFormatError as exc:
                self._settle_queries(target, error=exc)
                return
            if len(batch) != len(target):
                self._settle_queries(
                    target,
                    error=WireFormatError(
                        f"server answered {len(batch)} results "
                        f"for {len(target)} queries"
                    ),
                )
                return
            for future, result in zip(target, batch):
                if not future.cancelled():
                    future.set_result(result)
        elif msg_type is MessageType.ERROR:
            error = exception_for(*codec.decode_error(body))
            if kind == "query":
                self._settle_queries(target, error=error)
            else:
                if not target.cancelled():
                    target.set_exception(error)
        elif msg_type is MessageType.STATS_OK and kind == "stats":
            try:
                payload = codec.decode_stats(body)
            except WireFormatError as exc:
                target.set_exception(exc)
            else:
                target.set_result(payload)
        else:
            error = WireFormatError(
                f"server sent {msg_type.name} where a {kind} reply was due"
            )
            if kind == "query":
                self._settle_queries(target, error=error)
            else:
                target.set_exception(error)

    @staticmethod
    def _settle_queries(futures, error: BaseException) -> None:
        for future in futures:
            if not future.cancelled() and not future.done():
                future.set_exception(error)

    def _fail_pending(self, error: BaseException) -> None:
        while True:
            entry = self._next_pending()
            if entry is None:
                return
            kind, target = entry
            if kind == "query":
                self._settle_queries(target, error)
            elif not target.done():
                target.set_exception(error)

    # -- request side ------------------------------------------------------------

    def _send_request(self, kind: str, target, msg_type: MessageType, body: bytes):
        with self._send_lock:
            if self._closed:
                raise ConnectionClosedError("client is closed")
            # Registered before the bytes leave: the reader can never
            # see a reply with no pending entry to match it.
            self._pending.append((kind, target))
            try:
                codec.send_frame(self._sock, msg_type, body)
            except OSError as exc:
                self._pending.pop()
                raise ConnectionClosedError(
                    f"connection lost while sending: {exc}"
                ) from None
        return target

    def submit_batch(
        self, batch: EncryptedQueryBatch
    ) -> "list[Future[SearchResult]]":
        """Send one batch message; returns a future per query, in order."""
        futures: "list[Future[SearchResult]]" = [Future() for _ in range(len(batch))]
        self._send_request(
            "query", futures, MessageType.QUERY, codec.encode_query_batch(batch)
        )
        return futures

    def submit(self, query: EncryptedQuery) -> "Future[SearchResult]":
        """Admit one query (frontend parity); returns its future."""
        return self.submit_batch(EncryptedQueryBatch.from_queries([query]))[0]

    def answer(self, query: EncryptedQuery, timeout: float | None = None):
        """Blocking single-query convenience: ``submit`` + wait."""
        return self.submit(query).result(timeout=timeout)

    def answer_many(
        self, queries: "list[EncryptedQuery]", timeout: float | None = None
    ) -> "list[SearchResult]":
        """Submit several queries as one message and wait for all."""
        if not queries:
            return []
        futures = self.submit_batch(EncryptedQueryBatch.from_queries(queries))
        return [future.result(timeout=timeout) for future in futures]

    def answer_batch(
        self, batch: EncryptedQueryBatch, timeout: float | None = None
    ) -> SearchResultBatch:
        """Round-trip a whole batch; the remote ``PPANNS.serve()`` shape."""
        futures = self.submit_batch(batch)
        return SearchResultBatch([f.result(timeout=timeout) for f in futures])

    def stats(self, timeout: float | None = None) -> dict:
        """Fetch the server's tenancy/metrics view (the STATS message)."""
        future: "Future[dict]" = Future()
        self._send_request("stats", future, MessageType.STATS, b"")
        return future.result(timeout=timeout if timeout is not None else self._timeout)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Drop the connection; in-flight futures fail with a closed error."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        if self._reader.is_alive():
            self._reader.join(timeout=self._timeout)

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
