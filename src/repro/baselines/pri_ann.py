"""PRI-ANN — LSH + single-round PIR from two servers (Servan-Schreiber,
Langowski, Devadas; S&P 2022).

Architecture (Section VII, "Compared Methods"): two non-colluding servers
hold an LSH-bucketed database; the client hashes its query locally,
privately retrieves the relevant buckets in a *single* PIR round, and
refines the retrieved candidates locally.  Compared to PACM-ANN this
saves rounds, but the bucket payloads are large (padded to a fixed
capacity for PIR) and all refinement still burns user-side compute —
"numerous candidates for high accuracy ... heavy computational
consumption for servers and users" per the paper.

Buckets are padded to ``bucket_capacity`` vectors so every PIR block has
equal size (a real deployment requirement, and the source of the
method's download overhead).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.errors import ParameterError
from repro.crypto.pir import TwoServerXorPIR
from repro.crypto.serialization import bytes_to_vectors, vectors_to_bytes
from repro.eval.costmodel import CostReport
from repro.lsh.e2lsh import E2LSHIndex, E2LSHParams

__all__ = ["PRIANNBaseline"]


class PRIANNBaseline:
    """LSH bucketing + one-round 2-server PIR + user-side refine.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    lsh_params:
        LSH configuration (the client holds the hash keys).
    bucket_capacity:
        Vectors per padded PIR bucket; overflowing buckets are truncated
        (rare with adequate capacity) and short buckets padded with NaNs.
    rng:
        Randomness for LSH and PIR.
    """

    def __init__(
        self,
        dim: int,
        lsh_params: E2LSHParams | None = None,
        bucket_capacity: int = 64,
        rng: np.random.Generator | None = None,
    ) -> None:
        if bucket_capacity < 1:
            raise ParameterError(f"bucket_capacity must be >= 1, got {bucket_capacity}")
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        self._lsh_params = lsh_params if lsh_params is not None else E2LSHParams()
        self._capacity = bucket_capacity
        self._index: E2LSHIndex | None = None
        self._pir: TwoServerXorPIR | None = None
        self._bucket_of_key: dict[tuple[int, tuple[int, ...]], int] = {}
        self._bucket_members: list[list[int]] = []

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def num_buckets(self) -> int:
        """Number of padded PIR buckets."""
        return len(self._bucket_members)

    def fit(self, vectors: np.ndarray) -> "PRIANNBaseline":
        """Bucket the database by LSH and materialize padded PIR blocks."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        self._index = E2LSHIndex(vectors, self._lsh_params, rng=self._rng)
        blocks: list[bytes] = []
        self._bucket_of_key = {}
        self._bucket_members = []
        for table_index, table in enumerate(self._index._tables):
            for key, members in table.items():
                kept = members[: self._capacity]
                payload = np.full((self._capacity, self._dim + 1), np.nan)
                payload[: len(kept), 0] = kept
                payload[: len(kept), 1:] = vectors[kept]
                blocks.append(vectors_to_bytes(payload))
                self._bucket_of_key[(table_index, key)] = len(blocks) - 1
                self._bucket_members.append(kept)
        self._pir = TwoServerXorPIR(blocks)
        return self

    def query_with_cost(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, CostReport]:
        """One-round private bucket retrieval + local refine."""
        if self._index is None or self._pir is None:
            raise ParameterError("call fit() before querying")
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        report = CostReport(method="PRI-ANN")

        # -- user: hash locally, resolve bucket ids --------------------------
        start = time.perf_counter()
        keys = self._index._hash_batch(query[np.newaxis])[:, 0, :]
        bucket_ids = []
        for table_index in range(self._lsh_params.num_tables):
            bucket = self._bucket_of_key.get(
                (table_index, tuple(keys[table_index].tolist()))
            )
            if bucket is not None:
                bucket_ids.append(bucket)
        report.user_seconds += time.perf_counter() - start

        if not bucket_ids:
            return np.empty(0, dtype=np.int64), report

        # -- single PIR round for all buckets ----------------------------------
        start = time.perf_counter()
        blocks, transcript = self._pir.retrieve_many(bucket_ids, self._rng)
        report.server_seconds += time.perf_counter() - start
        report.upload_bytes += transcript.upload_bytes
        report.download_bytes += transcript.download_bytes
        report.rounds += transcript.rounds

        # -- user: unpack, dedupe, exact refine ----------------------------------
        start = time.perf_counter()
        seen: set[int] = set()
        candidate_ids: list[int] = []
        candidate_vectors: list[np.ndarray] = []
        for block in blocks:
            payload = bytes_to_vectors(block, self._dim + 1)
            for row in payload:
                if np.isnan(row[0]):
                    break
                vector_id = int(row[0])
                if vector_id in seen:
                    continue
                seen.add(vector_id)
                candidate_ids.append(vector_id)
                candidate_vectors.append(row[1:])
        if candidate_ids:
            stacked = np.stack(candidate_vectors)
            diffs = stacked - query
            dists = np.einsum("ij,ij->i", diffs, diffs)
            order = np.argsort(dists, kind="stable")[:k]
            ids = np.asarray(candidate_ids, dtype=np.int64)[order]
        else:
            ids = np.empty(0, dtype=np.int64)
        report.user_seconds += time.perf_counter() - start
        report.extra["candidates"] = float(len(candidate_ids))
        return ids, report
