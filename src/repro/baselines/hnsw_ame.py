"""HNSW-AME — the paper's ablation baseline (Section VII-B, Figure 6).

Identical to the PP-ANNS scheme except the refine phase: it stores AME
ciphertexts instead of DCE and performs the secure comparisons with AME's
O(d^2) ``distance_comp``.  Sharing the filter phase isolates exactly the
SDC-cost difference, which is what Figure 6 plots — the paper reports
HNSW-DCE at least 100x faster than HNSW-AME.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.ame import AMECiphertext, AMEScheme, AMETrapdoor
from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.core.errors import ParameterError
from repro.core.search import SearchResult
from repro.hnsw.graph import HNSWIndex, HNSWParams, SearchStats
from repro.hnsw.heap import ComparisonMaxHeap

__all__ = ["HNSWAMEScheme"]


class HNSWAMEScheme:
    """PP-ANNS with AME in place of DCE.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    beta:
        DCPE perturbation budget (same filter phase as the main scheme).
    scale:
        DCPE scaling factor.
    hnsw_params:
        Graph construction parameters.
    rng:
        Randomness for all components.
    """

    def __init__(
        self,
        dim: int,
        beta: float,
        scale: float = 1024.0,
        hnsw_params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dim = dim
        self._dcpe = DCPEScheme(dim, dcpe_keygen(beta, scale, self._rng), rng=self._rng)
        self._ame = AMEScheme(dim, rng=self._rng)
        self._hnsw_params = hnsw_params if hnsw_params is not None else HNSWParams()
        self._graph: HNSWIndex | None = None
        self._ame_cts: list[AMECiphertext] = []

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def ame_scheme(self) -> AMEScheme:
        """The underlying AME scheme (for encryption-cost benchmarks)."""
        return self._ame

    def fit(self, vectors: np.ndarray) -> "HNSWAMEScheme":
        """Encrypt the database (DCPE + AME) and build the filter graph."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        sap = self._dcpe.encrypt_database(vectors)
        self._ame_cts = self._ame.encrypt_database(vectors)
        self._graph = HNSWIndex(self._dim, self._hnsw_params, rng=self._rng).build(sap)
        return self

    def encrypt_query(self, query: np.ndarray) -> tuple[np.ndarray, AMETrapdoor]:
        """User-side query encryption: DCPE ciphertext + AME trapdoor."""
        return self._dcpe.encrypt(query), self._ame.trapdoor(query)

    def query_with_report(
        self,
        query: np.ndarray,
        k: int,
        ratio_k: int = 8,
        ef_search: int | None = None,
    ) -> SearchResult:
        """Filter with HNSW-on-DCPE, refine with AME comparisons."""
        if self._graph is None:
            raise ParameterError("call fit() before querying")
        if k <= 0 or ratio_k < 1:
            raise ParameterError(f"invalid k={k} / ratio_k={ratio_k}")
        sap_query, trapdoor = self.encrypt_query(query)
        k_prime = ratio_k * k

        stats = SearchStats()
        start = time.perf_counter()
        ef = ef_search if ef_search is not None else None
        if ef is not None and ef < k_prime:
            ef = k_prime
        candidate_ids, _ = self._graph.search(sap_query, k_prime, ef_search=ef, stats=stats)
        filter_seconds = time.perf_counter() - start

        start = time.perf_counter()
        cts = self._ame_cts

        def is_farther(a: int, b: int) -> bool:
            return self._ame.distance_comp(cts[a], cts[b], trapdoor) >= 0.0

        heap = ComparisonMaxHeap(k, is_farther)
        for candidate in candidate_ids:
            heap.offer(int(candidate))
        refine_seconds = time.perf_counter() - start

        return SearchResult(
            ids=np.array(heap.items(), dtype=np.int64),
            filter_stats=stats,
            refine_comparisons=heap.oracle_calls,
            k_prime=k_prime,
            filter_seconds=filter_seconds,
            refine_seconds=refine_seconds,
        )
