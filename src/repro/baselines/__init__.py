"""Baseline PP-ANNS methods the paper compares against (Sections III, VII).

* :mod:`repro.baselines.aspe` — ASPE (Wong et al. 2009) and its "enhanced"
  variants leaking linear / exponential / logarithmic / squared distance
  transforms; all shown KPA-broken by :mod:`repro.attacks.aspe_kpa`.
* :mod:`repro.baselines.ame` — asymmetric matrix encryption with the
  paper-stated shapes and O(d^2) comparison cost.
* :mod:`repro.baselines.hnsw_ame` — the paper's HNSW-AME variant: same
  filter phase as ours, AME instead of DCE in the refine phase (Figure 6).
* :mod:`repro.baselines.linear_scan` — k-NN by full DCE scan (no index),
  the strawman of Section IV-B.
* :mod:`repro.baselines.rs_sann` — AES + LSH with user-side refinement.
* :mod:`repro.baselines.pacm_ann` — client-driven graph walk over PIR.
* :mod:`repro.baselines.pri_ann` — LSH + single-round PIR, two servers.
"""

from repro.baselines.ame import AMEScheme, AMECiphertext, AMETrapdoor, ame_mac_count
from repro.baselines.aspe import ASPEScheme, DistanceTransform
from repro.baselines.hnsw_ame import HNSWAMEScheme
from repro.baselines.linear_scan import DCELinearScan
from repro.baselines.pacm_ann import PACMANNBaseline
from repro.baselines.pri_ann import PRIANNBaseline
from repro.baselines.rs_sann import RSSANNBaseline

__all__ = [
    "ASPEScheme",
    "DistanceTransform",
    "AMEScheme",
    "AMECiphertext",
    "AMETrapdoor",
    "ame_mac_count",
    "HNSWAMEScheme",
    "DCELinearScan",
    "RSSANNBaseline",
    "PACMANNBaseline",
    "PRIANNBaseline",
]
