"""RS-SANN — AES + LSH with user-side refinement (Peng et al., 2017).

Architecture (Section VII, "Compared Methods"): the database is encrypted
with AES (distance *incomparable*), indexed server-side by LSH.  Per query
the user hashes the query locally, sends the bucket keys, the server
returns every encrypted candidate in those buckets, and the user decrypts
all of them and refines locally.  The paper's critique, which this
implementation reproduces end to end: heavy communication (whole
candidate vectors travel) and heavy user-side compute (decrypt +
exact distances), with the LSH index needing many candidates for high
recall.

All compute is genuinely executed (real AES-CTR decryption, real
distances); communication is counted in bytes/rounds for the
:class:`repro.eval.costmodel.NetworkModel` to price.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.errors import ParameterError
from repro.crypto.aes import AESCTRCipher
from repro.crypto.serialization import bytes_to_vector, vector_to_bytes
from repro.eval.costmodel import CostReport
from repro.lsh.e2lsh import E2LSHIndex, E2LSHParams

__all__ = ["RSSANNBaseline"]


class RSSANNBaseline:
    """The RS-SANN pipeline: AES ciphertexts + LSH candidates + user refine.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    lsh_params:
        LSH configuration; recall is governed by tables/probes (the method
        needs generous settings to match graph-based recall, which is the
        point of the comparison).
    key:
        16-byte AES key; generated when omitted.
    rng:
        Randomness for LSH and key generation.
    """

    def __init__(
        self,
        dim: int,
        lsh_params: E2LSHParams | None = None,
        key: bytes | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        if key is None:
            key = self._rng.integers(0, 256, size=16, dtype=np.uint8).tobytes()
        self._cipher = AESCTRCipher(key)
        self._lsh_params = lsh_params if lsh_params is not None else E2LSHParams()
        self._index: E2LSHIndex | None = None
        self._ciphertexts: list[bytes] = []

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def index(self) -> E2LSHIndex | None:
        """The LSH index (after :meth:`fit`)."""
        return self._index

    @staticmethod
    def _nonce(vector_id: int) -> bytes:
        return vector_id.to_bytes(8, "big")

    def fit(self, vectors: np.ndarray) -> "RSSANNBaseline":
        """AES-encrypt every vector and build the LSH index.

        The LSH index is built from the plaintext vectors by the data
        owner (its tables only reveal hash keys to the server).
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        self._ciphertexts = [
            self._cipher.process(self._nonce(i), vector_to_bytes(row))
            for i, row in enumerate(vectors)
        ]
        self._index = E2LSHIndex(vectors, self._lsh_params, rng=self._rng)
        return self

    def query_with_cost(
        self, query: np.ndarray, k: int
    ) -> tuple[np.ndarray, CostReport]:
        """Run one query, returning ``(neighbor_ids, cost_report)``.

        The returned report splits genuinely-measured server and user
        compute and counts the bytes each message would occupy.
        """
        if self._index is None:
            raise ParameterError("call fit() before querying")
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)

        # -- user: hash the query (the user holds the LSH keys) -------------
        start = time.perf_counter()
        probe_keys = self._index._hash_batch(query[np.newaxis])[:, 0, :]
        user_seconds = time.perf_counter() - start
        params = self._lsh_params
        upload_bytes = params.num_tables * params.hashes_per_table * 8 + 4

        # -- server: bucket lookups, gather encrypted candidates --------------
        start = time.perf_counter()
        candidate_ids = self._index.candidates(query)
        candidate_cts = [self._ciphertexts[i] for i in candidate_ids]
        server_seconds = time.perf_counter() - start
        download_bytes = sum(len(ct) + 8 + 4 for ct in candidate_cts)  # ct + nonce + id

        # -- user: decrypt candidates and refine exactly -------------------------
        start = time.perf_counter()
        if candidate_ids:
            decrypted = np.stack(
                [
                    bytes_to_vector(self._cipher.process(self._nonce(i), ct))
                    for i, ct in zip(candidate_ids, candidate_cts)
                ]
            )
            diffs = decrypted - query
            dists = np.einsum("ij,ij->i", diffs, diffs)
            order = np.argsort(dists, kind="stable")[:k]
            ids = np.asarray(candidate_ids, dtype=np.int64)[order]
        else:
            ids = np.empty(0, dtype=np.int64)
        user_seconds += time.perf_counter() - start

        report = CostReport(
            method="RS-SANN",
            server_seconds=server_seconds,
            user_seconds=user_seconds,
            upload_bytes=upload_bytes,
            download_bytes=download_bytes,
            rounds=1,
            extra={"candidates": float(len(candidate_ids))},
        )
        return ids, report
