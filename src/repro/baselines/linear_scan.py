"""Secure k-NN by DCE linear scan — the index-free strawman.

Section IV-B closes by noting that DCE alone supports exact secure k-NN
via a full scan with a comparison max-heap, at ``O(n d log k)`` per query
— "prohibitive, particularly for large-scale datasets", which motivates
the privacy-preserving index of Section V.  This class implements that
strawman for the ablation benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dce import DCEEncryptedDatabase, DCEScheme
from repro.core.errors import ParameterError
from repro.core.search import SearchResult
from repro.hnsw.heap import ComparisonMaxHeap

__all__ = ["DCELinearScan"]


class DCELinearScan:
    """Exact secure k-NN over DCE ciphertexts, no index.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    rng:
        Randomness for the DCE scheme.
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dce = DCEScheme(dim, rng=self._rng)
        self._database: DCEEncryptedDatabase | None = None

    @property
    def dce_scheme(self) -> DCEScheme:
        """The underlying DCE scheme."""
        return self._dce

    def fit(self, vectors: np.ndarray) -> "DCELinearScan":
        """Encrypt the database under DCE."""
        self._database = self._dce.encrypt_database(np.asarray(vectors, dtype=np.float64))
        return self

    def query_with_report(self, query: np.ndarray, k: int) -> SearchResult:
        """Scan every ciphertext through the comparison heap."""
        if self._database is None:
            raise ParameterError("call fit() before querying")
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        trapdoor = self._dce.trapdoor(query)
        database = self._database

        def is_farther(a: int, b: int) -> bool:
            from repro.core.dce import distance_comp

            return distance_comp(database[a], database[b], trapdoor) >= 0.0

        start = time.perf_counter()
        heap = ComparisonMaxHeap(k, is_farther)
        for candidate in range(len(database)):
            heap.offer(candidate)
        elapsed = time.perf_counter() - start
        return SearchResult(
            ids=np.array(heap.items(), dtype=np.int64),
            refine_comparisons=heap.oracle_calls,
            k_prime=len(database),
            refine_seconds=elapsed,
        )
