"""PACM-ANN — client-driven graph walk over PIR (Zhou, Shi, Fanti 2024).

Architecture (Section VII, "Compared Methods"): the server holds a
proximity graph; the *client* runs the beam search, fetching each node's
adjacency list and vector through private information retrieval so the
server never learns the access pattern.  Every expansion is a network
round trip, so queries pay ``O(hops)`` RTTs plus PIR bandwidth — the
"heavy computational costs on the user side and communication overhead"
the paper attributes to this design.

We store the graph as fixed-size PIR blocks (adjacency padded to the
degree bound, vectors as float32) over the 2-server XOR PIR from
:mod:`repro.crypto.pir`, and the client executes a straightforward
best-first search with an ``ef``-bounded frontier.  All client and server
compute is measured; communication is accumulated from the PIR
transcripts.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.core.errors import ParameterError
from repro.crypto.pir import TwoServerXorPIR
from repro.crypto.serialization import bytes_to_vector, vector_to_bytes
from repro.eval.costmodel import CostReport
from repro.hnsw.graph import HNSWIndex, HNSWParams

__all__ = ["PACMANNBaseline"]


class PACMANNBaseline:
    """Client-side graph ANN where every fetch goes through PIR.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    hnsw_params:
        Parameters of the underlying (flat, layer-0) proximity graph; the
        graph is built server-side from plaintexts (PACMANN protects the
        *query*, not the database, from the server).
    rng:
        Randomness for graph construction and PIR queries.
    """

    def __init__(
        self,
        dim: int,
        hnsw_params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        self._params = hnsw_params if hnsw_params is not None else HNSWParams()
        self._graph: HNSWIndex | None = None
        self._adjacency_pir: TwoServerXorPIR | None = None
        self._vector_pir: TwoServerXorPIR | None = None
        self._entry_point = 0
        self._degree_bound = 2 * self._params.m

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    def fit(self, vectors: np.ndarray) -> "PACMANNBaseline":
        """Build the server-side graph and PIR block stores."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        self._graph = HNSWIndex(self._dim, self._params, rng=self._rng).build(vectors)
        self._entry_point = self._graph.entry_point or 0
        adjacency_blocks = []
        vector_blocks = []
        for node in range(vectors.shape[0]):
            neighbors = self._graph.neighbors(node, 0)[: self._degree_bound]
            padded = neighbors + [-1] * (self._degree_bound - len(neighbors))
            adjacency_blocks.append(
                np.asarray(padded, dtype="<i4").tobytes()
            )
            vector_blocks.append(vector_to_bytes(vectors[node]))
        self._adjacency_pir = TwoServerXorPIR(adjacency_blocks)
        self._vector_pir = TwoServerXorPIR(vector_blocks)
        return self

    def query_with_cost(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int = 64,
        max_rounds: int = 64,
    ) -> tuple[np.ndarray, CostReport]:
        """Client-driven best-first search; returns ``(ids, cost_report)``.

        Each round privately fetches one node's adjacency block plus the
        unseen neighbors' vector blocks (batched into the same round).
        """
        if self._graph is None or self._adjacency_pir is None or self._vector_pir is None:
            raise ParameterError("call fit() before querying")
        if k <= 0 or ef_search < k:
            raise ParameterError(f"need ef_search >= k >= 1, got k={k}, ef={ef_search}")
        query = np.asarray(query, dtype=np.float64)

        report = CostReport(method="PACM-ANN")
        server_seconds = 0.0
        client_start = time.perf_counter()

        # Fetch the entry point's vector.
        pir_start = time.perf_counter()
        block, transcript = self._vector_pir.retrieve(self._entry_point, self._rng)
        server_seconds += time.perf_counter() - pir_start
        report.upload_bytes += transcript.upload_bytes
        report.download_bytes += transcript.download_bytes
        report.rounds += transcript.rounds

        entry_vector = bytes_to_vector(block)
        entry_dist = float(((entry_vector - query) ** 2).sum())
        visited = {self._entry_point}
        candidates = [(entry_dist, self._entry_point)]
        results = [(-entry_dist, self._entry_point)]

        rounds_used = 0
        while candidates and rounds_used < max_rounds:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef_search and dist > -results[0][0]:
                break
            rounds_used += 1
            # Round part 1: privately fetch the adjacency block.
            pir_start = time.perf_counter()
            adjacency_raw, transcript = self._adjacency_pir.retrieve(node, self._rng)
            server_seconds += time.perf_counter() - pir_start
            report.upload_bytes += transcript.upload_bytes
            report.download_bytes += transcript.download_bytes
            report.rounds += transcript.rounds

            neighbor_ids = [
                int(x)
                for x in np.frombuffer(adjacency_raw, dtype="<i4")
                if x >= 0 and int(x) not in visited
            ]
            if not neighbor_ids:
                continue
            visited.update(neighbor_ids)
            # Round part 2: batched private fetch of the neighbor vectors.
            pir_start = time.perf_counter()
            blocks, transcript = self._vector_pir.retrieve_many(neighbor_ids, self._rng)
            server_seconds += time.perf_counter() - pir_start
            report.upload_bytes += transcript.upload_bytes
            report.download_bytes += transcript.download_bytes
            report.rounds += transcript.rounds

            neighbor_vectors = np.stack([bytes_to_vector(b) for b in blocks])
            diffs = neighbor_vectors - query
            dists = np.einsum("ij,ij->i", diffs, diffs)
            for neighbor_dist, neighbor in zip(dists.tolist(), neighbor_ids):
                if len(results) < ef_search or neighbor_dist < -results[0][0]:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef_search:
                        heapq.heappop(results)

        ordered = sorted((-negated, node) for negated, node in results)[:k]
        ids = np.array([node for _, node in ordered], dtype=np.int64)

        total_client = time.perf_counter() - client_start
        report.user_seconds = max(total_client - server_seconds, 0.0)
        report.server_seconds = server_seconds
        report.extra["expansions"] = float(rounds_used)
        return ids, report
