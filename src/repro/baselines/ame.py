"""AME — asymmetric matrix encryption (Zheng et al., IEEE TDSC 2024).

The paper uses AME as its strongest secure-comparison baseline
(Section III-C, Figures 6/8/9) and characterizes it by its shapes and
costs:

* secret key: 32 matrices in ``R^{(2d+6) x (2d+6)}``,
* each database vector: 32 vectors in ``R^{2d+6}``,
* each query: 16 matrices in ``R^{(2d+6) x (2d+6)}``,
* one comparison: 16 vector-matrix products + 16 inner products
  = ``64 d^2 + 416 d + 676`` multiply-accumulates (O(d^2), vs DCE's O(d)).

The TDSC construction itself is not reproduced in the paper, so this
module implements a *faithful shape-and-cost emulation* with exact
comparison semantics (documented in DESIGN.md §5): a hidden antisymmetric
bilinear form split into 16 additive shares, each conjugated by a pair of
secret invertible matrices.

Construction.  Augment ``v`` to ``psi(v) in R^{2d+6}``::

    psi(v) = r_v * [ -2v, ||v||^2, 1, rho_v ]

with ``rho_v`` being ``d+4`` fresh randoms, and let
``w(q) = [q, 1, ||q||^2, 0...]`` so ``psi(v).w(q) = r_v dist(v,q)``
and slot ``d+1`` of ``psi(v)`` equals ``r_v``.  With ``E_q = w c^T - c w^T``
(``c`` the slot-``d+1`` indicator)::

    psi(o)^T E_q psi(p) = r_o r_p (dist(o,q) - dist(p,q))

The key holds invertible ``A_j, B_j`` (j=1..16; 32 matrices).  A database
vector stores ``x_j = A_j^T psi(o)`` and ``y_j = B_j^{-1} psi(o)`` (32
vectors); a query publishes ``N_j = r_q A_j^{-1} E_q,j B_j`` where the
``E_q,j`` sum to ``E_q`` (16 matrices).  The comparison::

    Z = sum_j (x_j(o) N_j) . y_j(p) = r_o r_p r_q (dist(o,q) - dist(p,q))

with all randomizers positive, so the sign answers the comparison exactly
— the same oracle contract as DCE, at quadratic cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import CiphertextFormatError, DimensionMismatchError, KeyMismatchError
from repro.crypto.matrices import random_invertible_matrix

__all__ = ["AMEScheme", "AMECiphertext", "AMETrapdoor", "ame_mac_count", "AME_SHARES"]

#: Number of additive shares / matrix pairs (fixed by the TDSC design).
AME_SHARES = 16


def ame_mac_count(dim: int) -> int:
    """MACs per AME comparison: ``16 (2d+6)^2 + 16 (2d+6) ~ 64d^2+416d+676``."""
    width = 2 * dim + 6
    return AME_SHARES * width * width + AME_SHARES * width


@dataclass(frozen=True)
class AMECiphertext:
    """AME ciphertext of one database vector: 32 vectors in ``R^{2d+6}``.

    ``x_parts`` (16, 2d+6) serve the *o* role, ``y_parts`` the *p* role.
    """

    x_parts: np.ndarray
    y_parts: np.ndarray
    key_id: int

    def __post_init__(self) -> None:
        if self.x_parts.shape != self.y_parts.shape or self.x_parts.shape[0] != AME_SHARES:
            raise CiphertextFormatError(
                f"AME ciphertext must hold 2x{AME_SHARES} vectors, got "
                f"{self.x_parts.shape} / {self.y_parts.shape}"
            )

    @property
    def size_in_floats(self) -> int:
        """Total float count (32 * (2d+6))."""
        return int(self.x_parts.size + self.y_parts.size)


@dataclass(frozen=True)
class AMETrapdoor:
    """AME query trapdoor: 16 matrices in ``R^{(2d+6) x (2d+6)}``."""

    matrices: np.ndarray
    key_id: int

    def __post_init__(self) -> None:
        if self.matrices.ndim != 3 or self.matrices.shape[0] != AME_SHARES:
            raise CiphertextFormatError(
                f"AME trapdoor must hold {AME_SHARES} matrices, got {self.matrices.shape}"
            )

    @property
    def size_in_floats(self) -> int:
        """Total float count (16 * (2d+6)^2)."""
        return int(self.matrices.size)


class AMEScheme:
    """The AME scheme: keygen, encryption, trapdoors and comparison.

    Parameters
    ----------
    dim:
        Plaintext dimensionality.
    rng:
        Randomness for keys, padding and randomizers.
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None) -> None:
        if dim <= 0:
            raise ValueError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._width = 2 * dim + 6
        self._rng = rng if rng is not None else np.random.default_rng()
        pairs = [random_invertible_matrix(self._width, self._rng) for _ in range(AME_SHARES)]
        inverse_pairs = [random_invertible_matrix(self._width, self._rng) for _ in range(AME_SHARES)]
        self._a = np.stack([m for m, _ in pairs])
        self._a_inv = np.stack([m_inv for _, m_inv in pairs])
        self._b = np.stack([m for m, _ in inverse_pairs])
        self._b_inv = np.stack([m_inv for _, m_inv in inverse_pairs])
        self._key_id = int(self._rng.integers(0, 2**62))
        # Indicator of the constant slot (position d+1 of psi).
        self._constant_slot = dim + 1

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    @property
    def ciphertext_width(self) -> int:
        """Width ``2d+6`` of ciphertext component vectors."""
        return self._width

    def _augment(self, vectors: np.ndarray) -> np.ndarray:
        """``psi(v)`` rows for a batch, including positive per-vector scaling."""
        count = vectors.shape[0]
        norms = np.einsum("ij,ij->i", vectors, vectors)
        # -2v (d) + norm (1) + constant (1) + padding (d+4) = 2d+6 slots.
        padding = self._rng.standard_normal((count, self._dim + 4))
        psi = np.concatenate(
            [
                -2.0 * vectors,
                norms[:, None],
                np.ones((count, 1)),
                padding,
            ],
            axis=1,
        )
        scales = self._rng.uniform(0.5, 2.0, size=(count, 1))
        return psi * scales

    def encrypt(self, vector: np.ndarray) -> AMECiphertext:
        """Encrypt one database vector (32 component vectors)."""
        vector = self._check(vector)
        psi = self._augment(vector[np.newaxis])[0]
        x_parts = np.einsum("jwk,w->jk", self._a, psi)  # A_j^T psi
        y_parts = np.einsum("jkw,w->jk", self._b_inv, psi)  # B_j^{-1} psi
        return AMECiphertext(x_parts, y_parts, self._key_id)

    def encrypt_database(self, vectors: np.ndarray) -> list[AMECiphertext]:
        """Encrypt an ``(n, d)`` database."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="database")
        psi = self._augment(vectors)
        x_all = np.einsum("jwk,nw->njk", self._a, psi)
        y_all = np.einsum("jkw,nw->njk", self._b_inv, psi)
        return [
            AMECiphertext(x_all[i], y_all[i], self._key_id)
            for i in range(vectors.shape[0])
        ]

    def trapdoor(self, query: np.ndarray) -> AMETrapdoor:
        """Encrypt one query (16 matrices)."""
        query = self._check(query)
        # w satisfies psi(v).w = r_v * dist(v, q): slots [0:d] pair with
        # -2v, slot d (coefficient 1) with ||v||^2, slot d+1 (coefficient
        # ||q||^2) with the constant, and the padding slots see zeros.
        w = np.zeros(self._width)
        w[: self._dim] = query
        w[self._dim] = 1.0
        w[self._constant_slot] = float(query @ query)
        c = np.zeros(self._width)
        c[self._constant_slot] = 1.0
        form = np.outer(w, c) - np.outer(c, w)
        shares = self._rng.standard_normal((AME_SHARES, self._width, self._width))
        shares *= np.max(np.abs(form)) if np.max(np.abs(form)) > 0 else 1.0
        shares[-1] = form - shares[:-1].sum(axis=0)
        r_q = float(self._rng.uniform(0.5, 2.0))
        matrices = r_q * (self._a_inv @ shares @ self._b)
        return AMETrapdoor(matrices, self._key_id)

    def distance_comp(
        self,
        cipher_o: AMECiphertext,
        cipher_p: AMECiphertext,
        trapdoor: AMETrapdoor,
    ) -> float:
        """``Z = r_o r_p r_q (dist(o,q) - dist(p,q))``; only the sign leaks.

        Performs the paper-stated 16 vector-matrix products and 16 inner
        products, one per share.
        """
        if not (cipher_o.key_id == cipher_p.key_id == trapdoor.key_id):
            raise KeyMismatchError("AME ciphertexts and trapdoor keys differ")
        total = 0.0
        for share in range(AME_SHARES):
            projected = cipher_o.x_parts[share] @ trapdoor.matrices[share]
            total += float(projected @ cipher_p.y_parts[share])
        return total

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        return vector
