"""ASPE and its "enhanced" distance-leaking variants (Section III-A).

The base scheme (Wong et al., SIGMOD 2009) encrypts a database vector
``p`` as ``M^T p'`` and a query as ``M^{-1} q'`` with one secret invertible
matrix ``M``, where the augmented vectors::

    p' = [p, 1, ||p||^2]        q' = [-2q, ||q||^2, 1]

satisfy ``p'.q' = dist(p, q)``, so the server recovers the *exact*
distance from ``Enc(p).Trap(q)``.

Later variants tried to salvage KPA security by revealing only a
*transformation* of the distance — linear, exponential, logarithmic or
squared, with fresh per-query randomizers.  Section III of the paper
proves all four still fall to known-plaintext attacks; this module
implements the schemes and :mod:`repro.attacks.aspe_kpa` executes the
attacks against them.

The leakage value the server actually observes is ``Enc(p) . Trap(q)``
where the trapdoor folds in the per-query randomizers:

=============  =========================================================
variant        server observation per (p, q)
=============  =========================================================
EXACT          ``dist(p,q)``
LINEAR         ``r1 * dist(p,q) + r2``
EXPONENTIAL    ``exp(r1 * dist(p,q) + r2)``
LOGARITHMIC    ``log(r1 * dist(p,q) + r2)``, args kept positive
SQUARE         ``(r1 * dist(p,q) + r2)^2 + r3``
=============  =========================================================

All variants preserve *comparability* for nearest-neighbor ranking as
long as the transformation is monotone in ``dist`` (``r1 > 0``) — that is
why they were proposed — but none survive KPA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, KeyMismatchError
from repro.crypto.matrices import random_invertible_matrix

__all__ = ["DistanceTransform", "ASPEScheme", "ASPECiphertext", "ASPETrapdoor"]


class DistanceTransform(enum.Enum):
    """Which distance transformation an "enhanced" ASPE variant leaks."""

    EXACT = "exact"
    LINEAR = "linear"
    EXPONENTIAL = "exponential"
    LOGARITHMIC = "logarithmic"
    SQUARE = "square"


@dataclass(frozen=True)
class ASPECiphertext:
    """Encrypted database vector ``M^T p'`` (dimension ``d+2``)."""

    vector: np.ndarray
    key_id: int


@dataclass(frozen=True)
class ASPETrapdoor:
    """Encrypted query with the variant's per-query randomizers baked in.

    For the SQUARE variant the post-inner-product squaring needs the
    randomizers at observation time, so they ride along (they are public
    to the server in that variant's design: the server computes
    ``(Enc(p).vec)^2 + r3``; here ``vec`` already folds ``r1, r2``).
    """

    vector: np.ndarray
    transform: DistanceTransform
    key_id: int
    square_offset: float = 0.0


class ASPEScheme:
    """ASPE with selectable leakage transformation.

    Parameters
    ----------
    dim:
        Plaintext dimensionality.
    transform:
        Which variant to instantiate.
    rng:
        Randomness for the key and per-query randomizers.
    """

    def __init__(
        self,
        dim: int,
        transform: DistanceTransform = DistanceTransform.EXACT,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._transform = transform
        self._rng = rng if rng is not None else np.random.default_rng()
        self._matrix, self._matrix_inv = random_invertible_matrix(dim + 2, self._rng)
        self._key_id = int(self._rng.integers(0, 2**62))

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    @property
    def transform(self) -> DistanceTransform:
        """The variant's leakage transformation."""
        return self._transform

    def _augment_database(self, vectors: np.ndarray) -> np.ndarray:
        """``p -> p' = [p, 1, ||p||^2]`` rows."""
        norms = np.einsum("ij,ij->i", vectors, vectors)
        return np.concatenate(
            [vectors, np.ones((vectors.shape[0], 1)), norms[:, None]], axis=1
        )

    def encrypt(self, vector: np.ndarray) -> ASPECiphertext:
        """Encrypt one database vector."""
        vector = self._check(vector)
        augmented = self._augment_database(vector[np.newaxis])[0]
        return ASPECiphertext(self._matrix.T @ augmented, self._key_id)

    def encrypt_database(self, vectors: np.ndarray) -> list[ASPECiphertext]:
        """Encrypt an ``(n, d)`` database."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="database")
        augmented = self._augment_database(vectors)
        encrypted = augmented @ self._matrix  # row i = M^T p'_i
        return [ASPECiphertext(row, self._key_id) for row in encrypted]

    def trapdoor(self, query: np.ndarray) -> ASPETrapdoor:
        """Encrypt one query under the variant's randomization."""
        query = self._check(query)
        norm = float(query @ query)
        augmented = np.concatenate([-2.0 * query, [norm, 1.0]])
        r1 = float(self._rng.uniform(0.5, 2.0))  # positive: order-preserving
        r2 = float(self._rng.uniform(0.5, 2.0))
        r3 = float(self._rng.uniform(0.5, 2.0))
        if self._transform is DistanceTransform.EXPONENTIAL:
            # exp(r1*dist + r2) must stay in float range; the published
            # variants pick a small positive slope for exactly this reason.
            r1 *= 1e-4
        transform = self._transform
        if transform is DistanceTransform.EXACT:
            scaled = augmented
            offset = 0.0
        elif transform in (
            DistanceTransform.LINEAR,
            DistanceTransform.EXPONENTIAL,
            DistanceTransform.LOGARITHMIC,
            DistanceTransform.SQUARE,
        ):
            # Fold r1 into the whole augmented vector and r2 into the slot
            # that pairs with p's constant-1 coordinate (index d, holding
            # ||q||^2), so Enc(p).vec = r1*dist + r2.
            scaled = r1 * augmented
            scaled[-2] += r2
            offset = r3 if transform is DistanceTransform.SQUARE else 0.0
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unsupported transform {transform}")
        return ASPETrapdoor(
            vector=self._matrix_inv @ scaled,
            transform=transform,
            key_id=self._key_id,
            square_offset=offset,
        )

    def leakage(self, ciphertext: ASPECiphertext, trapdoor: ASPETrapdoor) -> float:
        """What the server observes for one (database vector, query) pair."""
        if ciphertext.key_id != trapdoor.key_id:
            raise KeyMismatchError("ASPE ciphertext and trapdoor keys differ")
        inner = float(ciphertext.vector @ trapdoor.vector)
        transform = trapdoor.transform
        if transform in (DistanceTransform.EXACT, DistanceTransform.LINEAR):
            return inner
        if transform is DistanceTransform.EXPONENTIAL:
            return float(np.exp(np.clip(inner, -700.0, 700.0)))
        if transform is DistanceTransform.LOGARITHMIC:
            # r1, r2 > 0 and dist >= 0 keep the argument positive.
            return float(np.log(inner))
        if transform is DistanceTransform.SQUARE:
            return inner * inner + trapdoor.square_offset
        raise ValueError(f"unsupported transform {transform}")  # pragma: no cover

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        return vector
