"""Fixed-width text rendering of experiment results.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output consistent and diff-friendly (the
EXPERIMENTS.md tables are generated from them).
"""

from __future__ import annotations

from repro.eval.runner import MethodCurve

__all__ = ["format_table", "format_curve"]


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render a fixed-width table.

    Floats are shown with four significant digits; everything else via
    ``str``.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_curve(curve: MethodCurve, parameter_name: str = "ef") -> str:
    """Render one recall/QPS curve as a table."""
    rows = [
        [point.parameter, point.recall, point.qps, point.mean_latency_seconds * 1e3]
        for point in curve.points
    ]
    return format_table(
        [parameter_name, "recall", "QPS", "latency_ms"],
        rows,
        title=curve.label,
    )
