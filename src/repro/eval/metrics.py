"""Accuracy and throughput metrics (Section VII, "Performance Metrics").

The paper reports efficiency as queries per second (QPS) and accuracy as
``Recall@k(q) = |N*(q) ∩ N(q)| / k`` averaged over the query set, with
``k = 10`` by default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ParameterError

__all__ = [
    "recall_at_k",
    "mean_recall",
    "qps_from_latencies",
    "LatencySummary",
    "summarize_latencies",
]


def recall_at_k(found: np.ndarray, truth: np.ndarray, k: int) -> float:
    """``|N*(q) ∩ N(q)| / k`` for one query.

    Parameters
    ----------
    found:
        Ids returned by the method under test (at most ``k`` used).
    truth:
        The exact k-nearest ids.
    k:
        The divisor; the paper always divides by ``k`` even if the method
        returned fewer ids.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    found_set = set(int(i) for i in np.asarray(found).ravel()[:k])
    truth_set = set(int(i) for i in np.asarray(truth).ravel()[:k])
    return len(found_set & truth_set) / k


def mean_recall(
    found_lists: list[np.ndarray], truth_lists: list[np.ndarray], k: int
) -> float:
    """Average Recall@k over a query workload."""
    if len(found_lists) != len(truth_lists):
        raise ParameterError(
            f"got {len(found_lists)} result lists but {len(truth_lists)} truth lists"
        )
    if not found_lists:
        raise ParameterError("need at least one query")
    return float(
        np.mean(
            [recall_at_k(f, t, k) for f, t in zip(found_lists, truth_lists)]
        )
    )


def qps_from_latencies(latencies_seconds: np.ndarray) -> float:
    """Queries per second implied by per-query latencies (single thread)."""
    latencies = np.asarray(latencies_seconds, dtype=np.float64)
    if latencies.size == 0:
        raise ParameterError("need at least one latency sample")
    total = float(latencies.sum())
    if total <= 0:
        raise ParameterError("latencies sum to zero; cannot compute QPS")
    return latencies.size / total


@dataclass(frozen=True)
class LatencySummary:
    """Latency distribution summary for one configuration.

    Attributes are all in seconds.
    """

    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @property
    def qps(self) -> float:
        """Single-thread QPS implied by the mean latency."""
        return 1.0 / self.mean if self.mean > 0 else float("inf")


def summarize_latencies(latencies_seconds: np.ndarray) -> LatencySummary:
    """Compute a :class:`LatencySummary` from raw per-query latencies."""
    latencies = np.asarray(latencies_seconds, dtype=np.float64)
    if latencies.size == 0:
        raise ParameterError("need at least one latency sample")
    return LatencySummary(
        mean=float(latencies.mean()),
        p50=float(np.percentile(latencies, 50)),
        p95=float(np.percentile(latencies, 95)),
        p99=float(np.percentile(latencies, 99)),
        maximum=float(latencies.max()),
    )
