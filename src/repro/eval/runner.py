"""Recall-vs-throughput curve sweeps.

Every figure in Section VII is a family of (Recall@k, QPS-or-latency)
curves produced by sweeping a beam/candidate parameter.  This module
standardizes those sweeps: it runs a query workload at each parameter
setting, measures wall-clock latency and Recall@k against exact ground
truth, and returns :class:`MethodCurve` objects the benchmarks and
reporting helpers consume.

:func:`sweep_shards` extends the family beyond the paper: it sweeps the
shard count of the scatter-gather serving layer
(:mod:`repro.core.sharding`), reporting filter-phase latency per shard
count so ``benchmarks/bench_sharding.py`` can plot the scaling curve.
:func:`sweep_refine_engine` does the same for the refine stage's
pluggable engines (:mod:`repro.core.refine`): one curve per engine over
a shared ``ef_search`` grid, so the heap-vs-vectorized latency gap is
visible at every operating point.  :func:`sweep_build` sweeps the
construction pipeline's ``build_workers`` knob
(:mod:`repro.core.build`), producing the build-time scaling curve
``benchmarks/bench_build.py`` asserts on.  :func:`sweep_serving`
sweeps the online layer's micro-batch latency window
(:mod:`repro.serve`): one point per window over an open-loop workload,
reporting served throughput, latency tails, and the realized mean
batch size — the curve ``benchmarks/bench_serving.py`` asserts on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ParameterError
from repro.core.roles import DataOwner
from repro.core.scheme import PPANNS
from repro.eval.metrics import recall_at_k
from repro.hnsw.bruteforce import exact_knn

__all__ = [
    "CurvePoint",
    "MethodCurve",
    "BuildPoint",
    "BuildCurve",
    "ServingPoint",
    "ServingCurve",
    "sweep_ppanns",
    "sweep_filter_only",
    "sweep_shards",
    "sweep_refine_engine",
    "sweep_build",
    "sweep_serving",
    "ground_truth",
]


@dataclass(frozen=True)
class CurvePoint:
    """One point of a recall/throughput curve.

    Attributes
    ----------
    parameter:
        The swept parameter value (``ef_search`` or ``ratio_k``).
    recall:
        Mean Recall@k over the workload.
    mean_latency_seconds:
        Mean per-query wall-clock latency.
    qps:
        Single-thread queries per second (``1 / mean_latency``).
    """

    parameter: float
    recall: float
    mean_latency_seconds: float

    @property
    def qps(self) -> float:
        """Single-thread throughput implied by the mean latency."""
        if self.mean_latency_seconds <= 0:
            return float("inf")
        return 1.0 / self.mean_latency_seconds


@dataclass(frozen=True)
class MethodCurve:
    """A labelled recall/throughput curve for one method/configuration."""

    label: str
    points: tuple[CurvePoint, ...]

    def best_recall(self) -> float:
        """The curve's recall ceiling."""
        return max(point.recall for point in self.points)

    def qps_at_recall(self, recall_floor: float) -> float | None:
        """Best QPS among points with recall >= ``recall_floor`` (None if none)."""
        eligible = [p.qps for p in self.points if p.recall >= recall_floor]
        return max(eligible) if eligible else None


@dataclass(frozen=True)
class BuildPoint:
    """One point of a build-time scaling curve.

    Attributes
    ----------
    parameter:
        The swept parameter value (``build_workers``).
    encrypt_seconds:
        Owner-side database-encryption wall clock (worker-independent;
        reported so the encrypt/build split stays visible).
    build_seconds:
        Filter-structure construction wall clock at this setting.
    shard_seconds:
        Per-shard build wall clocks (empty for a monolithic build).
    """

    parameter: float
    encrypt_seconds: float
    build_seconds: float
    shard_seconds: tuple[float, ...] = ()

    @property
    def total_seconds(self) -> float:
        """End-to-end owner-side build wall clock."""
        return self.encrypt_seconds + self.build_seconds


@dataclass(frozen=True)
class BuildCurve:
    """A labelled build-time scaling curve for one configuration."""

    label: str
    points: tuple[BuildPoint, ...]

    def speedup(self) -> float:
        """Build-phase speedup of the best point over the first.

        With a worker grid starting at 1 this is the parallel-over-
        sequential build speedup (encryption excluded — it is not what
        the worker knob parallelizes).
        """
        first = self.points[0].build_seconds
        best = min(point.build_seconds for point in self.points)
        if best <= 0:
            return float("inf")
        return first / best


def sweep_build(
    database: np.ndarray,
    beta: float,
    worker_grid: tuple[int, ...],
    backend: str = "hnsw",
    shards: int = 4,
    shard_strategy: str = "round_robin",
    build_mode: str = "sequential",
    hnsw_params=None,
    backend_params=None,
    seed: int = 0,
    label: str | None = None,
) -> BuildCurve:
    """Sweep ``build_workers`` for the parallel index-construction path.

    One owner is built per grid point from an identically seeded
    generator, so every point constructs the *same* index (the
    construction pipeline is bit-reproducible at any worker count — see
    :mod:`repro.core.build`) and the points differ only in wall clock.
    """
    points = []
    for workers in worker_grid:
        owner = DataOwner(
            database.shape[1],
            beta=beta,
            backend=backend,
            hnsw_params=hnsw_params,
            backend_params=backend_params,
            shards=shards,
            shard_strategy=shard_strategy,
            build_workers=workers,
            build_mode=build_mode,
            rng=np.random.default_rng(seed),
        )
        report = owner.build_index(database).build_report
        points.append(
            BuildPoint(
                parameter=float(workers),
                encrypt_seconds=report.encrypt_seconds,
                build_seconds=report.build_seconds,
                shard_seconds=tuple(
                    timing.seconds for timing in report.shard_timings
                ),
            )
        )
    return BuildCurve(
        label=label if label is not None else f"build({backend}, shards={shards})",
        points=tuple(points),
    )


@dataclass(frozen=True)
class ServingPoint:
    """One point of a serving-layer window sweep.

    Attributes
    ----------
    window_seconds:
        The swept micro-batch latency window.
    qps:
        Served throughput: queries / (last completion - first submit).
    latency_p50 / latency_p95 / latency_p99:
        End-to-end per-query latency percentiles (admission to
        completion) from the frontend's metrics.
    mean_batch_size:
        Mean scheduler-formed micro-batch size at this window.
    batches:
        Micro-batches dispatched.
    """

    window_seconds: float
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    mean_batch_size: float
    batches: int


@dataclass(frozen=True)
class ServingCurve:
    """A labelled throughput/latency curve over the batch-window grid."""

    label: str
    points: tuple[ServingPoint, ...]

    def best_qps(self) -> float:
        """The curve's throughput ceiling."""
        return max(point.qps for point in self.points)

    def best_point(self) -> ServingPoint:
        """The point with the highest served throughput."""
        return max(self.points, key=lambda point: point.qps)


def sweep_serving(
    scheme: PPANNS,
    queries: np.ndarray,
    k: int,
    window_grid: tuple[float, ...],
    max_batch_size: int = 32,
    ratio_k: int | None = None,
    ef_search: int | None = None,
    rate: float | None = None,
    seed: int = 0,
    label: str | None = None,
) -> ServingCurve:
    """Sweep the micro-batch latency window of the online serving layer.

    The workload is encrypted query-by-query up front (the online model:
    each user ships an individual :class:`EncryptedQuery`) and replayed
    open-loop through a fresh
    :class:`~repro.serve.frontend.ServingFrontend` per window —
    submissions never wait for answers, so the scheduler, not the
    client, sets the batching.  ``rate`` is the Poisson arrival rate in
    queries/second (inter-arrivals drawn from a seeded exponential);
    ``None`` submits back-to-back, the heavy-traffic limit.
    """
    from repro.serve import replay_open_loop

    encrypted = [
        scheme.user.encrypt_query(query, k, ratio_k=ratio_k, ef_search=ef_search)
        for query in queries
    ]
    points = []
    for window in window_grid:
        frontend = scheme.serve(
            max_batch_size=max_batch_size,
            batch_window_seconds=window,
            max_queue_depth=max(1024, len(encrypted)),
        )
        with frontend:
            _, elapsed = replay_open_loop(frontend, encrypted, rate=rate, seed=seed)
            snapshot = frontend.metrics.snapshot()
        points.append(
            ServingPoint(
                window_seconds=float(window),
                qps=len(encrypted) / elapsed if elapsed > 0 else float("inf"),
                latency_p50=snapshot.latency_p50,
                latency_p95=snapshot.latency_p95,
                latency_p99=snapshot.latency_p99,
                mean_batch_size=snapshot.mean_batch_size,
                batches=snapshot.batches,
            )
        )
    return ServingCurve(
        label=label if label is not None else f"serving(max_batch={max_batch_size})",
        points=tuple(points),
    )


def ground_truth(
    database: np.ndarray, queries: np.ndarray, k: int
) -> list[np.ndarray]:
    """Exact k-NN ids for every query (the recall reference)."""
    return [exact_knn(database, query, k)[0] for query in queries]


def sweep_ppanns(
    scheme: PPANNS,
    queries: np.ndarray,
    truth: list[np.ndarray],
    k: int,
    ratio_k: int,
    ef_grid: tuple[int, ...],
    label: str | None = None,
) -> MethodCurve:
    """Sweep ``ef_search`` for the full filter-and-refine scheme.

    Query encryption happens outside the timed region — the paper measures
    *server-side* search performance (Section VII: "Our solution is mainly
    performed on the server, so we focus on the server-side search
    performance").
    """
    if len(truth) != len(queries):
        raise ParameterError("truth list does not match query count")
    encrypted = scheme.user.encrypt_queries(queries, k)
    points = []
    for ef in ef_grid:
        start = time.perf_counter()
        results = scheme.server.answer(encrypted, ratio_k=ratio_k, ef_search=ef)
        elapsed = time.perf_counter() - start
        recalls = [
            recall_at_k(result.ids, query_truth, k)
            for result, query_truth in zip(results, truth)
        ]
        points.append(
            CurvePoint(
                parameter=float(ef),
                recall=float(np.mean(recalls)),
                mean_latency_seconds=elapsed / len(queries),
            )
        )
    return MethodCurve(
        label=label if label is not None else f"PP-ANNS(ratio_k={ratio_k})",
        points=tuple(points),
    )


def sweep_shards(
    database: np.ndarray,
    queries: np.ndarray,
    truth: list[np.ndarray],
    k: int,
    shard_grid: tuple[int, ...],
    beta: float,
    backend: str = "bruteforce",
    shard_strategy: str = "round_robin",
    ratio_k: int = 8,
    ef_search: int | None = None,
    seed: int = 0,
    label: str | None = None,
) -> MethodCurve:
    """Sweep the shard count of the scatter-gather serving layer.

    One scheme is built per shard count (shard backends are constructed
    over the partitioned ciphertexts, so the build is part of the swept
    configuration); each point reports the filter-phase mean latency —
    the phase sharding parallelizes — and Recall@k, with the shard count
    as the curve parameter.
    """
    if len(truth) != len(queries):
        raise ParameterError("truth list does not match query count")
    points = []
    for num_shards in shard_grid:
        scheme = PPANNS(
            dim=database.shape[1],
            beta=beta,
            backend=backend,
            shards=num_shards,
            shard_strategy=shard_strategy,
            rng=np.random.default_rng(seed),
        ).fit(database)
        results = scheme.query_batch(
            queries, k, ratio_k=ratio_k, ef_search=ef_search
        )
        recalls = [
            recall_at_k(result.ids, query_truth, k)
            for result, query_truth in zip(results, truth)
        ]
        points.append(
            CurvePoint(
                parameter=float(num_shards),
                recall=float(np.mean(recalls)),
                mean_latency_seconds=results.filter_seconds / len(queries),
            )
        )
    return MethodCurve(
        label=label if label is not None else f"sharded({backend})",
        points=tuple(points),
    )


def sweep_refine_engine(
    scheme: PPANNS,
    queries: np.ndarray,
    truth: list[np.ndarray],
    k: int,
    ratio_k: int,
    ef_grid: tuple[int, ...],
    engines: tuple[str, ...] = ("heap", "vectorized"),
) -> list[MethodCurve]:
    """One recall/latency curve per refine engine over a shared ef grid.

    Both engines answer the *same* encrypted batch at every grid point
    (the engine is a per-call server override), so the curves differ
    only in refine-stage implementation; recalls coincide because the
    vectorized engine is bit-identical to the heap reference.
    """
    if len(truth) != len(queries):
        raise ParameterError("truth list does not match query count")
    encrypted = scheme.user.encrypt_queries(queries, k)
    curves = []
    for engine in engines:
        points = []
        for ef in ef_grid:
            start = time.perf_counter()
            results = scheme.server.answer(
                encrypted, ratio_k=ratio_k, ef_search=ef, refine_engine=engine
            )
            elapsed = time.perf_counter() - start
            recalls = [
                recall_at_k(result.ids, query_truth, k)
                for result, query_truth in zip(results, truth)
            ]
            points.append(
                CurvePoint(
                    parameter=float(ef),
                    recall=float(np.mean(recalls)),
                    mean_latency_seconds=elapsed / len(queries),
                )
            )
        curves.append(MethodCurve(label=f"refine={engine}", points=tuple(points)))
    return curves


def sweep_filter_only(
    scheme: PPANNS,
    queries: np.ndarray,
    truth: list[np.ndarray],
    k: int,
    ef_grid: tuple[int, ...],
    label: str = "HNSW(filter)",
) -> MethodCurve:
    """Sweep ``ef_search`` for the filter phase alone (Figure 4 / 6)."""
    if len(truth) != len(queries):
        raise ParameterError("truth list does not match query count")
    encrypted = scheme.user.encrypt_queries(queries, k, ratio_k=1, mode="filter_only")
    points = []
    for ef in ef_grid:
        start = time.perf_counter()
        results = scheme.server.answer(encrypted, ef_search=ef)
        elapsed = time.perf_counter() - start
        recalls = [
            recall_at_k(result.ids, query_truth, k)
            for result, query_truth in zip(results, truth)
        ]
        points.append(
            CurvePoint(
                parameter=float(ef),
                recall=float(np.mean(recalls)),
                mean_latency_seconds=elapsed / len(queries),
            )
        )
    return MethodCurve(label=label, points=tuple(points))
