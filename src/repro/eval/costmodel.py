"""Cost accounting: network model and per-query cost reports.

The paper's headline result — up to 3 orders of magnitude speedup over
RS-SANN / PACM-ANN / PRI-ANN — comes mostly from *where* work happens:
our scheme answers queries entirely server-side with two tiny messages,
while the baselines ship candidate sets or run multi-round PIR walks
through the client.  To reproduce those comparisons honestly on a single
machine we measure all compute for real and convert communication into
latency with an explicit, configurable network model.

``NetworkModel(rtt_seconds, bandwidth_bytes_per_second)`` charges
``rounds * rtt + bytes / bandwidth`` — the standard first-order WAN model.
The defaults (20 ms RTT, 100 Mbit/s) describe the paper's cloud-to-user
setting; benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ParameterError

__all__ = ["NetworkModel", "CostReport", "SetupCost"]


@dataclass(frozen=True)
class SetupCost:
    """One-time owner-side setup cost, split the way Figure 9 needs it.

    ``DataOwner.build_index`` both encrypts the database and constructs
    the filter structures; a Fig-9-style cost attribution must charge
    the two to different columns (encryption is cryptographic work the
    owner always pays; construction parallelizes with
    ``build_workers``).  The split comes straight from the index's
    :class:`~repro.core.build.BuildReport` (:meth:`from_build_report`).

    Attributes
    ----------
    encrypt_seconds:
        DCPE + DCE database-encryption wall clock.
    build_seconds:
        Filter-structure construction wall clock.
    """

    encrypt_seconds: float = 0.0
    build_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.encrypt_seconds < 0 or self.build_seconds < 0:
            raise ParameterError("setup seconds must be non-negative")

    @classmethod
    def from_build_report(cls, report) -> "SetupCost":
        """The split recorded by the construction pipeline."""
        return cls(
            encrypt_seconds=report.encrypt_seconds,
            build_seconds=report.build_seconds,
        )

    @property
    def total_seconds(self) -> float:
        """End-to-end setup wall clock."""
        return self.encrypt_seconds + self.build_seconds

    def amortized_seconds(self, num_queries: int) -> float:
        """Per-query setup share over a workload of ``num_queries``."""
        if num_queries < 1:
            raise ParameterError(f"num_queries must be >= 1, got {num_queries}")
        return self.total_seconds / num_queries


@dataclass(frozen=True)
class NetworkModel:
    """First-order latency model for user<->server communication.

    Attributes
    ----------
    rtt_seconds:
        Round-trip time charged per protocol round.
    bandwidth_bytes_per_second:
        Link bandwidth for payload transfer (both directions pooled).
    """

    rtt_seconds: float = 0.020
    bandwidth_bytes_per_second: float = 12_500_000.0  # 100 Mbit/s

    def __post_init__(self) -> None:
        if self.rtt_seconds < 0:
            raise ParameterError(f"rtt must be non-negative, got {self.rtt_seconds}")
        if self.bandwidth_bytes_per_second <= 0:
            raise ParameterError(
                f"bandwidth must be positive, got {self.bandwidth_bytes_per_second}"
            )

    def latency(self, total_bytes: int, rounds: int) -> float:
        """Seconds of network latency for a transfer."""
        if total_bytes < 0 or rounds < 0:
            raise ParameterError("bytes and rounds must be non-negative")
        return rounds * self.rtt_seconds + total_bytes / self.bandwidth_bytes_per_second

    @classmethod
    def localhost(cls) -> "NetworkModel":
        """A near-zero-cost network, for ablating communication effects."""
        return cls(rtt_seconds=1e-6, bandwidth_bytes_per_second=1e12)


@dataclass
class CostReport:
    """Full per-query cost split for any PP-ANNS method.

    Mirrors the three components of Section V-C: server-side compute,
    user-side compute and communication.  The evaluation harness fills
    compute fields from wall-clock measurement and communication from the
    protocol's byte/round counts via a :class:`NetworkModel`.
    """

    method: str
    server_seconds: float = 0.0
    user_seconds: float = 0.0
    upload_bytes: int = 0
    download_bytes: int = 0
    rounds: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def network_seconds(self, model: NetworkModel) -> float:
        """Modelled network latency for this query."""
        return model.latency(self.upload_bytes + self.download_bytes, self.rounds)

    def total_seconds(self, model: NetworkModel) -> float:
        """End-to-end latency: server + user + network."""
        return self.server_seconds + self.user_seconds + self.network_seconds(model)

    def merge(self, other: "CostReport") -> None:
        """Accumulate another query's costs (for averaging)."""
        self.server_seconds += other.server_seconds
        self.user_seconds += other.user_seconds
        self.upload_bytes += other.upload_bytes
        self.download_bytes += other.download_bytes
        self.rounds += other.rounds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def scaled(self, factor: float) -> "CostReport":
        """A copy with every additive field multiplied by ``factor``."""
        return CostReport(
            method=self.method,
            server_seconds=self.server_seconds * factor,
            user_seconds=self.user_seconds * factor,
            upload_bytes=int(self.upload_bytes * factor),
            download_bytes=int(self.download_bytes * factor),
            rounds=int(self.rounds * factor),
            extra={key: value * factor for key, value in self.extra.items()},
        )
