"""ASCII rendering of recall/throughput curves.

The paper's figures are log-scale recall-vs-QPS plots; without a plotting
stack in the offline environment, this module renders
:class:`~repro.eval.runner.MethodCurve` families as fixed-width ASCII
charts so benchmark output shows the curve *shapes*, not just tables.
Different curves get different glyphs; the y-axis is log-scaled when the
value range spans more than a decade (as in every figure of the paper).
"""

from __future__ import annotations

import math

from repro.core.errors import ParameterError
from repro.eval.runner import MethodCurve

__all__ = ["render_curves"]

_GLYPHS = "ox+*#@%&"


def render_curves(
    curves: list[MethodCurve],
    width: int = 60,
    height: int = 16,
    y_metric: str = "qps",
    title: str | None = None,
) -> str:
    """Render recall-vs-metric curves as an ASCII chart.

    Parameters
    ----------
    curves:
        The curve family (max 8; one glyph each).
    width, height:
        Plot area size in characters.
    y_metric:
        ``"qps"`` or ``"latency"`` (mean seconds).
    title:
        Optional heading line.

    Returns
    -------
    str
        A multi-line chart with axes, legend and log-scale annotation.
    """
    if not curves:
        raise ParameterError("need at least one curve")
    if len(curves) > len(_GLYPHS):
        raise ParameterError(f"at most {len(_GLYPHS)} curves supported")
    if width < 10 or height < 4:
        raise ParameterError("plot area too small")

    def y_value(point) -> float:
        if y_metric == "qps":
            return point.qps
        if y_metric == "latency":
            return point.mean_latency_seconds
        raise ParameterError(f"unknown y_metric {y_metric!r}")

    points = [
        (point.recall, y_value(point), glyph)
        for curve, glyph in zip(curves, _GLYPHS)
        for point in curve.points
    ]
    x_values = [x for x, _, _ in points]
    y_values = [y for _, y, _ in points if y > 0]
    if not y_values:
        raise ParameterError("no positive y values to plot")
    x_low, x_high = min(x_values), max(x_values)
    y_low, y_high = min(y_values), max(y_values)
    log_scale = y_high / max(y_low, 1e-300) > 10.0

    def x_column(x: float) -> int:
        if x_high == x_low:
            return width // 2
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def y_row(y: float) -> int:
        if log_scale:
            low, high = math.log10(y_low), math.log10(y_high)
            value = math.log10(max(y, y_low))
        else:
            low, high = y_low, y_high
            value = y
        if high == low:
            return height // 2
        fraction = (value - low) / (high - low)
        return (height - 1) - round(fraction * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for x, y, glyph in points:
        if y <= 0:
            continue
        grid[y_row(y)][x_column(x)] = glyph

    unit = "QPS" if y_metric == "qps" else "s"
    lines = []
    if title:
        lines.append(title)
    scale_note = " (log y)" if log_scale else ""
    lines.append(f"{unit}{scale_note}")
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label.rjust(label_width)
        elif row_index == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    axis = f"recall {x_low:.2f}"
    lines.append(
        " " * (label_width + 2) + axis
        + f"{x_high:.2f}".rjust(width - len(axis))
    )
    for curve, glyph in zip(curves, _GLYPHS):
        lines.append(f"  {glyph} = {curve.label}")
    return "\n".join(lines)
