"""Analytic operation-count model — Section V-C, as executable formulas.

The paper's cost analysis assigns each phase a complexity:

* filter phase: ``O(d log n)`` distance computations on DCPE ciphertexts
  (HNSW search; in practice ``ef_search`` bounds the beam so we model
  ``hops ~ ef * log(n)`` expansions of average degree ``m``),
* refine phase: ``O(d k' log k)`` — at most ``log k`` DCE comparisons
  (each ``4d + 32`` MACs) per offered candidate,
* user side: ``O(d^2)`` for the trapdoor, ``O(d)`` for the DCPE query,
* communication: ``36d + 260`` bytes up (paper's accounting; ours differs
  slightly by float width — both provided), ``4k`` bytes down.

:func:`predict_query_cost` evaluates these for a parameter set, and the
test suite checks the predictions against measured instrumentation from
:class:`~repro.core.search.SearchResult` — keeping the implementation
honest about its own asymptotics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.dce import sdc_mac_count
from repro.core.errors import ParameterError
from repro.hnsw.distance import distance_mac_count

__all__ = ["QueryCostModel", "predict_query_cost"]


@dataclass(frozen=True)
class QueryCostModel:
    """Predicted per-query costs for one parameter set.

    All compute figures are multiply-accumulate counts; communication is
    bytes.
    """

    filter_distance_computations: float
    filter_macs: float
    refine_comparisons: float
    refine_macs: float
    user_macs: float
    upload_bytes_paper: int
    upload_bytes_actual: int
    download_bytes: int

    @property
    def server_macs(self) -> float:
        """Total server-side MACs (filter + refine)."""
        return self.filter_macs + self.refine_macs


def predict_query_cost(
    n: int,
    dim: int,
    k: int,
    ratio_k: int,
    ef_search: int,
    graph_degree: int = 16,
) -> QueryCostModel:
    """Evaluate the Section V-C cost formulas for one configuration.

    Parameters
    ----------
    n:
        Database size.
    dim:
        Vector dimensionality.
    k, ratio_k:
        Result size and ``k'/k`` multiplier.
    ef_search:
        Filter-phase beam width.
    graph_degree:
        Average out-degree of the layer-0 graph (2m for HNSW).
    """
    if min(n, dim, k, ratio_k, ef_search) <= 0:
        raise ParameterError("all parameters must be positive")
    k_prime = ratio_k * k
    # Filter: the beam expands ~ef nodes; each expansion evaluates the
    # distances of its (unvisited) neighbors.  The log n term of the
    # paper's O(d log n) covers the upper-layer descent.
    expansions = ef_search + math.log2(max(n, 2))
    filter_distances = expansions * graph_degree
    filter_macs = filter_distances * distance_mac_count(dim)
    # Refine: k' offers, each costing at most ceil(log2 k)+1 comparisons.
    comparisons_per_offer = math.ceil(math.log2(k)) + 1 if k > 1 else 1
    refine_comparisons = k_prime * comparisons_per_offer
    refine_macs = refine_comparisons * sdc_mac_count(dim)
    # User: trapdoor is two (d/2+4)^2 matrix-vector products plus the
    # (2d+16)^2 M3^-1 product; DCPE query is O(d).
    half = dim // 2 + 4
    full = 2 * dim + 16
    user_macs = 2 * half * half + full * full + dim
    # Communication.
    upload_paper = 36 * dim + 260
    upload_actual = 4 * dim + 8 * (2 * dim + 16) + 4
    return QueryCostModel(
        filter_distance_computations=filter_distances,
        filter_macs=filter_macs,
        refine_comparisons=refine_comparisons,
        refine_macs=refine_macs,
        user_macs=float(user_macs),
        upload_bytes_paper=upload_paper,
        upload_bytes_actual=upload_actual,
        download_bytes=4 * k,
    )
