"""Evaluation harness: metrics, cost modelling, sweeps and reporting.

This subpackage regenerates the paper's Section VII experiments:

* :mod:`repro.eval.metrics` — Recall@k, QPS, latency summaries.
* :mod:`repro.eval.costmodel` — a configurable network model that converts
  bytes and round trips into latency, plus MAC-count accounting, so
  user-involved baselines (RS-SANN, PACM-ANN, PRI-ANN) pay their
  communication bills the way the paper's testbed would.
* :mod:`repro.eval.runner` — recall-vs-QPS curve sweeps over ``ef_search``
  / ``ratio_k`` for any method exposing the common search protocol.
* :mod:`repro.eval.reporting` — fixed-width text tables mirroring the
  paper's tables and figure series.
"""

from repro.eval.costmodel import CostReport, NetworkModel, SetupCost
from repro.eval.metrics import (
    LatencySummary,
    recall_at_k,
    mean_recall,
    qps_from_latencies,
    summarize_latencies,
)
from repro.eval.opcount import QueryCostModel, predict_query_cost
from repro.eval.plotting import render_curves
from repro.eval.runner import (
    BuildCurve,
    BuildPoint,
    CurvePoint,
    MethodCurve,
    sweep_build,
    sweep_filter_only,
    sweep_ppanns,
)
from repro.eval.reporting import format_table, format_curve

__all__ = [
    "CostReport",
    "NetworkModel",
    "SetupCost",
    "BuildCurve",
    "BuildPoint",
    "sweep_build",
    "LatencySummary",
    "recall_at_k",
    "mean_recall",
    "qps_from_latencies",
    "summarize_latencies",
    "CurvePoint",
    "MethodCurve",
    "sweep_ppanns",
    "sweep_filter_only",
    "format_table",
    "format_curve",
    "render_curves",
    "QueryCostModel",
    "predict_query_cost",
]
