"""Quantifying what the privacy-preserving index leaks.

The paper's threat model (Section II-B) concedes that the server-side
index leaks *approximate neighborhood relationships* — the edges of the
HNSW graph over DCPE ciphertexts — and argues this is acceptable because
DCPE noise makes those relationships inexact (Section V-A: "the edges of
HNSW built on them do not reflect the exact neighborhood ... which
enhances the data privacy").  The knob is beta, tuned in Section VII-A so
the filter-only recall ceiling is ~0.5, i.e. "the attacker's probability
of guessing the true neighbor correctly is only 50%".

This module turns those arguments into measurements:

* :func:`neighborhood_overlap` — how much of the *true* k-NN graph an
  adversary reconstructs from the DCPE ciphertexts alone (what index
  edges can reveal, at most).
* :func:`scaled_reconstruction_error` — how far the DCPE ciphertext is
  from the (secret-)scaled plaintext, relative to the data spread: the
  plaintext leakage of ``C = s*p + noise`` if ``s`` were known.
* :class:`LeakageProfile` / :func:`profile_beta_leakage` — both metrics
  swept over beta, the quantified version of the paper's privacy/accuracy
  trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.core.errors import ParameterError
from repro.hnsw.bruteforce import exact_knn

__all__ = [
    "neighborhood_overlap",
    "scaled_reconstruction_error",
    "LeakageProfile",
    "profile_beta_leakage",
]


def neighborhood_overlap(
    plaintexts: np.ndarray,
    ciphertexts: np.ndarray,
    k: int = 10,
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Mean overlap between true and ciphertext-space k-NN lists.

    For each (sampled) vector, compute its k nearest neighbors among the
    plaintexts and among the DCPE ciphertexts and return the average
    Jaccard-style overlap ``|intersection| / k``.  This bounds what graph
    edges can leak: an index built on ciphertexts cannot encode more
    neighborhood truth than the ciphertexts themselves contain.
    """
    plaintexts = np.asarray(plaintexts, dtype=np.float64)
    ciphertexts = np.asarray(ciphertexts, dtype=np.float64)
    if plaintexts.shape[0] != ciphertexts.shape[0]:
        raise ParameterError("plaintexts and ciphertexts must align")
    n = plaintexts.shape[0]
    if n < k + 2:
        raise ParameterError(f"need at least k+2 vectors, got {n}")
    rng = rng if rng is not None else np.random.default_rng()
    if sample_size is not None and sample_size < n:
        probes = rng.choice(n, size=sample_size, replace=False)
    else:
        probes = np.arange(n)
    overlaps = []
    for probe in probes:
        mask = np.arange(n) != probe
        others_plain = plaintexts[mask]
        others_cipher = ciphertexts[mask]
        true_ids, _ = exact_knn(others_plain, plaintexts[probe], k)
        leaked_ids, _ = exact_knn(others_cipher, ciphertexts[probe], k)
        overlaps.append(len(set(true_ids.tolist()) & set(leaked_ids.tolist())) / k)
    return float(np.mean(overlaps))


def scaled_reconstruction_error(
    plaintexts: np.ndarray, ciphertexts: np.ndarray, scale: float
) -> float:
    """Relative plaintext reconstruction error if the scale were known.

    ``C = s*p + lambda`` means an adversary knowing ``s`` recovers
    ``p_hat = C / s`` with error ``||lambda|| / s``.  Returns the mean of
    ``||p_hat - p|| / spread`` where ``spread`` is the dataset's RMS
    norm — i.e. leakage as a fraction of the data's own magnitude.
    """
    plaintexts = np.asarray(plaintexts, dtype=np.float64)
    recovered = np.asarray(ciphertexts, dtype=np.float64) / scale
    errors = np.linalg.norm(recovered - plaintexts, axis=1)
    spread = float(np.sqrt((plaintexts**2).sum(axis=1).mean()))
    if spread == 0:
        return float("inf") if errors.mean() > 0 else 0.0
    return float(errors.mean() / spread)


@dataclass(frozen=True)
class LeakageProfile:
    """Leakage metrics at one beta.

    Attributes
    ----------
    beta:
        The DCPE noise budget.
    neighborhood_overlap:
        Fraction of true k-NN edges recoverable from ciphertexts (1.0 =
        index edges reveal exact neighborhoods; the paper aims ~0.5).
    reconstruction_error:
        Known-scale plaintext recovery error relative to data spread
        (higher = less plaintext leakage).
    """

    beta: float
    neighborhood_overlap: float
    reconstruction_error: float


def profile_beta_leakage(
    plaintexts: np.ndarray,
    betas: tuple[float, ...],
    scale: float = 1024.0,
    k: int = 10,
    sample_size: int = 64,
    rng: np.random.Generator | None = None,
) -> list[LeakageProfile]:
    """Sweep beta and measure both leakage metrics at each value.

    Overlap decreases and reconstruction error increases with beta —
    the quantified form of Figure 4's privacy side.
    """
    rng = rng if rng is not None else np.random.default_rng()
    profiles = []
    for beta in betas:
        scheme = DCPEScheme(
            plaintexts.shape[1], dcpe_keygen(beta, scale=scale, rng=rng), rng=rng
        )
        ciphertexts = scheme.encrypt_database(plaintexts)
        profiles.append(
            LeakageProfile(
                beta=beta,
                neighborhood_overlap=neighborhood_overlap(
                    plaintexts, ciphertexts, k=k, sample_size=sample_size, rng=rng
                ),
                reconstruction_error=scaled_reconstruction_error(
                    plaintexts, ciphertexts, scale
                ),
            )
        )
    return profiles
