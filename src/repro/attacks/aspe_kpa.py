"""Constructive KPA attacks on the ASPE variants (Section III-A).

Attack model.  The adversary (the curious server) holds the encrypted
database ``C_P``, the encrypted queries ``C_Q``, and a leaked plaintext
subset ``P_leak`` whose correspondence with ciphertexts is known.  For
each (database vector, query) pair it can evaluate the scheme's leakage
``L(C_p, T_q)`` — that is the value the scheme *uses* to rank neighbors,
so it is observable by design.

Stage 1 (Theorem 1 / Corollaries 1-2): for each query, the leakage is a
known monotone transformation of ``p' . x`` where ``p' = [p, 1, ||p||^2]``
is a *public* function of the leaked plaintext and ``x`` is the trapdoor's
underlying plaintext (folding the per-query randomizers).  With
``d+2`` leaked plaintexts the attacker solves the linear system
``P' x = t(L)`` (``t`` = identity / log / exp for the linear /
exponential / logarithmic variants) and reads the query off ``x``:
``q = -x[:d] / (2 x[d+1])``.

Stage 1' (Theorem 2, SQUARE variant): ``L = (p'.x)^2 + r3`` is linear in
the *quadratic features* of ``p'`` — the upper triangle of ``p' p'^T``
plus a constant — a system of ``(d+2)(d+3)/2 + 1`` unknowns.  Solving it
yields ``x x^T`` (and ``r3``), from which ``x`` is recovered via the
top eigenvector / column-ratio method with the global sign fixed by
``x[d+1] = r1 > 0``.

Stage 2: with ``d+2`` recovered trapdoor plaintexts ``x_j``, any database
vector's ``p'`` satisfies the linear system ``X p' = t(L_j)`` — full
plaintext recovery of vectors *outside* the leaked set.

The control experiment :func:`dce_linear_attack_error` runs the same
shape of attack against DCE and reports the (large) reconstruction
error: DCE's pair-specific positive randomizers destroy the linear
structure the attack needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.aspe import ASPECiphertext, ASPEScheme, ASPETrapdoor, DistanceTransform
from repro.core.errors import ParameterError

__all__ = [
    "QueryRecovery",
    "ASPEAttacker",
    "required_leak_size",
    "dce_linear_attack_error",
]


def required_leak_size(dim: int, transform: DistanceTransform) -> int:
    """Leaked plaintexts needed to recover one query.

    ``d+2`` for the linear-family variants (Theorem 1), and
    ``(d+2)(d+3)/2 + 1`` — the paper's ``0.5 d^2 + 2.5 d + 3`` quadratic
    feature count plus the ``r3`` constant — for SQUARE (Theorem 2).
    """
    if transform is DistanceTransform.SQUARE:
        return (dim + 2) * (dim + 3) // 2 + 1
    return dim + 2


@dataclass(frozen=True)
class QueryRecovery:
    """Result of a stage-1 attack on one query.

    Attributes
    ----------
    query:
        The recovered plaintext query vector.
    trapdoor_plain:
        The recovered underlying trapdoor vector ``x`` (used by stage 2).
    square_offset:
        Recovered ``r3`` (SQUARE variant only; 0 otherwise).
    """

    query: np.ndarray
    trapdoor_plain: np.ndarray
    square_offset: float = 0.0


def _augment(plaintexts: np.ndarray) -> np.ndarray:
    """``p -> p' = [p, 1, ||p||^2]`` rows (public knowledge)."""
    norms = np.einsum("ij,ij->i", plaintexts, plaintexts)
    return np.concatenate(
        [plaintexts, np.ones((plaintexts.shape[0], 1)), norms[:, None]], axis=1
    )


def _quadratic_features(augmented: np.ndarray, dim: int) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Independent quadratic features of ``p' = [p, 1, ||p||^2]``.

    The full upper triangle of ``p' p'^T`` is rank-deficient as a feature
    map: ``p'_d == 1`` makes the ``(d, d)`` feature a constant (which also
    absorbs the SQUARE variant's ``r3``), and ``p'_d * p'_{d+1} == ||p||^2
    == sum_i p_i^2`` duplicates the sum of the ``(i, i)`` features.  We
    therefore drop the ``(d, d+1)`` feature — its coefficient folds into
    the diagonal ones — leaving exactly the paper's ``0.5 d^2 + 2.5 d + 3``
    independent unknowns (Theorem 2).

    Returns the feature matrix and the (row, col) index of each column.
    """
    width = augmented.shape[1]
    pairs = [
        (r, c)
        for r in range(width)
        for c in range(r, width)
        if (r, c) != (dim, dim + 1)
    ]
    columns = []
    for r, c in pairs:
        factor = 1.0 if r == c else 2.0
        columns.append(factor * augmented[:, r] * augmented[:, c])
    return np.stack(columns, axis=1), pairs


class ASPEAttacker:
    """Executes the Section III attacks for a chosen ASPE variant.

    Parameters
    ----------
    dim:
        Plaintext dimensionality of the attacked scheme.
    transform:
        The variant under attack.
    """

    def __init__(self, dim: int, transform: DistanceTransform) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._transform = transform

    @property
    def required_leak_size(self) -> int:
        """Minimum leaked plaintexts for stage 1."""
        return required_leak_size(self._dim, self._transform)

    def _linearize(self, leakages: np.ndarray) -> np.ndarray:
        """Invert the variant's outer transformation (Corollaries 1-2)."""
        if self._transform is DistanceTransform.EXPONENTIAL:
            return np.log(leakages)
        if self._transform is DistanceTransform.LOGARITHMIC:
            return np.exp(leakages)
        return leakages

    def recover_query(
        self, leaked_plaintexts: np.ndarray, leakages: np.ndarray
    ) -> QueryRecovery:
        """Stage 1: recover one query from leaked plaintexts + leakage values.

        Parameters
        ----------
        leaked_plaintexts:
            ``(m, d)`` known plaintexts with ``m >= required_leak_size``.
        leakages:
            The server-observable ``L(C_{p_i}, T_q)`` for the same rows.
        """
        leaked_plaintexts = np.asarray(leaked_plaintexts, dtype=np.float64)
        leakages = np.asarray(leakages, dtype=np.float64)
        if leaked_plaintexts.shape[0] < self.required_leak_size:
            raise ParameterError(
                f"need at least {self.required_leak_size} leaked plaintexts, "
                f"got {leaked_plaintexts.shape[0]}"
            )
        augmented = _augment(leaked_plaintexts)
        if self._transform is DistanceTransform.SQUARE:
            return self._recover_query_square(augmented, leakages)
        values = self._linearize(leakages)
        x, *_ = np.linalg.lstsq(augmented, values, rcond=None)
        return QueryRecovery(query=self._query_from_x(x), trapdoor_plain=x)

    def _recover_query_square(
        self, augmented: np.ndarray, leakages: np.ndarray
    ) -> QueryRecovery:
        """Theorem 2: solve the quadratic-feature system and factor out x.

        After solving ``Theta ~ x x^T`` (reduced features), read ``x``
        from the ``||p||^2`` row: those entries — ``x_a x_{d+1}`` for
        ``a <= d`` and ``x_{d+1}^2`` — involve cubic/quartic monomials
        that do not collide with the dropped dependent features, so they
        are recovered exactly.  ``x_{d+1} = r1 > 0`` fixes all signs, and
        ``r3`` falls out of the ``(d, d)`` coefficient ``x_d^2 + r3``.
        """
        dim = self._dim
        features, pairs = _quadratic_features(augmented, dim)
        theta, *_ = np.linalg.lstsq(features, leakages, rcond=None)
        coefficient = dict(zip(pairs, theta))
        norm_slot = dim + 1
        x = np.zeros(dim + 2)
        x_norm_sq = coefficient[(norm_slot, norm_slot)]
        if x_norm_sq <= 0:
            raise ParameterError("square attack failed: non-positive x_{d+1}^2")
        x[norm_slot] = float(np.sqrt(x_norm_sq))  # r1 > 0
        for a in range(dim):
            x[a] = coefficient[(a, norm_slot)] / x[norm_slot]
        # The (d, d+1) feature was dropped as dependent, so x_d comes from
        # the (a*, d) coefficient x_{a*} x_d via the best-conditioned a*.
        anchor = int(np.argmax(np.abs(x[:dim])))
        if abs(x[anchor]) < 1e-12:
            raise ParameterError("square attack failed: query too close to zero")
        x[dim] = coefficient[(anchor, dim)] / x[anchor]
        offset = float(coefficient[(dim, dim)] - x[dim] ** 2)
        return QueryRecovery(
            query=self._query_from_x(x), trapdoor_plain=x, square_offset=offset
        )

    def _query_from_x(self, x: np.ndarray) -> np.ndarray:
        """``x = [-2 r1 q, r1 ||q||^2 + r2, r1] -> q``."""
        r1 = x[-1]
        if abs(r1) < 1e-12:
            raise ParameterError("degenerate trapdoor: recovered r1 is zero")
        return -x[: self._dim] / (2.0 * r1)

    def recover_database_vector(
        self, recoveries: list[QueryRecovery], leakages: np.ndarray
    ) -> np.ndarray:
        """Stage 2: recover an unknown database vector from known queries.

        Parameters
        ----------
        recoveries:
            At least ``d+2`` stage-1 results (their ``trapdoor_plain``).
        leakages:
            ``L(C_p, T_{q_j})`` for the victim vector across those queries.
        """
        if len(recoveries) < self._dim + 2:
            raise ParameterError(
                f"need at least {self._dim + 2} recovered queries, got {len(recoveries)}"
            )
        leakages = np.asarray(leakages, dtype=np.float64)
        x_matrix = np.stack([rec.trapdoor_plain for rec in recoveries])
        if self._transform is DistanceTransform.SQUARE:
            # L = (p'.x)^2 + r3, and p'.x = r1 dist + r2 > 0: positive root.
            offsets = np.array([rec.square_offset for rec in recoveries])
            values = np.sqrt(np.maximum(leakages - offsets, 0.0))
        else:
            values = self._linearize(leakages)
        augmented, *_ = np.linalg.lstsq(x_matrix, values, rcond=None)
        return augmented[: self._dim]

    # -- convenience driver ----------------------------------------------------

    def full_attack(
        self,
        scheme: ASPEScheme,
        leaked_plaintexts: np.ndarray,
        leaked_ciphertexts: list[ASPECiphertext],
        trapdoors: list[ASPETrapdoor],
        victim_ciphertext: ASPECiphertext,
    ) -> tuple[list[QueryRecovery], np.ndarray]:
        """Run both stages against a live scheme instance.

        Returns the recovered queries and the recovered victim plaintext.
        """
        recoveries = []
        for trapdoor in trapdoors:
            leaks = np.array(
                [scheme.leakage(ct, trapdoor) for ct in leaked_ciphertexts]
            )
            recoveries.append(self.recover_query(leaked_plaintexts, leaks))
        victim_leaks = np.array(
            [scheme.leakage(victim_ciphertext, trapdoor) for trapdoor in trapdoors]
        )
        victim = self.recover_database_vector(recoveries, victim_leaks)
        return recoveries, victim


def dce_linear_attack_error(
    dim: int,
    num_leaked: int,
    rng: np.random.Generator,
    scale: float = 5.0,
    randomizer_range: tuple[float, float] = (0.5, 2.0),
) -> float:
    """Control experiment: the Theorem-1 attack shape against DCE.

    The attacker knows ``num_leaked`` plaintexts and observes, for a fresh
    query, the DCE comparison values ``Z_{p_i, p_0, q}`` against a fixed
    reference vector — the *only* distance-related signal DCE emits.  It
    then tries the same move as against ASPE: regress the observations on
    the augmented plaintexts ``[p, 1, ||p||^2]`` and read off a query.

    Because every ``Z`` carries its own hidden positive factor
    ``2 r_{p_i} r_{p_0} r_q`` (and the ciphertext layout is permuted and
    masked), the regression residual stays large and the "recovered"
    query is unrelated to the truth.  Returns the relative L2 error of the
    recovered query — expected O(1), versus ~1e-6 for broken ASPE.
    """
    from repro.core.dce import DCEScheme, distance_comp

    if num_leaked < dim + 2:
        raise ParameterError(f"need at least {dim + 2} leaked plaintexts")
    scheme = DCEScheme(dim, rng=rng, randomizer_range=randomizer_range)
    plaintexts = rng.standard_normal((num_leaked, dim)) * scale
    query = rng.standard_normal(dim) * scale
    database = scheme.encrypt_database(plaintexts)
    trapdoor = scheme.trapdoor(query)
    # Observable signal: comparisons of each leaked vector against p_0.
    observations = np.array(
        [
            distance_comp(database[i], database[0], trapdoor)
            for i in range(num_leaked)
        ]
    )
    augmented = _augment(plaintexts)
    x, *_ = np.linalg.lstsq(augmented, observations, rcond=None)
    r1 = x[-1]
    if abs(r1) < 1e-12:
        return float("inf")
    recovered = -x[:dim] / (2.0 * r1)
    return float(np.linalg.norm(recovered - query) / np.linalg.norm(query))
