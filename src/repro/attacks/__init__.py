"""Known-plaintext attacks — Section III, executed as code.

:mod:`repro.attacks.aspe_kpa` implements the constructive proofs of
Theorem 1, Corollaries 1-2 and Theorem 2: given a leaked subset of
plaintexts and the server's observable leakage values, the attacker
recovers query vectors and then arbitrary database vectors from every
"enhanced" ASPE variant.  The same module provides a control experiment
showing the analogous linear-system attack fails against DCE.
"""

from repro.attacks.aspe_kpa import (
    ASPEAttacker,
    QueryRecovery,
    dce_linear_attack_error,
    required_leak_size,
)
from repro.attacks.leakage import (
    LeakageProfile,
    neighborhood_overlap,
    profile_beta_leakage,
    scaled_reconstruction_error,
)

__all__ = [
    "ASPEAttacker",
    "QueryRecovery",
    "required_leak_size",
    "dce_linear_attack_error",
    "LeakageProfile",
    "neighborhood_overlap",
    "profile_beta_leakage",
    "scaled_reconstruction_error",
]
