"""Workloads: synthetic generators, file loaders, ground truth.

The paper evaluates on Sift1M / Gist / Glove / Deep1M (Table I) plus
samples of Sift1B / Deep1B.  Offline, :mod:`repro.datasets.synthetic`
generates clustered datasets with the same dimensionalities and ANN
difficulty profile at laptop scale; :mod:`repro.datasets.loaders` reads
the real ``.fvecs`` / ``.ivecs`` / ``.bvecs`` files when present.
"""

from repro.datasets.ground_truth import GroundTruth, compute_ground_truth
from repro.datasets.loaders import read_fvecs, read_ivecs, read_bvecs, write_fvecs
from repro.datasets.synthetic import (
    DATASET_PROFILES,
    Dataset,
    DatasetProfile,
    make_dataset,
    make_clustered,
)

__all__ = [
    "Dataset",
    "DatasetProfile",
    "DATASET_PROFILES",
    "make_dataset",
    "make_clustered",
    "GroundTruth",
    "compute_ground_truth",
    "read_fvecs",
    "read_ivecs",
    "read_bvecs",
    "write_fvecs",
]
