"""Synthetic stand-ins for the paper's evaluation datasets.

Table I datasets (Sift1M, Gist, Glove, Deep1M) are real-world corpora we
cannot download offline.  What the paper's curves actually depend on is
the datasets' *ANN difficulty*: clustered mass with varying local
intrinsic dimensionality, so graph search exhibits the familiar
recall-vs-ef trade-off and DCPE noise degrades neighbor identity
smoothly.  :func:`make_clustered` generates a Gaussian-mixture dataset
with heavy-tailed cluster sizes and per-cluster anisotropy that
reproduces that regime; :data:`DATASET_PROFILES` parameterizes one
profile per paper dataset (matching dimensionality and value scale).

Queries are drawn from the same mixture (held out), matching how the
benchmark query sets were collected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ParameterError

__all__ = [
    "Dataset",
    "DatasetProfile",
    "DATASET_PROFILES",
    "make_clustered",
    "make_dataset",
]


@dataclass(frozen=True)
class Dataset:
    """A generated workload: database, queries and its profile name.

    Attributes
    ----------
    name:
        Profile name (e.g. ``"sift"``).
    database:
        ``(n, d)`` float64 database vectors.
    queries:
        ``(m, d)`` float64 query vectors (held out of the database).
    """

    name: str
    database: np.ndarray
    queries: np.ndarray

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self.database.shape[1])

    @property
    def num_vectors(self) -> int:
        """Database size."""
        return int(self.database.shape[0])

    @property
    def num_queries(self) -> int:
        """Query-set size."""
        return int(self.queries.shape[0])

    @property
    def max_abs_coordinate(self) -> float:
        """``M = max |p_i|`` — enters the valid beta range (Section V-A)."""
        return float(np.max(np.abs(self.database)))


@dataclass(frozen=True)
class DatasetProfile:
    """Generation parameters mimicking one of the paper's datasets.

    Attributes
    ----------
    dim:
        Dimensionality from Table I.
    num_clusters:
        Mixture components (descriptors cluster strongly; embeddings less).
    cluster_spread:
        Within-cluster standard deviation relative to between-cluster
        spread — controls ANN difficulty.
    value_scale:
        Coordinate magnitude scale (SIFT-like descriptors live in
        [0, 255]; GloVe embeddings are small reals).
    nonnegative:
        Clip to non-negative coordinates (true for SIFT/GIST histograms).
    """

    dim: int
    num_clusters: int
    cluster_spread: float
    value_scale: float
    nonnegative: bool


#: One profile per Table I dataset, matching its dimensionality.
DATASET_PROFILES: dict[str, DatasetProfile] = {
    "sift": DatasetProfile(
        dim=128, num_clusters=64, cluster_spread=0.35, value_scale=128.0, nonnegative=True
    ),
    "gist": DatasetProfile(
        dim=960, num_clusters=32, cluster_spread=0.30, value_scale=1.0, nonnegative=True
    ),
    "glove": DatasetProfile(
        dim=100, num_clusters=48, cluster_spread=0.45, value_scale=4.0, nonnegative=False
    ),
    "deep": DatasetProfile(
        dim=96, num_clusters=64, cluster_spread=0.35, value_scale=1.0, nonnegative=False
    ),
}


def make_clustered(
    num_vectors: int,
    dim: int,
    num_queries: int,
    num_clusters: int = 32,
    cluster_spread: float = 0.35,
    value_scale: float = 1.0,
    nonnegative: bool = False,
    rng: np.random.Generator | None = None,
    name: str = "clustered",
) -> Dataset:
    """Generate a clustered Gaussian-mixture dataset.

    Cluster sizes follow a Zipf-like distribution (real corpora are
    unbalanced), and each cluster gets a random anisotropic covariance via
    per-axis scale draws, which keeps local intrinsic dimensionality below
    the ambient dimension — the property that makes graph ANN effective.
    """
    if num_vectors <= 0 or num_queries <= 0:
        raise ParameterError("num_vectors and num_queries must be positive")
    if dim <= 0:
        raise ParameterError(f"dim must be positive, got {dim}")
    if num_clusters <= 0:
        raise ParameterError(f"num_clusters must be positive, got {num_clusters}")
    rng = rng if rng is not None else np.random.default_rng()

    centers = rng.standard_normal((num_clusters, dim)) * value_scale
    # Zipf-ish cluster weights.
    weights = 1.0 / np.arange(1, num_clusters + 1)
    weights /= weights.sum()
    # Per-cluster anisotropy: each axis scaled by a lognormal draw.
    axis_scales = np.exp(rng.normal(0.0, 0.5, size=(num_clusters, dim)))

    def sample(count: int) -> np.ndarray:
        assignments = rng.choice(num_clusters, size=count, p=weights)
        noise = rng.standard_normal((count, dim))
        scaled = noise * axis_scales[assignments] * (cluster_spread * value_scale)
        points = centers[assignments] + scaled
        if nonnegative:
            points = np.abs(points)
        return points

    database = sample(num_vectors)
    queries = sample(num_queries)
    return Dataset(name=name, database=database, queries=queries)


def make_dataset(
    profile_name: str,
    num_vectors: int = 10_000,
    num_queries: int = 100,
    rng: np.random.Generator | None = None,
) -> Dataset:
    """Generate the scaled-down stand-in for a named paper dataset.

    Parameters
    ----------
    profile_name:
        One of ``"sift"``, ``"gist"``, ``"glove"``, ``"deep"``.
    num_vectors, num_queries:
        Scale (the paper used 1M vectors; benchmarks here default smaller).
    """
    if profile_name not in DATASET_PROFILES:
        raise ParameterError(
            f"unknown profile {profile_name!r}; choose from {sorted(DATASET_PROFILES)}"
        )
    profile = DATASET_PROFILES[profile_name]
    return make_clustered(
        num_vectors=num_vectors,
        dim=profile.dim,
        num_queries=num_queries,
        num_clusters=profile.num_clusters,
        cluster_spread=profile.cluster_spread,
        value_scale=profile.value_scale,
        nonnegative=profile.nonnegative,
        rng=rng,
        name=profile_name,
    )
