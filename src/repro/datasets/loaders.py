"""Readers/writers for the classic ANN benchmark file formats.

``.fvecs`` / ``.ivecs`` / ``.bvecs`` (TexMex / corpus-texmex.irisa.fr
layout): each vector is stored as a little-endian int32 dimension header
followed by ``d`` components (float32 / int32 / uint8 respectively).
When the real Sift1M/Gist/Deep files are available these loaders let the
benchmarks run on them unchanged.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.errors import ParameterError

__all__ = ["read_fvecs", "read_ivecs", "read_bvecs", "write_fvecs"]


def _read_vecs(path: str | os.PathLike, component_dtype: np.dtype, component_size: int,
               limit: int | None) -> np.ndarray:
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < 4:
        raise ParameterError(f"{path}: file too small to contain a vector header")
    dim = int(np.frombuffer(raw[:4], dtype="<i4")[0])
    if dim <= 0:
        raise ParameterError(f"{path}: invalid dimension header {dim}")
    record_bytes = 4 + dim * component_size
    if len(raw) % record_bytes != 0:
        raise ParameterError(
            f"{path}: size {len(raw)} is not a multiple of record size {record_bytes}"
        )
    count = len(raw) // record_bytes
    if limit is not None:
        count = min(count, limit)
    buffer = np.frombuffer(raw, dtype=np.uint8)[: count * record_bytes]
    records = buffer.reshape(count, record_bytes)
    payload = records[:, 4:].copy()
    return payload.view(component_dtype).reshape(count, dim)


def read_fvecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read an ``.fvecs`` file into an ``(n, d)`` float64 array."""
    return _read_vecs(path, np.dtype("<f4"), 4, limit).astype(np.float64)


def read_ivecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read an ``.ivecs`` file (e.g. ground-truth ids) into int64."""
    return _read_vecs(path, np.dtype("<i4"), 4, limit).astype(np.int64)


def read_bvecs(path: str | os.PathLike, limit: int | None = None) -> np.ndarray:
    """Read a ``.bvecs`` file (byte vectors, e.g. Sift1B) into float64."""
    return _read_vecs(path, np.dtype("u1"), 1, limit).astype(np.float64)


def write_fvecs(path: str | os.PathLike, vectors: np.ndarray) -> None:
    """Write an ``(n, d)`` array as ``.fvecs`` (float32 payload)."""
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ParameterError(f"expected a 2-D array, got shape {vectors.shape}")
    count, dim = vectors.shape
    header = np.full((count, 1), dim, dtype="<i4")
    payload = vectors.astype("<f4")
    with open(path, "wb") as handle:
        for i in range(count):
            handle.write(header[i].tobytes())
            handle.write(payload[i].tobytes())
