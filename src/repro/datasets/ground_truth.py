"""Exact nearest-neighbor ground truth for a workload.

Computed once per (database, queries, k) and reused across sweeps — recall
measurement is by far the most repeated operation in the benchmark
harness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ParameterError
from repro.hnsw.bruteforce import exact_knn

__all__ = ["GroundTruth", "compute_ground_truth"]


@dataclass(frozen=True)
class GroundTruth:
    """Exact neighbors for a query workload.

    Attributes
    ----------
    k:
        Neighbors stored per query.
    ids:
        ``(num_queries, k)`` exact neighbor ids, nearest first.
    distances:
        Matching squared distances.
    """

    k: int
    ids: np.ndarray
    distances: np.ndarray

    def for_query(self, query_index: int) -> np.ndarray:
        """Exact neighbor ids of one query."""
        return self.ids[query_index]

    def __len__(self) -> int:
        return int(self.ids.shape[0])


def compute_ground_truth(
    database: np.ndarray, queries: np.ndarray, k: int
) -> GroundTruth:
    """Brute-force exact k-NN for every query."""
    database = np.asarray(database, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2:
        raise ParameterError(f"queries must be 2-D, got shape {queries.shape}")
    all_ids = []
    all_dists = []
    for query in queries:
        ids, dists = exact_knn(database, query, k)
        all_ids.append(ids)
        all_dists.append(dists)
    return GroundTruth(k=k, ids=np.stack(all_ids), distances=np.stack(all_dists))
