"""Paillier additively homomorphic encryption, from scratch.

Section III of the paper *excludes* homomorphic-encryption-based secure
distance comparison "due to their significant computational overhead".
To make that exclusion a measured fact rather than a citation, this
module implements the classic Paillier cryptosystem (additively
homomorphic: ``Enc(a) * Enc(b) = Enc(a+b)``, ``Enc(a)^k = Enc(k*a)``)
which is the standard substrate of HE-based k-NN schemes (e.g. the
eHealthcare schemes cited as [42], [43]): the server combines encrypted
squared norms and inner-product terms homomorphically, and a decryptor
recovers distances.

The implementation is textbook Paillier over python ints:

* ``KeyGen``: n = p*q with |p| = |q| = key_bits/2, g = n+1,
  lambda = lcm(p-1, q-1), mu = lambda^{-1} mod n.
* ``Enc(m) = g^m * r^n mod n^2`` with fresh ``r``.
* ``Dec(c) = L(c^lambda mod n^2) * mu mod n`` with ``L(x) = (x-1)/n``.

Vectors are encoded componentwise as fixed-point integers.  Key sizes
default to 1024 bits — small by modern standards but already slow enough
to make the paper's point by orders of magnitude.  Do not use for real
data protection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["PaillierKeypair", "PaillierPublicKey", "PaillierPrivateKey",
           "paillier_keygen", "HEDistanceProtocol"]

# Deterministic Miller-Rabin witnesses valid for all candidates < 3.3e24;
# for larger candidates they make the test overwhelmingly accurate.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def _is_probable_prime(candidate: int) -> bool:
    if candidate < 2:
        return False
    for small in _MR_WITNESSES:
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for witness in _MR_WITNESSES:
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: np.random.Generator) -> int:
    while True:
        raw = rng.integers(0, 256, size=bits // 8, dtype=np.uint8).tobytes()
        candidate = int.from_bytes(raw, "big")
        candidate |= (1 << (bits - 1)) | 1  # full length, odd
        if _is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """Public key ``(n, g)`` with ``g = n + 1``."""

    n: int

    @property
    def n_squared(self) -> int:
        """Modulus of the ciphertext group."""
        return self.n * self.n

    @property
    def g(self) -> int:
        """Standard generator ``n + 1``."""
        return self.n + 1


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Private key ``(lambda, mu)``."""

    lam: int
    mu: int


@dataclass(frozen=True)
class PaillierKeypair:
    """A public/private keypair."""

    public: PaillierPublicKey
    private: PaillierPrivateKey


def paillier_keygen(key_bits: int = 1024, rng: np.random.Generator | None = None) -> PaillierKeypair:
    """Generate a Paillier keypair with an ``key_bits``-bit modulus."""
    if key_bits < 64 or key_bits % 2 != 0:
        raise ValueError(f"key_bits must be an even integer >= 64, got {key_bits}")
    rng = rng if rng is not None else np.random.default_rng()
    while True:
        p = _random_prime(key_bits // 2, rng)
        q = _random_prime(key_bits // 2, rng)
        if p != q:
            break
    n = p * q
    lam = math.lcm(p - 1, q - 1)
    n_squared = n * n
    # mu = (L(g^lambda mod n^2))^{-1} mod n, with g = n+1 this simplifies,
    # but compute it generically for clarity.
    g_lambda = pow(n + 1, lam, n_squared)
    l_value = (g_lambda - 1) // n
    mu = pow(l_value, -1, n)
    return PaillierKeypair(PaillierPublicKey(n), PaillierPrivateKey(lam, mu))


class HEDistanceProtocol:
    """Secure distance computation over Paillier — the excluded baseline.

    Protocol (the standard HE k-NN arrangement): the data owner encrypts,
    per database vector ``p``, the fixed-point encodings of ``||p||^2``
    and every coordinate ``p_i``.  Given a plaintext-held query ``q`` the
    server computes, *entirely over ciphertexts*::

        Enc(dist(p, q) - ||q||^2) = Enc(||p||^2) * prod_i Enc(p_i)^{-2 q_i}

    using homomorphic addition and scalar multiplication.  A decryption
    oracle (the user, in those schemes) recovers the value; the shared
    ``||q||^2`` offset cancels in comparisons.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    keypair:
        Paillier keys; generated if omitted (slow for large key_bits).
    precision:
        Fixed-point scaling factor for float encoding.
    """

    def __init__(
        self,
        dim: int,
        keypair: PaillierKeypair | None = None,
        key_bits: int = 1024,
        precision: int = 10**6,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        self._keys = keypair if keypair is not None else paillier_keygen(key_bits, self._rng)
        self._precision = precision

    @property
    def public_key(self) -> PaillierPublicKey:
        """The public key (held by the server)."""
        return self._keys.public

    # -- core Paillier operations ---------------------------------------------

    def encrypt_int(self, message: int) -> int:
        """Encrypt an integer (mod n)."""
        public = self._keys.public
        n, n_squared = public.n, public.n_squared
        message %= n
        while True:
            raw = self._rng.integers(0, 256, size=n.bit_length() // 8, dtype=np.uint8)
            r = int.from_bytes(raw.tobytes(), "big") % n
            if r > 1 and math.gcd(r, n) == 1:
                break
        return (pow(public.g, message, n_squared) * pow(r, n, n_squared)) % n_squared

    def decrypt_int(self, ciphertext: int) -> int:
        """Decrypt to a centered integer in ``(-n/2, n/2]``."""
        public, private = self._keys.public, self._keys.private
        n, n_squared = public.n, public.n_squared
        l_value = (pow(ciphertext, private.lam, n_squared) - 1) // n
        message = (l_value * private.mu) % n
        if message > n // 2:
            message -= n
        return message

    def add(self, cipher_a: int, cipher_b: int) -> int:
        """Homomorphic addition: ``Enc(a) * Enc(b) = Enc(a + b)``."""
        return (cipher_a * cipher_b) % self._keys.public.n_squared

    def scalar_multiply(self, cipher: int, scalar: int) -> int:
        """Homomorphic scalar multiplication: ``Enc(a)^k = Enc(k a)``."""
        n_squared = self._keys.public.n_squared
        if scalar < 0:
            cipher = pow(cipher, -1, n_squared)
            scalar = -scalar
        return pow(cipher, scalar, n_squared)

    # -- the distance protocol ----------------------------------------------------

    def _encode(self, value: float) -> int:
        return int(round(value * self._precision))

    def encrypt_vector(self, vector: np.ndarray) -> dict[str, object]:
        """Owner-side encryption of one database vector."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self._dim,):
            raise ValueError(f"expected a ({self._dim},) vector, got {vector.shape}")
        squared_norm = float(vector @ vector)
        return {
            "norm": self.encrypt_int(self._encode(squared_norm) * self._precision),
            "coords": [self.encrypt_int(self._encode(v)) for v in vector],
        }

    def encrypted_distance_term(self, ciphertext: dict[str, object], query: np.ndarray) -> int:
        """Server-side: ``Enc((||p||^2 - 2 p.q) * precision^2)``.

        One homomorphic scalar-multiply per coordinate plus d additions —
        this is the operation whose cost rules HE out (Section III).
        """
        query = np.asarray(query, dtype=np.float64)
        accumulator = ciphertext["norm"]
        for coord_cipher, q_value in zip(ciphertext["coords"], query):
            scalar = -2 * self._encode(q_value)
            accumulator = self.add(accumulator, self.scalar_multiply(coord_cipher, scalar))
        return accumulator

    def decrypted_distance(self, distance_cipher: int, query: np.ndarray) -> float:
        """Decryptor-side: recover ``dist(p, q)`` from the protocol output."""
        query = np.asarray(query, dtype=np.float64)
        raw = self.decrypt_int(distance_cipher)
        partial = raw / (self._precision * self._precision)
        return partial + float(query @ query)
