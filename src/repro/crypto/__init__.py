"""Cryptographic substrates used by the PP-ANNS scheme and its baselines.

This subpackage provides the low-level building blocks that the paper's
constructions are assembled from:

* :mod:`repro.crypto.matrices` — sampling of well-conditioned random
  invertible matrices (secret keys of DCE, ASPE and AME).
* :mod:`repro.crypto.permutation` — random coordinate permutations used by
  the vector-randomization phase of DCE.
* :mod:`repro.crypto.aes` — a from-scratch AES-128 block cipher with CTR
  mode, the "distance incomparable" encryption used by the RS-SANN
  baseline.
* :mod:`repro.crypto.pir` — a 2-server XOR-based private information
  retrieval protocol, the communication substrate of the PACM-ANN and
  PRI-ANN baselines.
* :mod:`repro.crypto.paillier` — Paillier additively homomorphic
  encryption, the HE baseline the paper excludes for cost (measured in
  the SDC micro-benchmark).
* :mod:`repro.crypto.serialization` — byte-level vector packing used when
  vectors travel through AES or PIR.
"""

from repro.crypto.aes import AES128, AESCTRCipher
from repro.crypto.matrices import (
    random_invertible_matrix,
    random_orthogonal_matrix,
    split_rows,
)
from repro.crypto.paillier import (
    HEDistanceProtocol,
    PaillierKeypair,
    paillier_keygen,
)
from repro.crypto.permutation import Permutation
from repro.crypto.pir import TwoServerXorPIR, PIRTranscript
from repro.crypto.serialization import (
    vector_to_bytes,
    bytes_to_vector,
    vectors_to_bytes,
    bytes_to_vectors,
)

__all__ = [
    "AES128",
    "AESCTRCipher",
    "HEDistanceProtocol",
    "PaillierKeypair",
    "paillier_keygen",
    "random_invertible_matrix",
    "random_orthogonal_matrix",
    "split_rows",
    "Permutation",
    "TwoServerXorPIR",
    "PIRTranscript",
    "vector_to_bytes",
    "bytes_to_vector",
    "vectors_to_bytes",
    "bytes_to_vectors",
]
