"""Byte-level packing of vectors.

RS-SANN ships AES-encrypted vectors over the (modelled) network and the PIR
baselines serve fixed-size database blocks; both need a canonical byte
layout for float vectors.  We use little-endian float32 — the layout of the
classic ``.fvecs`` ANN benchmark files — so byte counts in the cost model
match what the paper's testbed would transfer.

The network envelope (``repro.net.codec``) reuses these helpers: DCPE
ciphertexts travel as float32 (the paper's wire accounting), DCE
trapdoors as float64 — the ``*_f64`` pair below — because the trapdoor's
comparison algebra is exact and must round-trip bit-identically.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "vector_to_bytes",
    "bytes_to_vector",
    "vectors_to_bytes",
    "bytes_to_vectors",
    "vectors_to_bytes_f64",
    "bytes_to_vectors_f64",
    "BYTES_PER_COMPONENT",
    "BYTES_PER_COMPONENT_F64",
]

#: Serialized size of one vector component (float32).
BYTES_PER_COMPONENT = 4

#: Serialized size of one float64 component (the trapdoor wire dtype).
BYTES_PER_COMPONENT_F64 = 8


def vector_to_bytes(vector: np.ndarray) -> bytes:
    """Serialize a 1-D vector as little-endian float32 bytes."""
    vector = np.asarray(vector)
    if vector.ndim != 1:
        raise ValueError(f"expected a 1-D vector, got shape {vector.shape}")
    return vector.astype("<f4").tobytes()


def bytes_to_vector(data: bytes) -> np.ndarray:
    """Inverse of :func:`vector_to_bytes`; returns float64 for computation."""
    if len(data) % BYTES_PER_COMPONENT != 0:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of {BYTES_PER_COMPONENT}"
        )
    return np.frombuffer(data, dtype="<f4").astype(np.float64)


def vectors_to_bytes(vectors: np.ndarray) -> bytes:
    """Serialize a 2-D ``(n, d)`` array row-major as float32 bytes."""
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {vectors.shape}")
    return vectors.astype("<f4").tobytes()


def bytes_to_vectors(data: bytes, dim: int) -> np.ndarray:
    """Inverse of :func:`vectors_to_bytes` for a known dimensionality."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    flat = bytes_to_vector(data)
    if flat.size % dim != 0:
        raise ValueError(f"{flat.size} components do not divide into rows of {dim}")
    return flat.reshape(-1, dim)


def vectors_to_bytes_f64(vectors: np.ndarray) -> bytes:
    """Serialize a 2-D array row-major as little-endian float64 bytes.

    The exact (lossless) counterpart of :func:`vectors_to_bytes`: DCE
    trapdoors travel at full precision because the refine phase's
    comparison outcomes must be bit-identical across the wire.
    """
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {vectors.shape}")
    return vectors.astype("<f8").tobytes()


def bytes_to_vectors_f64(data: bytes, dim: int) -> np.ndarray:
    """Inverse of :func:`vectors_to_bytes_f64` for a known dimensionality.

    ``dim == 0`` is legal and returns a ``(0, 0)`` matrix for empty
    payloads — the ``filter_only`` zero-trapdoor case; callers reshape
    to the row count they carry out of band.
    """
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    if len(data) % BYTES_PER_COMPONENT_F64 != 0:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of "
            f"{BYTES_PER_COMPONENT_F64}"
        )
    flat = np.frombuffer(data, dtype="<f8").astype(np.float64)
    if dim == 0:
        if flat.size != 0:
            raise ValueError(f"{flat.size} components with dim=0")
        return flat.reshape(0, 0)
    if flat.size % dim != 0:
        raise ValueError(f"{flat.size} components do not divide into rows of {dim}")
    return flat.reshape(-1, dim)
