"""Two-server XOR-based private information retrieval.

The PACM-ANN and PRI-ANN baselines retrieve index/database blocks from the
cloud *without revealing which block*, via private information retrieval.
We implement the classic information-theoretic 2-server scheme (Chor,
Goldreich, Kushilevitz, Sudan 1995): the client sends each server a random
subset of block indices; the subsets differ exactly in the wanted block;
each server XORs its subset of blocks together; the client XORs the two
replies to recover the block.  Neither server alone learns anything about
the queried index.

Each query carries a :class:`PIRTranscript` with byte counts so the
baselines' cost model can convert communication into modelled latency —
the dominant term in the paper's Figure 7/9 comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TwoServerXorPIR", "PIRTranscript"]


@dataclass(frozen=True)
class PIRTranscript:
    """Accounting record for one PIR retrieval.

    Attributes
    ----------
    upload_bytes:
        Bytes sent from the client to both servers (the selection bitmaps).
    download_bytes:
        Bytes returned by both servers (two block-sized replies).
    rounds:
        Network round trips consumed (always 1 per retrieval; a protocol
        that batches b retrievals still pays 1).
    """

    upload_bytes: int
    download_bytes: int
    rounds: int = 1


class TwoServerXorPIR:
    """A database of equal-sized byte blocks retrievable via 2-server PIR.

    Parameters
    ----------
    blocks:
        The database as a list of equal-length ``bytes`` objects.  Both
        (simulated) servers hold an identical replica, matching PRI-ANN's
        deployment model of two non-colluding servers.
    """

    def __init__(self, blocks: list[bytes]) -> None:
        if not blocks:
            raise ValueError("PIR database must contain at least one block")
        block_size = len(blocks[0])
        if block_size == 0:
            raise ValueError("PIR blocks must be non-empty")
        for i, block in enumerate(blocks):
            if len(block) != block_size:
                raise ValueError(
                    f"block {i} has size {len(block)}, expected {block_size}"
                )
        self._blocks = [np.frombuffer(b, dtype=np.uint8) for b in blocks]
        self._block_size = block_size

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the database."""
        return len(self._blocks)

    @property
    def block_size(self) -> int:
        """Size in bytes of every block."""
        return self._block_size

    def _server_answer(self, selection: np.ndarray) -> np.ndarray:
        """XOR together the blocks selected by a 0/1 bitmap (server side)."""
        answer = np.zeros(self._block_size, dtype=np.uint8)
        for index in np.nonzero(selection)[0]:
            answer ^= self._blocks[index]
        return answer

    def retrieve(
        self, index: int, rng: np.random.Generator
    ) -> tuple[bytes, PIRTranscript]:
        """Privately retrieve block ``index``.

        Parameters
        ----------
        index:
            Block index in ``[0, num_blocks)``.
        rng:
            Client-side randomness for the selection bitmaps.

        Returns
        -------
        tuple[bytes, PIRTranscript]
            The recovered block and the communication transcript.
        """
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"block index {index} out of range [0, {self.num_blocks})")
        selection_a = rng.integers(0, 2, size=self.num_blocks, dtype=np.uint8)
        selection_b = selection_a.copy()
        selection_b[index] ^= 1
        answer_a = self._server_answer(selection_a)
        answer_b = self._server_answer(selection_b)
        block = (answer_a ^ answer_b).tobytes()
        # Each bitmap is num_blocks bits; both servers receive one.
        upload_bits = 2 * self.num_blocks
        transcript = PIRTranscript(
            upload_bytes=(upload_bits + 7) // 8,
            download_bytes=2 * self._block_size,
            rounds=1,
        )
        return block, transcript

    def retrieve_many(
        self, indices: list[int], rng: np.random.Generator
    ) -> tuple[list[bytes], PIRTranscript]:
        """Retrieve several blocks in one batched round.

        The queries are issued in parallel, so the transcript sums bytes
        across retrievals but counts a single round trip.
        """
        if not indices:
            raise ValueError("retrieve_many needs at least one index")
        blocks: list[bytes] = []
        upload = 0
        download = 0
        for index in indices:
            block, transcript = self.retrieve(index, rng)
            blocks.append(block)
            upload += transcript.upload_bytes
            download += transcript.download_bytes
        return blocks, PIRTranscript(upload_bytes=upload, download_bytes=download, rounds=1)
