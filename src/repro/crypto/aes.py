"""A from-scratch AES-128 implementation with CTR mode.

The RS-SANN baseline (Peng et al., Information Sciences 2017) stores the
database under a *distance incomparable* encryption — AES — and ships
encrypted candidates back to the user, who decrypts and refines locally.
Reproducing that baseline therefore needs a real symmetric cipher; this
module implements FIPS-197 AES-128 in pure Python (table-driven, byte
oriented) plus a CTR-mode stream cipher on top.

This implementation favours clarity over speed — it exists so the RS-SANN
communication/user-cost pipeline is genuinely executed, not mocked — and is
validated against the FIPS-197 Appendix C known-answer vector in the test
suite.  It is **not** hardened against side channels and must not be used
outside this reproduction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["AES128", "AESCTRCipher"]

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B, 0xFE, 0xD7, 0xAB, 0x76,
    0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0, 0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0,
    0xB7, 0xFD, 0x93, 0x26, 0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2, 0xEB, 0x27, 0xB2, 0x75,
    0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0, 0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84,
    0x53, 0xD1, 0x00, 0xED, 0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F, 0x50, 0x3C, 0x9F, 0xA8,
    0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5, 0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2,
    0xCD, 0x0C, 0x13, 0xEC, 0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14, 0xDE, 0x5E, 0x0B, 0xDB,
    0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C, 0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79,
    0xE7, 0xC8, 0x37, 0x6D, 0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F, 0x4B, 0xBD, 0x8B, 0x8A,
    0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E, 0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E,
    0xE1, 0xF8, 0x98, 0x11, 0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F, 0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _xtime(byte: int) -> int:
    """Multiply a GF(2^8) element by x (i.e. 2) modulo the AES polynomial."""
    byte <<= 1
    if byte & 0x100:
        byte ^= 0x11B
    return byte & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements modulo the AES polynomial."""
    product = 0
    while b:
        if b & 1:
            product ^= a
        a = _xtime(a)
        b >>= 1
    return product


# Vectorized lookup tables for the numpy batch path.
_SBOX_NP = np.array(_SBOX, dtype=np.uint8)
_MUL2_NP = np.array([_xtime(i) for i in range(256)], dtype=np.uint8)
_MUL3_NP = np.array([_xtime(i) ^ i for i in range(256)], dtype=np.uint8)
# ShiftRows as a flat index permutation of the column-major 16-byte state.
_SHIFT_ROWS_IDX = np.array(
    [4 * ((col + row) % 4) + row for col in range(4) for row in range(4)],
    dtype=np.int64,
)


class AES128:
    """AES with a 128-bit key operating on 16-byte blocks.

    Parameters
    ----------
    key:
        Exactly 16 bytes of key material.
    """

    BLOCK_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        """FIPS-197 key schedule: 44 words grouped into 11 round keys."""
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for round_index in range(11):
            flat: list[int] = []
            for word in words[4 * round_index : 4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # -- block primitives ---------------------------------------------------

    @staticmethod
    def _add_round_key(state: list[int], round_key: list[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # State is column-major: state[4*col + row].
        for row in range(1, 4):
            row_bytes = [state[4 * col + row] for col in range(4)]
            rotated = row_bytes[row:] + row_bytes[:row]
            for col in range(4):
                state[4 * col + row] = rotated[col]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            row_bytes = [state[4 * col + row] for col in range(4)]
            rotated = row_bytes[-row:] + row_bytes[:-row]
            for col in range(4):
                state[4 * col + row] = rotated[col]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = _gf_mul(a[0], 2) ^ _gf_mul(a[1], 3) ^ a[2] ^ a[3]
            state[4 * col + 1] = a[0] ^ _gf_mul(a[1], 2) ^ _gf_mul(a[2], 3) ^ a[3]
            state[4 * col + 2] = a[0] ^ a[1] ^ _gf_mul(a[2], 2) ^ _gf_mul(a[3], 3)
            state[4 * col + 3] = _gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ _gf_mul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for col in range(4):
            a = state[4 * col : 4 * col + 4]
            state[4 * col + 0] = (
                _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
            )
            state[4 * col + 1] = (
                _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
            )
            state[4 * col + 2] = (
                _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
            )
            state[4 * col + 3] = (
                _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
            )

    # -- public API -----------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt a single 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ValueError(f"block must be {self.BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self.ROUNDS):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        return bytes(state)

    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt many 16-byte blocks at once (numpy table-driven AES).

        ``blocks`` is a ``(n, 16)`` uint8 array; returns the same shape.
        Bit-identical to :meth:`encrypt_block` applied row-wise, but ~two
        orders of magnitude faster — this is what makes the RS-SANN
        baseline's bulk encryption/decryption measurable at realistic
        candidate-set sizes.
        """
        state = np.asarray(blocks, dtype=np.uint8)
        if state.ndim != 2 or state.shape[1] != 16:
            raise ValueError(f"blocks must be (n, 16) uint8, got {state.shape}")
        state = state.copy()
        round_keys = [
            np.array(rk, dtype=np.uint8)[np.newaxis, :] for rk in self._round_keys
        ]
        state ^= round_keys[0]
        for round_index in range(1, self.ROUNDS):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS_IDX]
            # MixColumns on the column-major state: bytes 4c..4c+3 form one
            # column [a0, a1, a2, a3].
            columns = state.reshape(-1, 4, 4)
            a0, a1, a2, a3 = (columns[:, :, i] for i in range(4))
            mixed = np.empty_like(columns)
            mixed[:, :, 0] = _MUL2_NP[a0] ^ _MUL3_NP[a1] ^ a2 ^ a3
            mixed[:, :, 1] = a0 ^ _MUL2_NP[a1] ^ _MUL3_NP[a2] ^ a3
            mixed[:, :, 2] = a0 ^ a1 ^ _MUL2_NP[a2] ^ _MUL3_NP[a3]
            mixed[:, :, 3] = _MUL3_NP[a0] ^ a1 ^ a2 ^ _MUL2_NP[a3]
            state = mixed.reshape(-1, 16)
            state ^= round_keys[round_index]
        state = _SBOX_NP[state]
        state = state[:, _SHIFT_ROWS_IDX]
        state ^= round_keys[self.ROUNDS]
        return state

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt a single 16-byte block."""
        if len(block) != self.BLOCK_SIZE:
            raise ValueError(f"block must be {self.BLOCK_SIZE} bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.ROUNDS])
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        for round_index in range(self.ROUNDS - 1, 0, -1):
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)


class AESCTRCipher:
    """AES-128 in counter mode: a length-preserving stream cipher.

    Each message supplies its own ``nonce`` (8 bytes); the per-block counter
    occupies the remaining 8 bytes of the counter block.  Encryption and
    decryption are the same operation.

    Parameters
    ----------
    key:
        16-byte AES key.
    """

    NONCE_SIZE = 8

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes for the given nonce."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be {self.NONCE_SIZE} bytes, got {len(nonce)}")
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        num_blocks = (length + 15) // 16
        if num_blocks == 0:
            return b""
        counter_blocks = np.zeros((num_blocks, 16), dtype=np.uint8)
        counter_blocks[:, :8] = np.frombuffer(nonce, dtype=np.uint8)
        counters = np.arange(num_blocks, dtype=np.uint64)
        counter_blocks[:, 8:] = (
            counters[:, np.newaxis]
            >> np.arange(56, -8, -8, dtype=np.uint64)[np.newaxis, :]
        ).astype(np.uint8)
        stream = self._aes.encrypt_blocks(counter_blocks)
        return stream.tobytes()[:length]

    def process(self, nonce: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (CTR mode is an involution)."""
        stream = self.keystream(nonce, len(data))
        data_arr = np.frombuffer(data, dtype=np.uint8)
        stream_arr = np.frombuffer(stream, dtype=np.uint8)
        return (data_arr ^ stream_arr).tobytes()
