"""Sampling of secret random matrices.

The DCE, ASPE and AME schemes all hide plaintext vectors behind secret
invertible matrices (``M1``, ``M2``, ``M3`` in Section IV of the paper).
The constructions are algebraically exact, but a reproduction that runs on
IEEE-754 floats must keep the matrices well conditioned or the sign of
``DistanceComp`` — the whole point of the scheme — drowns in rounding
noise.

We therefore sample invertible matrices as ``Q @ diag(s)`` where ``Q`` is a
Haar-ish random orthogonal matrix (QR decomposition of a Gaussian matrix
with sign-fixed R diagonal) and ``s`` holds singular values drawn from a
bounded range.  The condition number is then ``max(s)/min(s)``, O(1) by
construction, and the inverse is available in closed form without an
``np.linalg.inv`` call.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_orthogonal_matrix",
    "random_invertible_matrix",
    "split_rows",
]

#: Default bounds for the singular values of sampled invertible matrices.
DEFAULT_SINGULAR_RANGE = (0.5, 2.0)


def random_orthogonal_matrix(dim: int, rng: np.random.Generator) -> np.ndarray:
    """Sample a ``dim x dim`` random orthogonal matrix.

    Uses the QR decomposition of a standard Gaussian matrix; multiplying the
    columns of ``Q`` by the signs of ``diag(R)`` makes the distribution
    uniform (Haar) over the orthogonal group, see Mezzadri (2007).

    Parameters
    ----------
    dim:
        Matrix dimension; must be positive.
    rng:
        Source of randomness.

    Returns
    -------
    numpy.ndarray
        An orthogonal matrix ``Q`` with ``Q @ Q.T == I`` up to float error.
    """
    if dim <= 0:
        raise ValueError(f"matrix dimension must be positive, got {dim}")
    gauss = rng.standard_normal((dim, dim))
    q, r = np.linalg.qr(gauss)
    # Fix the signs so the distribution is exactly Haar rather than biased
    # by LAPACK's sign convention.
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs


def random_invertible_matrix(
    dim: int,
    rng: np.random.Generator,
    singular_range: tuple[float, float] = DEFAULT_SINGULAR_RANGE,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a well-conditioned invertible matrix and its exact inverse.

    The matrix is ``Q @ diag(s)`` with ``Q`` orthogonal and singular values
    ``s`` uniform in ``singular_range``; its inverse is
    ``diag(1/s) @ Q.T``, computed without a linear solve so the pair is
    consistent to machine precision.

    Parameters
    ----------
    dim:
        Matrix dimension; must be positive.
    rng:
        Source of randomness.
    singular_range:
        ``(low, high)`` bounds for the singular values; both must be
        positive and ``low <= high``.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        ``(M, M_inv)`` with ``M @ M_inv == I`` up to float error and
        ``cond(M) <= high / low``.
    """
    low, high = singular_range
    if low <= 0 or high <= 0:
        raise ValueError(f"singular values must be positive, got {singular_range}")
    if low > high:
        raise ValueError(f"singular_range must satisfy low <= high, got {singular_range}")
    q = random_orthogonal_matrix(dim, rng)
    singular_values = rng.uniform(low, high, size=dim)
    matrix = q * singular_values  # scales columns: Q @ diag(s)
    inverse = (q / singular_values).T  # diag(1/s) @ Q.T
    return matrix, inverse


def split_rows(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a matrix with an even number of rows into top and bottom halves.

    Section IV-A of the paper splits ``M3`` into ``M_up`` (first ``d+8``
    rows) and ``M_down`` (remaining ``d+8`` rows); this helper implements
    that split for any even-row matrix.

    Parameters
    ----------
    matrix:
        A 2-D array with an even number of rows.

    Returns
    -------
    tuple[numpy.ndarray, numpy.ndarray]
        ``(upper, lower)`` views of the input.
    """
    rows = matrix.shape[0]
    if rows % 2 != 0:
        raise ValueError(f"matrix must have an even number of rows, got {rows}")
    half = rows // 2
    return matrix[:half], matrix[half:]
