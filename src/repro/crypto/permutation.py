"""Random coordinate permutations.

The vector-randomization phase of DCE applies two secret permutations
(``pi_1`` on R^d and ``pi_2`` on R^{d+8}, Section IV-A steps 2 and 4) so the
server cannot align ciphertext coordinates with plaintext coordinates.  A
:class:`Permutation` stores the forward index map and exposes ``apply`` /
``invert`` plus composition, all as O(d) numpy gathers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Permutation"]


class Permutation:
    """A fixed permutation of vector coordinates.

    Parameters
    ----------
    indices:
        A 1-D integer array that is a permutation of ``range(len(indices))``.
        ``apply(x)[i] == x[indices[i]]``.

    Raises
    ------
    ValueError
        If ``indices`` is not a valid permutation.
    """

    def __init__(self, indices: np.ndarray) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise ValueError(f"permutation indices must be 1-D, got shape {indices.shape}")
        size = indices.shape[0]
        if size == 0:
            raise ValueError("permutation must be non-empty")
        if not np.array_equal(np.sort(indices), np.arange(size)):
            raise ValueError("indices are not a permutation of range(n)")
        self._forward = indices
        self._backward = np.empty(size, dtype=np.int64)
        self._backward[indices] = np.arange(size)

    @classmethod
    def random(cls, size: int, rng: np.random.Generator) -> "Permutation":
        """Sample a uniformly random permutation of ``size`` coordinates."""
        if size <= 0:
            raise ValueError(f"permutation size must be positive, got {size}")
        return cls(rng.permutation(size))

    @classmethod
    def identity(cls, size: int) -> "Permutation":
        """The identity permutation (useful for ablation experiments)."""
        return cls(np.arange(size))

    @property
    def size(self) -> int:
        """Number of coordinates this permutation acts on."""
        return int(self._forward.shape[0])

    @property
    def indices(self) -> np.ndarray:
        """A copy of the forward index map."""
        return self._forward.copy()

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Permute the last axis of ``vector``: ``out[..., i] = x[..., fwd[i]]``."""
        self._check_width(vector)
        return vector[..., self._forward]

    def invert(self, vector: np.ndarray) -> np.ndarray:
        """Undo :meth:`apply` on the last axis."""
        self._check_width(vector)
        return vector[..., self._backward]

    def compose(self, other: "Permutation") -> "Permutation":
        """Return the permutation equivalent to ``self.apply(other.apply(x))``."""
        if other.size != self.size:
            raise ValueError(
                f"cannot compose permutations of sizes {self.size} and {other.size}"
            )
        return Permutation(other._forward[self._forward])

    def is_identity(self) -> bool:
        """Whether this permutation leaves every coordinate in place."""
        return bool(np.array_equal(self._forward, np.arange(self.size)))

    def _check_width(self, vector: np.ndarray) -> None:
        if vector.shape[-1] != self.size:
            raise ValueError(
                f"vector width {vector.shape[-1]} does not match permutation size {self.size}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return np.array_equal(self._forward, other._forward)

    def __hash__(self) -> int:
        return hash(self._forward.tobytes())

    def __repr__(self) -> str:
        return f"Permutation(size={self.size})"
