"""The privacy-preserving index (Section V-A, Figure 3 box B2).

What the cloud server stores — and all it ever stores — is three pieces,
each produced by the data owner:

1. ``C_SAP``: the DCPE (Scale-and-Perturb) ciphertexts of every database
   vector, still ``d``-dimensional, supporting cheap *approximate*
   distances.
2. A filter-phase :class:`~repro.core.backends.FilterBackend` built
   **over** ``C_SAP`` — never over plaintexts, so its structure encodes
   only approximate neighbor relations (the paper's privacy argument for
   index leakage).  HNSW is the paper's choice; NSG, IVF-Flat and a
   linear scan are interchangeable (Section V-A's substitutability
   remark).
3. ``C_DCE``: the DCE ciphertexts of every vector, supporting exact
   distance *comparisons* at 4x plaintext-distance cost.

Vector ``i`` in the plaintext database corresponds to row ``i`` of
``C_SAP``, id ``i`` of the backend and entry ``i`` of ``C_DCE``; the
filter phase returns backend ids that the refine phase uses to look up
DCE ciphertexts directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.backends import FilterBackend, HNSWBackend
from repro.core.dce import DCEEncryptedDatabase
from repro.core.errors import CiphertextFormatError, ParameterError
from repro.core.filterengine import get_filter_engine
from repro.hnsw.graph import HNSWIndex

__all__ = ["EncryptedIndex", "IndexSizeReport"]


class _FilterView(NamedTuple):
    """The filter-phase state, swapped atomically on compaction.

    A reader (``filter_search``) grabs the whole tuple once, so it can
    never observe a new backend paired with a stale id map while a
    compaction swap is in flight.  ``live_ids`` is ``None`` for the
    common identity case (backend id == global id, the pre-compaction
    layout); after a compaction it maps the rebuilt backend's local ids
    back to global ids, exactly like a shard's ``global_ids``.
    """

    backend: FilterBackend
    live_ids: "np.ndarray | None"
    local_of: "dict[int, int] | None"


@dataclass(frozen=True)
class IndexSizeReport:
    """Server-side storage accounting (Section V-C, "Space Complexity").

    All counts are in floats (8 bytes each at float64).  The paper's
    accounting: ``C_SAP`` costs the same as the plaintext database (n*d),
    ``C_DCE`` costs ``(8 + 64/d)`` times that, and the graph is O(n*m).
    """

    num_vectors: int
    dim: int
    sap_floats: int
    dce_floats: int
    graph_edges: int

    @property
    def plaintext_floats(self) -> int:
        """Floats the plaintext database would occupy."""
        return self.num_vectors * self.dim

    @property
    def dce_overhead_ratio(self) -> float:
        """``C_DCE`` size over plaintext size; paper predicts ``8 + 64/d``."""
        if self.plaintext_floats == 0:
            return 0.0
        return self.dce_floats / self.plaintext_floats

    @property
    def total_floats(self) -> int:
        """Total float storage excluding graph adjacency."""
        return self.sap_floats + self.dce_floats


class EncryptedIndex:
    """The server-side triplet ``(C_SAP, backend(C_SAP), C_DCE)``.

    Instances are produced by :class:`repro.core.roles.DataOwner` (build)
    and mutated only through :mod:`repro.core.maintenance` (insert /
    delete).  The server reads but never decrypts.

    The second component accepts either a :class:`FilterBackend` or — for
    backward compatibility with the seed API — a bare
    :class:`~repro.hnsw.graph.HNSWIndex`, which is wrapped in an
    :class:`~repro.core.backends.HNSWBackend`.
    """

    def __init__(
        self,
        sap_vectors: np.ndarray,
        backend: FilterBackend | HNSWIndex,
        dce_database: DCEEncryptedDatabase,
        live_ids: np.ndarray | None = None,
        retired: "frozenset[int] | set[int] | tuple[int, ...]" = (),
    ) -> None:
        sap_vectors = np.asarray(sap_vectors, dtype=np.float64)
        if sap_vectors.ndim != 2:
            raise CiphertextFormatError(
                f"C_SAP must be a (n, d) array, got shape {sap_vectors.shape}"
            )
        if isinstance(backend, HNSWIndex):
            backend = HNSWBackend(backend)
        if sap_vectors.shape[0] != len(dce_database):
            raise CiphertextFormatError(
                f"C_SAP has {sap_vectors.shape[0]} rows but C_DCE has "
                f"{len(dce_database)} entries"
            )
        retired = frozenset(int(i) for i in retired)
        if live_ids is None:
            if retired:
                raise CiphertextFormatError(
                    "retired ids require an explicit live_ids map"
                )
            if backend.vectors.shape[0] != sap_vectors.shape[0]:
                raise CiphertextFormatError(
                    f"backend indexes {backend.vectors.shape[0]} vectors but "
                    f"C_SAP has {sap_vectors.shape[0]}"
                )
            local_of = None
        else:
            live_ids = np.asarray(live_ids, dtype=np.int64)
            if backend.vectors.shape[0] != live_ids.size:
                raise CiphertextFormatError(
                    f"backend indexes {backend.vectors.shape[0]} vectors but "
                    f"the live_ids map names {live_ids.size}"
                )
            if live_ids.size + len(retired) != sap_vectors.shape[0]:
                raise CiphertextFormatError(
                    f"live ({live_ids.size}) + retired ({len(retired)}) ids "
                    f"must cover all {sap_vectors.shape[0]} C_SAP rows"
                )
            local_of = {int(g): i for i, g in enumerate(live_ids.tolist())}
            if len(local_of) != live_ids.size or not retired.isdisjoint(local_of):
                raise CiphertextFormatError(
                    "live_ids must be unique and disjoint from retired ids"
                )
        self._sap = sap_vectors
        self._view = _FilterView(backend, live_ids, local_of)
        self._dce = dce_database
        self._tombstones: set[int] = set()
        self._retired: set[int] = set(retired)
        #: Optional :class:`~repro.core.build.BuildReport` attached by the
        #: construction pipeline (DataOwner.build_index) and by
        #: persistence when the on-disk file carried build metadata.
        self.build_report = None

    # -- accessors -------------------------------------------------------------

    @property
    def sap_vectors(self) -> np.ndarray:
        """The DCPE ciphertexts (``C_SAP``)."""
        return self._sap

    @property
    def backend(self) -> FilterBackend:
        """The filter-phase backend over ``C_SAP``."""
        return self._view.backend

    @property
    def backend_kind(self) -> str:
        """The backend's registry kind (``hnsw``, ``nsg``, ...)."""
        return self._view.backend.kind

    @property
    def live_ids(self) -> np.ndarray | None:
        """Backend-local -> global id map, or ``None`` pre-compaction.

        Before the first compaction the backend indexes every ``C_SAP``
        row, so backend ids *are* global ids and no map is kept.  After a
        compaction the backend only holds the surviving rows and this
        array maps its local ids back to the stable global ids — the ids
        the refine phase, the DCE database and the serving layer speak.
        """
        return self._view.live_ids

    @property
    def graph(self):
        """The backend's substrate index.

        Deprecated accessor from the HNSW-only era — for an HNSW backend
        it returns the :class:`~repro.hnsw.graph.HNSWIndex` as before.
        Emits a :class:`DeprecationWarning`; use :attr:`backend` (or
        ``backend.substrate``) instead.
        """
        warnings.warn(
            "EncryptedIndex.graph is deprecated; use "
            "EncryptedIndex.backend.substrate instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._view.backend.substrate

    @property
    def dce_database(self) -> DCEEncryptedDatabase:
        """The DCE ciphertexts (``C_DCE``)."""
        return self._dce

    @property
    def dim(self) -> int:
        """Plaintext / DCPE-ciphertext dimensionality."""
        return int(self._sap.shape[1])

    @property
    def tombstones(self) -> frozenset[int]:
        """Ids deleted by :mod:`repro.core.maintenance` but not yet
        compacted away — still occupying backend slots."""
        return frozenset(self._tombstones)

    @property
    def retired(self) -> frozenset[int]:
        """Ids a compaction removed from the backend for good.

        Unlike tombstones these no longer occupy backend slots; they are
        recorded so global ids are never reassigned and old journal
        segments / cached results referring to them stay unambiguous.
        """
        return frozenset(self._retired)

    def __len__(self) -> int:
        return (
            int(self._sap.shape[0]) - len(self._retired) - len(self._tombstones)
        )

    def is_live(self, vector_id: int) -> bool:
        """Whether ``vector_id`` is present and not deleted."""
        return (
            0 <= vector_id < self._sap.shape[0]
            and vector_id not in self._tombstones
            and vector_id not in self._retired
        )

    def live_mask(self) -> np.ndarray:
        """Boolean liveness per id slot — amortizes :meth:`is_live` for
        batch answering (one array build instead of per-candidate calls)."""
        mask = np.ones(self._sap.shape[0], dtype=bool)
        for dead in (self._tombstones, self._retired):
            if dead:
                mask[np.fromiter(dead, dtype=np.int64)] = False
        return mask

    # -- the filter phase --------------------------------------------------------

    def filter_search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats=None,
        engine=None,
    ) -> tuple[np.ndarray, np.ndarray, tuple | None]:
        """Filter-phase k'-ANNS over ``C_SAP``.

        Returns ``(ids, dists, shard_timings)`` nearest-first; the third
        element is always ``None`` for a monolithic index — the sharded
        index (:class:`~repro.core.sharding.ShardedEncryptedIndex`)
        answers the same call by scatter-gather and fills it in.
        ``engine`` selects the filter engine (name, instance or ``None``
        for the default — see :mod:`repro.core.filterengine`); every
        engine returns bit-identical results.
        """
        # One read of the swap-atomic view: a concurrent compaction can
        # replace self._view but never mutate the tuple we hold.
        view = self._view
        ids, dists = get_filter_engine(engine).search(
            view.backend, sap_query, k_prime, ef_search=ef_search, stats=stats
        )
        if view.live_ids is not None and ids.size:
            ids = np.where(ids >= 0, view.live_ids[np.clip(ids, 0, None)], ids)
        return ids, dists, None

    def filter_search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list=None,
        engine=None,
    ) -> list[tuple[np.ndarray, np.ndarray, tuple | None]]:
        """Filter-phase k'-ANNS for a whole micro-batch of queries.

        One ``(ids, dists, shard_timings)`` tuple per query, in order —
        the per-query contract of :meth:`filter_search`, but the engine
        may answer the batch with one kernel where the backend supports
        it (``vectorized`` engine: one GEMM on brute-force / IVF, a
        lockstep beam search on the graph backends).  Results are
        bit-identical to looping :meth:`filter_search`.
        """
        view = self._view
        results = get_filter_engine(engine).search_batch(
            view.backend, sap_queries, k_prime, ef_search=ef_search,
            stats_list=stats_list,
        )
        out: list[tuple[np.ndarray, np.ndarray, tuple | None]] = []
        for ids, dists in results:
            if view.live_ids is not None and ids.size:
                ids = np.where(ids >= 0, view.live_ids[np.clip(ids, 0, None)], ids)
            out.append((ids, dists, None))
        return out

    # -- maintenance routing (used by repro.core.maintenance) --------------------

    def backend_insert(self, sap_row: np.ndarray, level: int | None = None) -> int:
        """Insert one DCPE row into the filter backend; returns its global id.

        ``level`` forces the HNSW level draw during journal replay
        (:mod:`repro.core.journal`); other backend kinds ignore it.
        """
        view = self._view
        if view.backend.kind == "hnsw":
            local = view.backend.insert(sap_row, level=level)
        else:
            local = view.backend.insert(sap_row)
        if view.live_ids is None:
            return int(local)
        global_id = int(self._sap.shape[0])
        live_ids = np.append(view.live_ids, global_id)
        local_of = dict(view.local_of)
        local_of[global_id] = int(local)
        self._view = _FilterView(view.backend, live_ids, local_of)
        return global_id

    def backend_mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` (a global id) from the filter backend."""
        view = self._view
        local = vector_id if view.local_of is None else view.local_of[vector_id]
        view.backend.mark_deleted(local)

    def replay_level(self, vector_id: int) -> int:
        """The HNSW level assigned to ``vector_id``, or ``-1``.

        Journal inserts record this so replay can force the same level —
        the level draw is the only randomness in an HNSW insert, so
        forcing it makes replay bit-identical.  Non-HNSW backends are
        deterministic and return ``-1`` (meaning "draw normally", which
        for them is a no-op).
        """
        view = self._view
        if view.backend.kind != "hnsw":
            return -1
        local = vector_id if view.local_of is None else view.local_of[vector_id]
        return int(view.backend.node_level(local))

    # -- compaction (used by repro.core.maintenance) -----------------------------

    def compact(self, rng: np.random.Generator | None = None) -> int:
        """Rebuild the filter backend without tombstoned rows.

        Returns the number of tombstones dropped.  ``C_SAP`` and
        ``C_DCE`` keep their rows (global ids are never renumbered);
        only the backend shrinks, with :attr:`live_ids` mapping its new
        local ids back to global ids.  The swap is ordered so concurrent
        readers never resurrect a deleted id: tombstones move to
        :attr:`retired` *before* the new view is published, and are
        cleared from the tombstone set only after.
        """
        view = self._view
        tomb = set(self._tombstones)
        if not tomb:
            return 0
        n = int(self._sap.shape[0])
        if view.live_ids is None:
            current = np.arange(n, dtype=np.int64)
        else:
            current = view.live_ids
        keep = current[~np.isin(current, np.fromiter(tomb, dtype=np.int64))]
        if keep.size == 0:
            raise ParameterError(
                "cannot compact an index down to zero live vectors"
            )
        new_backend = view.backend.rebuild(self._sap[keep], rng=rng)
        local_of = {int(g): i for i, g in enumerate(keep.tolist())}
        self._retired |= tomb
        self._view = _FilterView(new_backend, keep, local_of)
        self._tombstones -= tomb
        return len(tomb)

    # -- mutation (used by repro.core.maintenance only) --------------------------

    def _append(self, sap_row: np.ndarray, dce_db: DCEEncryptedDatabase) -> None:
        self._sap = np.vstack([self._sap, sap_row[np.newaxis]])
        self._dce = dce_db

    def _mark_deleted(self, vector_id: int) -> None:
        self._tombstones.add(vector_id)

    # -- reporting ----------------------------------------------------------------

    def size_report(self) -> IndexSizeReport:
        """Storage accounting for the three index components."""
        return IndexSizeReport(
            num_vectors=self._sap.shape[0],
            dim=self.dim,
            sap_floats=int(self._sap.size),
            dce_floats=int(self._dce.components.size),
            graph_edges=self._view.backend.edge_count(),
        )
