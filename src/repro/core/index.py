"""The privacy-preserving index (Section V-A, Figure 3 box B2).

What the cloud server stores — and all it ever stores — is three pieces,
each produced by the data owner:

1. ``C_SAP``: the DCPE (Scale-and-Perturb) ciphertexts of every database
   vector, still ``d``-dimensional, supporting cheap *approximate*
   distances.
2. A filter-phase :class:`~repro.core.backends.FilterBackend` built
   **over** ``C_SAP`` — never over plaintexts, so its structure encodes
   only approximate neighbor relations (the paper's privacy argument for
   index leakage).  HNSW is the paper's choice; NSG, IVF-Flat and a
   linear scan are interchangeable (Section V-A's substitutability
   remark).
3. ``C_DCE``: the DCE ciphertexts of every vector, supporting exact
   distance *comparisons* at 4x plaintext-distance cost.

Vector ``i`` in the plaintext database corresponds to row ``i`` of
``C_SAP``, id ``i`` of the backend and entry ``i`` of ``C_DCE``; the
filter phase returns backend ids that the refine phase uses to look up
DCE ciphertexts directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.backends import FilterBackend, HNSWBackend
from repro.core.dce import DCEEncryptedDatabase
from repro.core.errors import CiphertextFormatError
from repro.hnsw.graph import HNSWIndex

__all__ = ["EncryptedIndex", "IndexSizeReport"]


@dataclass(frozen=True)
class IndexSizeReport:
    """Server-side storage accounting (Section V-C, "Space Complexity").

    All counts are in floats (8 bytes each at float64).  The paper's
    accounting: ``C_SAP`` costs the same as the plaintext database (n*d),
    ``C_DCE`` costs ``(8 + 64/d)`` times that, and the graph is O(n*m).
    """

    num_vectors: int
    dim: int
    sap_floats: int
    dce_floats: int
    graph_edges: int

    @property
    def plaintext_floats(self) -> int:
        """Floats the plaintext database would occupy."""
        return self.num_vectors * self.dim

    @property
    def dce_overhead_ratio(self) -> float:
        """``C_DCE`` size over plaintext size; paper predicts ``8 + 64/d``."""
        if self.plaintext_floats == 0:
            return 0.0
        return self.dce_floats / self.plaintext_floats

    @property
    def total_floats(self) -> int:
        """Total float storage excluding graph adjacency."""
        return self.sap_floats + self.dce_floats


class EncryptedIndex:
    """The server-side triplet ``(C_SAP, backend(C_SAP), C_DCE)``.

    Instances are produced by :class:`repro.core.roles.DataOwner` (build)
    and mutated only through :mod:`repro.core.maintenance` (insert /
    delete).  The server reads but never decrypts.

    The second component accepts either a :class:`FilterBackend` or — for
    backward compatibility with the seed API — a bare
    :class:`~repro.hnsw.graph.HNSWIndex`, which is wrapped in an
    :class:`~repro.core.backends.HNSWBackend`.
    """

    def __init__(
        self,
        sap_vectors: np.ndarray,
        backend: FilterBackend | HNSWIndex,
        dce_database: DCEEncryptedDatabase,
    ) -> None:
        sap_vectors = np.asarray(sap_vectors, dtype=np.float64)
        if sap_vectors.ndim != 2:
            raise CiphertextFormatError(
                f"C_SAP must be a (n, d) array, got shape {sap_vectors.shape}"
            )
        if isinstance(backend, HNSWIndex):
            backend = HNSWBackend(backend)
        if sap_vectors.shape[0] != len(dce_database):
            raise CiphertextFormatError(
                f"C_SAP has {sap_vectors.shape[0]} rows but C_DCE has "
                f"{len(dce_database)} entries"
            )
        if backend.vectors.shape[0] != sap_vectors.shape[0]:
            raise CiphertextFormatError(
                f"backend indexes {backend.vectors.shape[0]} vectors but C_SAP "
                f"has {sap_vectors.shape[0]}"
            )
        self._sap = sap_vectors
        self._backend = backend
        self._dce = dce_database
        self._tombstones: set[int] = set()
        #: Optional :class:`~repro.core.build.BuildReport` attached by the
        #: construction pipeline (DataOwner.build_index) and by
        #: persistence when the on-disk file carried build metadata.
        self.build_report = None

    # -- accessors -------------------------------------------------------------

    @property
    def sap_vectors(self) -> np.ndarray:
        """The DCPE ciphertexts (``C_SAP``)."""
        return self._sap

    @property
    def backend(self) -> FilterBackend:
        """The filter-phase backend over ``C_SAP``."""
        return self._backend

    @property
    def backend_kind(self) -> str:
        """The backend's registry kind (``hnsw``, ``nsg``, ...)."""
        return self._backend.kind

    @property
    def graph(self):
        """The backend's substrate index.

        Deprecated accessor from the HNSW-only era — for an HNSW backend
        it returns the :class:`~repro.hnsw.graph.HNSWIndex` as before.
        Emits a :class:`DeprecationWarning`; use :attr:`backend` (or
        ``backend.substrate``) instead.
        """
        warnings.warn(
            "EncryptedIndex.graph is deprecated; use "
            "EncryptedIndex.backend.substrate instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._backend.substrate

    @property
    def dce_database(self) -> DCEEncryptedDatabase:
        """The DCE ciphertexts (``C_DCE``)."""
        return self._dce

    @property
    def dim(self) -> int:
        """Plaintext / DCPE-ciphertext dimensionality."""
        return int(self._sap.shape[1])

    @property
    def tombstones(self) -> frozenset[int]:
        """Ids deleted by :mod:`repro.core.maintenance`."""
        return frozenset(self._tombstones)

    def __len__(self) -> int:
        return int(self._sap.shape[0]) - len(self._tombstones)

    def is_live(self, vector_id: int) -> bool:
        """Whether ``vector_id`` is present and not deleted."""
        return 0 <= vector_id < self._sap.shape[0] and vector_id not in self._tombstones

    def live_mask(self) -> np.ndarray:
        """Boolean liveness per id slot — amortizes :meth:`is_live` for
        batch answering (one array build instead of per-candidate calls)."""
        mask = np.ones(self._sap.shape[0], dtype=bool)
        if self._tombstones:
            mask[np.fromiter(self._tombstones, dtype=np.int64)] = False
        return mask

    # -- the filter phase --------------------------------------------------------

    def filter_search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats=None,
    ) -> tuple[np.ndarray, np.ndarray, tuple | None]:
        """Filter-phase k'-ANNS over ``C_SAP``.

        Returns ``(ids, dists, shard_timings)`` nearest-first; the third
        element is always ``None`` for a monolithic index — the sharded
        index (:class:`~repro.core.sharding.ShardedEncryptedIndex`)
        answers the same call by scatter-gather and fills it in.
        """
        ids, dists = self._backend.search(
            sap_query, k_prime, ef_search=ef_search, stats=stats
        )
        return ids, dists, None

    # -- maintenance routing (used by repro.core.maintenance) --------------------

    def backend_insert(self, sap_row: np.ndarray) -> int:
        """Insert one DCPE row into the filter backend; returns its id."""
        return self._backend.insert(sap_row)

    def backend_mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` from the filter backend."""
        self._backend.mark_deleted(vector_id)

    # -- mutation (used by repro.core.maintenance only) --------------------------

    def _append(self, sap_row: np.ndarray, dce_db: DCEEncryptedDatabase) -> None:
        self._sap = np.vstack([self._sap, sap_row[np.newaxis]])
        self._dce = dce_db

    def _mark_deleted(self, vector_id: int) -> None:
        self._tombstones.add(vector_id)

    # -- reporting ----------------------------------------------------------------

    def size_report(self) -> IndexSizeReport:
        """Storage accounting for the three index components."""
        return IndexSizeReport(
            num_vectors=self._sap.shape[0],
            dim=self.dim,
            sap_floats=int(self._sap.size),
            dce_floats=int(self._dce.components.size),
            graph_edges=self._backend.edge_count(),
        )
