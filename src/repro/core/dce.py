"""Distance Comparison Encryption (DCE) — Section IV of the paper.

DCE lets an untrusted server evaluate, for two encrypted database vectors
``o, p`` and an encrypted query ``q``::

    sign(dist(o, q) - dist(p, q))

*exactly*, while revealing nothing else (IND-KPA with comparison-result
leakage, Theorem 4).  It has two phases:

**Vector randomization** (steps 1-4, Equations 1-5) maps ``p`` in ``R^d``
to ``p_bar`` in ``R^{d+8}`` such that for a query's randomized vector
``q_bar``::

    p_bar . q_bar == ||p||^2 - 2 p.q           (Equation 5)

i.e. the squared distance to the query up to the shared ``||q||^2`` term,
which cancels in comparisons.

**Vector transformation** (Equations 8-16) hides ``p_bar`` behind the
split matrix ``M3`` and the ``kv`` masking vectors using the polarization
identity ``2a + 2b = (a+1)(b+1) - (a-1)(b-1)`` (Equation 6), producing four
component vectors per database vector and one trapdoor vector per query.
``DistanceComp`` then costs ``4d + 32`` multiply-accumulates — O(d), about
4x a plaintext distance — versus O(d^2) for AME.

Shapes (for plaintext dimension ``d``, padded to even):

==============  =======================  ==========
object          composition              floats
==============  =======================  ==========
ciphertext      4 vectors in R^{2d+16}   ``8d+64``
trapdoor        1 vector in R^{2d+16}    ``2d+16``
==============  =======================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import CiphertextFormatError, DimensionMismatchError, KeyMismatchError
from repro.core.keys import DCEKey
from repro.crypto.matrices import random_invertible_matrix, split_rows
from repro.crypto.permutation import Permutation

__all__ = [
    "DCEScheme",
    "DCECiphertext",
    "DCETrapdoor",
    "DCEEncryptedDatabase",
    "dce_keygen",
    "distance_comp",
    "distance_comp_many",
    "sdc_mac_count",
]


@dataclass(frozen=True)
class DCECiphertext:
    """DCE ciphertext ``C_p = (p'_1, p'_2, p'_3, p'_4)`` of one vector.

    ``components`` stacks the four vectors as a ``(4, 2d+16)`` array.
    Components 1-2 are used when the vector plays the *o* role (first
    argument of a comparison), components 3-4 for the *p* role.
    """

    components: np.ndarray
    key_id: int

    def __post_init__(self) -> None:
        if self.components.ndim != 2 or self.components.shape[0] != 4:
            raise CiphertextFormatError(
                f"DCE ciphertext must be a (4, 2d+16) array, got {self.components.shape}"
            )

    @property
    def ciphertext_dim(self) -> int:
        """Width ``2d+16`` of each component vector."""
        return int(self.components.shape[1])

    @property
    def size_in_floats(self) -> int:
        """Total float count (``8d + 64``)."""
        return int(self.components.size)


@dataclass(frozen=True)
class DCETrapdoor:
    """DCE trapdoor ``T_q`` for one query vector: one vector in R^{2d+16}."""

    vector: np.ndarray
    key_id: int

    def __post_init__(self) -> None:
        if self.vector.ndim != 1:
            raise CiphertextFormatError(
                f"DCE trapdoor must be a 1-D vector, got shape {self.vector.shape}"
            )

    @property
    def ciphertext_dim(self) -> int:
        """Width ``2d+16`` of the trapdoor vector."""
        return int(self.vector.shape[0])


class DCEEncryptedDatabase:
    """Column-stacked DCE ciphertexts of a whole database.

    Stores the four components of every vector's ciphertext as four
    ``(n, 2d+16)`` arrays so batched comparisons and micro-benchmarks can
    run vectorized, while :meth:`__getitem__` still hands out per-vector
    :class:`DCECiphertext` views for Algorithm 2's refine phase.
    """

    def __init__(self, components: np.ndarray, key_id: int) -> None:
        if components.ndim != 3 or components.shape[1] != 4:
            raise CiphertextFormatError(
                f"expected a (n, 4, 2d+16) array, got {components.shape}"
            )
        self._components = components
        self._key_id = key_id

    @property
    def key_id(self) -> int:
        """Tag of the key these ciphertexts were produced under."""
        return self._key_id

    @property
    def components(self) -> np.ndarray:
        """The raw ``(n, 4, 2d+16)`` ciphertext array."""
        return self._components

    def __len__(self) -> int:
        return int(self._components.shape[0])

    def __getitem__(self, index: int) -> DCECiphertext:
        return DCECiphertext(self._components[index], self._key_id)

    def subset(self, indices: np.ndarray) -> "DCEEncryptedDatabase":
        """Ciphertexts of a subset of vectors (used by index maintenance)."""
        return DCEEncryptedDatabase(self._components[indices], self._key_id)

    def append(self, ciphertext: DCECiphertext) -> "DCEEncryptedDatabase":
        """Return a new database with ``ciphertext`` appended (insertion)."""
        if ciphertext.key_id != self._key_id:
            raise KeyMismatchError("cannot append a ciphertext from a different key")
        stacked = np.concatenate(
            [self._components, ciphertext.components[np.newaxis]], axis=0
        )
        return DCEEncryptedDatabase(stacked, self._key_id)


def sdc_mac_count(dim: int) -> int:
    """Multiply-accumulate count of one DCE secure distance comparison.

    Section IV-B: each comparison performs two elementwise products and one
    inner product over ``R^{2d+16}`` — ``4d + 32`` MACs in total.
    """
    return 4 * dim + 32


def dce_keygen(dim: int, rng: np.random.Generator) -> DCEKey:
    """``KeyGen(1^zeta, d) -> SK`` — sample a DCE secret key.

    Parameters
    ----------
    dim:
        Plaintext dimensionality; must be even (the scheme pairs adjacent
        coordinates in randomization step 1).  :class:`DCEScheme` pads odd
        dimensions transparently, so call through it for odd ``d``.
    rng:
        Source of randomness for all key material.

    Returns
    -------
    DCEKey
        The full secret key, including matrix inverses.
    """
    if dim <= 0 or dim % 2 != 0:
        raise ValueError(f"DCE key dimension must be a positive even integer, got {dim}")
    half_dim = dim // 2 + 4
    m1, m1_inv = random_invertible_matrix(half_dim, rng)
    m2, m2_inv = random_invertible_matrix(half_dim, rng)
    full_dim = 2 * dim + 16
    m3, m3_inv = random_invertible_matrix(full_dim, rng)
    m_up, m_down = split_rows(m3)
    pi1 = Permutation.random(dim, rng)
    pi2 = Permutation.random(dim + 8, rng)
    # Scheme-wide randoms r1..r4; bounded away from zero so gamma_p
    # (divided by r4) stays well scaled.
    r_values = rng.uniform(0.5, 2.0, size=4) * rng.choice([-1.0, 1.0], size=4)
    # Masking vectors: bounded magnitudes with random signs, and
    # kv4 = kv1*kv3/kv2 to satisfy the kv1.kv3 == kv2.kv4 constraint.
    def _masking_vector() -> np.ndarray:
        magnitudes = rng.uniform(0.5, 1.5, size=full_dim)
        signs = rng.choice([-1.0, 1.0], size=full_dim)
        return magnitudes * signs

    kv1 = _masking_vector()
    kv2 = _masking_vector()
    kv3 = _masking_vector()
    kv4 = kv1 * kv3 / kv2
    return DCEKey(
        dim=dim,
        m1=m1,
        m1_inv=m1_inv,
        m2=m2,
        m2_inv=m2_inv,
        m_up=m_up,
        m_down=m_down,
        m3_inv=m3_inv,
        pi1=pi1,
        pi2=pi2,
        r1=float(r_values[0]),
        r2=float(r_values[1]),
        r3=float(r_values[2]),
        r4=float(r_values[3]),
        kv1=kv1,
        kv2=kv2,
        kv3=kv3,
        kv4=kv4,
        key_id=int(rng.integers(0, 2**62)),
    )


def distance_comp(
    cipher_o: DCECiphertext, cipher_p: DCECiphertext, trapdoor: DCETrapdoor
) -> float:
    """``DistanceComp(C_o, C_p, T_q)`` — the server-side comparison oracle.

    Returns ``Z = 2 r_o r_p r_q (dist(o,q) - dist(p,q))`` (Theorem 3), so::

        Z <  0  <=>  dist(o, q) <  dist(p, q)
        Z >= 0  <=>  dist(o, q) >= dist(p, q)

    The multipliers ``r_o, r_p, r_q`` are secret positives, so only the
    sign is meaningful to the server.
    """
    if not (cipher_o.key_id == cipher_p.key_id == trapdoor.key_id):
        raise KeyMismatchError("ciphertexts and trapdoor come from different keys")
    o = cipher_o.components
    p = cipher_p.components
    combined = o[0] * p[2] - o[1] * p[3]
    return float(combined @ trapdoor.vector)


def distance_comp_many(
    ciphers_o: DCEEncryptedDatabase,
    ciphers_p: DCEEncryptedDatabase,
    trapdoor: DCETrapdoor,
) -> np.ndarray:
    """All-pairs ``DistanceComp`` as two matrix products.

    Returns the ``(len(o), len(p))`` matrix ``Z`` with ``Z[i, j]`` the
    comparison outcome of :func:`distance_comp` on *o*-role vector ``i``
    and *p*-role vector ``j`` — only the signs are meaningful.

    The per-pair oracle computes ``(o_1 * p_3 - o_2 * p_4) . t``; folding
    the trapdoor into the *o* components first gives the algebraically
    identical ``(o_1 * t) . p_3 - (o_2 * t) . p_4``, which batches into
    two BLAS matrix-matrix products over the whole cross product.  Same
    ``4d + 32`` MACs per pair as the scalar oracle, no interpreter
    dispatch per comparison.

    :class:`repro.core.refine.VectorizedRefineEngine` applies the same
    regrouping inline for its pivot-vs-candidates scans (it needs
    per-entry sign verification interleaved with the heap replay, so it
    does not call this function); this is the general all-pairs form
    for analysis, tests, and batch tooling.
    """
    if not (ciphers_o.key_id == ciphers_p.key_id == trapdoor.key_id):
        raise KeyMismatchError("ciphertexts and trapdoor come from different keys")
    o = ciphers_o.components
    p = ciphers_p.components
    width = trapdoor.vector.shape[0]
    if o.shape[2] != width or p.shape[2] != width:
        raise DimensionMismatchError(
            width, int(o.shape[2] if o.shape[2] != width else p.shape[2]),
            what="DCE ciphertext",
        )
    # The o-role products are contiguous by construction; the p-role
    # slices of a (n, 4, 2d+16) block are strided, and BLAS would copy
    # them once per product anyway — do it explicitly, once.
    weighted_1 = o[:, 0] * trapdoor.vector
    weighted_2 = o[:, 1] * trapdoor.vector
    p_3 = np.ascontiguousarray(p[:, 2])
    p_4 = np.ascontiguousarray(p[:, 3])
    return weighted_1 @ p_3.T - weighted_2 @ p_4.T


class DCEScheme:
    """End-to-end DCE scheme: key generation, encryption, trapdoors, comparison.

    Handles odd plaintext dimensions by zero-padding to the next even
    dimension (distance-neutral: a shared zero coordinate adds nothing to
    any pairwise distance).

    Parameters
    ----------
    dim:
        Plaintext dimensionality of database and query vectors.
    rng:
        Randomness source; a fresh default generator is used when omitted.
    key:
        Reuse an existing key instead of generating one (e.g. the data
        owner distributing the key to the query user).
    randomizer_range:
        ``(low, high)`` bounds for the positive per-vector / per-query
        randomizers ``r_p`` and ``r_q``, sampled log-uniformly.  The
        default matches the conditioning-friendly ``(0.5, 2)``; widening
        it (e.g. ``(2**-8, 2**8)``) dilutes the residual statistical
        signal that ``|Z|`` magnitudes carry under known-plaintext
        regression (see EXPERIMENTS.md, "Reproduction note") at the cost
        of a larger ciphertext dynamic range.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator | None = None,
        key: DCEKey | None = None,
        randomizer_range: tuple[float, float] = (0.5, 2.0),
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dimension must be positive, got {dim}")
        low, high = randomizer_range
        if low <= 0 or high <= 0 or low > high:
            raise ValueError(
                f"randomizer_range must be 0 < low <= high, got {randomizer_range}"
            )
        self._plain_dim = dim
        self._padded_dim = dim if dim % 2 == 0 else dim + 1
        self._rng = rng if rng is not None else np.random.default_rng()
        self._log_randomizer_bounds = (float(np.log(low)), float(np.log(high)))
        if key is None:
            key = dce_keygen(self._padded_dim, self._rng)
        elif key.dim != self._padded_dim:
            raise DimensionMismatchError(self._padded_dim, key.dim, what="DCE key")
        self._key = key

    def _draw_randomizers(self, shape) -> np.ndarray:
        """Positive randomizers, log-uniform over the configured range."""
        low, high = self._log_randomizer_bounds
        return np.exp(self._rng.uniform(low, high, size=shape))

    # -- properties ---------------------------------------------------------

    @property
    def key(self) -> DCEKey:
        """The secret key (data-owner side only)."""
        return self._key

    @property
    def dim(self) -> int:
        """Plaintext dimensionality accepted by :meth:`encrypt`."""
        return self._plain_dim

    @property
    def ciphertext_dim(self) -> int:
        """Width ``2d+16`` of each ciphertext component."""
        return self._key.ciphertext_dim

    @property
    def key_id(self) -> int:
        """Tag of this scheme's key (shared by all its ciphertexts)."""
        return self._key.key_id

    # -- phase 1: vector randomization (Equations 1-5) -----------------------

    def _pad(self, vectors: np.ndarray) -> np.ndarray:
        """Zero-pad the last axis from the plaintext to the padded dimension."""
        if self._padded_dim == self._plain_dim:
            return vectors
        pad_width = [(0, 0)] * (vectors.ndim - 1) + [(0, 1)]
        return np.pad(vectors, pad_width)

    @staticmethod
    def _pairwise_mix(vectors: np.ndarray, negate: bool) -> np.ndarray:
        """Step 1: map ``[x1, x2, ...]`` to ``[x1+x2, x1-x2, x3+x4, ...]``.

        With ``negate=True`` (queries) the whole result is negated, giving
        ``check_p . check_q == -2 p.q``.
        """
        evens = vectors[..., 0::2]
        odds = vectors[..., 1::2]
        mixed = np.empty_like(vectors)
        mixed[..., 0::2] = evens + odds
        mixed[..., 1::2] = evens - odds
        return -mixed if negate else mixed

    def _randomize_database(self, vectors: np.ndarray) -> np.ndarray:
        """Steps 1-4 for database vectors: ``(n, d) -> (n, d+8)`` bar-vectors."""
        key = self._key
        n = vectors.shape[0]
        half = key.dim // 2
        squared_norms = np.einsum("ij,ij->i", vectors, vectors)
        hatted = key.pi1.apply(self._pairwise_mix(vectors, negate=False))
        # Per-vector randoms of step 3, scaled to the data's magnitude so no
        # ciphertext slot is orders of magnitude off the others.
        magnitude = np.sqrt(squared_norms) + 1.0
        alpha = self._rng.standard_normal((n, 2)) * magnitude[:, None]
        r_prime = self._rng.standard_normal((n, 3)) * magnitude[:, None]
        gamma = (
            squared_norms
            - r_prime[:, 0] * key.r1
            - r_prime[:, 1] * key.r2
            - r_prime[:, 2] * key.r3
        ) / key.r4
        part1 = np.concatenate(
            [
                hatted[:, :half],
                alpha[:, 0:1],
                -alpha[:, 0:1],
                r_prime[:, 0:1],
                r_prime[:, 1:2],
            ],
            axis=1,
        )
        part2 = np.concatenate(
            [
                hatted[:, half:],
                alpha[:, 1:2],
                alpha[:, 1:2],
                r_prime[:, 2:3],
                gamma[:, None],
            ],
            axis=1,
        )
        combined = np.concatenate([part1 @ key.m1, part2 @ key.m2], axis=1)
        return key.pi2.apply(combined)

    def _randomize_query(self, vector: np.ndarray) -> np.ndarray:
        """Steps 1-4 for one query vector: ``(d,) -> (d+8,)`` bar-vector."""
        key = self._key
        half = key.dim // 2
        hatted = key.pi1.apply(self._pairwise_mix(vector, negate=True))
        beta = self._rng.standard_normal(2) * (np.linalg.norm(vector) + 1.0)
        part1 = np.concatenate(
            [hatted[:half], [beta[0], beta[0], key.r1, key.r2]]
        )
        part2 = np.concatenate(
            [hatted[half:], [beta[1], -beta[1], key.r3, key.r4]]
        )
        combined = np.concatenate([key.m1_inv @ part1, key.m2_inv @ part2])
        return key.pi2.apply(combined)

    def _randomize_queries(self, vectors: np.ndarray) -> np.ndarray:
        """Steps 1-4 for many queries: ``(n, d) -> (n, d+8)`` bar-vectors.

        Identical math to :meth:`_randomize_query`, expressed as two
        matrix-matrix products (``part @ M^-T == (M^-1 @ part^T)^T``) so a
        whole workload's randomization is two BLAS calls instead of ``2n``
        matrix-vector products.
        """
        key = self._key
        n = vectors.shape[0]
        half = key.dim // 2
        hatted = key.pi1.apply(self._pairwise_mix(vectors, negate=True))
        norms = np.linalg.norm(vectors, axis=1)
        beta = self._rng.standard_normal((n, 2)) * (norms + 1.0)[:, None]
        constants = np.ones((n, 1))
        part1 = np.concatenate(
            [
                hatted[:, :half],
                beta[:, 0:1],
                beta[:, 0:1],
                key.r1 * constants,
                key.r2 * constants,
            ],
            axis=1,
        )
        part2 = np.concatenate(
            [
                hatted[:, half:],
                beta[:, 1:2],
                -beta[:, 1:2],
                key.r3 * constants,
                key.r4 * constants,
            ],
            axis=1,
        )
        combined = np.concatenate([part1 @ key.m1_inv.T, part2 @ key.m2_inv.T], axis=1)
        return key.pi2.apply(combined)

    # -- phase 2: vector transformation (Equations 8-16) ----------------------

    def _transform_database(self, bar_vectors: np.ndarray) -> np.ndarray:
        """``(n, d+8)`` bar-vectors -> ``(n, 4, 2d+16)`` ciphertext components."""
        key = self._key
        n = bar_vectors.shape[0]
        ones = 1.0
        projected_up = bar_vectors @ key.m_up
        projected_down = bar_vectors @ key.m_down
        r_p = self._draw_randomizers((n, 1))
        components = np.empty((n, 4, key.ciphertext_dim))
        components[:, 0] = r_p * (projected_up + ones) / key.kv1
        components[:, 1] = r_p * (projected_up - ones) / key.kv2
        components[:, 2] = r_p * (projected_down + ones) / key.kv3
        components[:, 3] = r_p * (projected_down - ones) / key.kv4
        return components

    # -- public API -----------------------------------------------------------

    def encrypt(self, vector: np.ndarray) -> DCECiphertext:
        """``Enc(p, SK) -> C_p`` — encrypt one database vector."""
        vector = self._check_vector(vector)
        bar = self._randomize_database(vector[np.newaxis])
        components = self._transform_database(bar)[0]
        return DCECiphertext(components, self._key.key_id)

    def encrypt_database(self, vectors: np.ndarray) -> DCEEncryptedDatabase:
        """Encrypt a whole ``(n, d)`` database in one vectorized pass."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2:
            raise CiphertextFormatError(
                f"expected a (n, d) array of database vectors, got {vectors.shape}"
            )
        if vectors.shape[1] != self._plain_dim:
            raise DimensionMismatchError(self._plain_dim, vectors.shape[1], what="database")
        padded = self._pad(vectors)
        bar = self._randomize_database(padded)
        return DCEEncryptedDatabase(self._transform_database(bar), self._key.key_id)

    def trapdoor(self, query: np.ndarray) -> DCETrapdoor:
        """``TrapGen(q, SK) -> T_q`` — encrypt one query vector.

        This is the *only* computation the query user performs per query
        (plus the O(d) DCPE encryption); its cost is O(d^2) from the two
        matrix-vector products.
        """
        query = self._check_vector(query)
        bar = self._randomize_query(query)
        stacked = np.concatenate([bar, -bar])
        r_q = float(self._draw_randomizers(()))
        vector = r_q * (self._key.m3_inv @ stacked) * (self._key.kv2 * self._key.kv4)
        return DCETrapdoor(vector, self._key.key_id)

    def trapdoor_batch(self, queries: np.ndarray) -> np.ndarray:
        """``TrapGen`` for a whole ``(n, d)`` query workload at once.

        Returns the ``(n, 2d+16)`` matrix of trapdoor vectors (row ``i``
        is the vector of query ``i``'s :class:`DCETrapdoor`).  The
        randomization and the ``M3^-1`` projection run as matrix-matrix
        products — one BLAS call each instead of ``n`` matrix-vector
        products, which is where the batch encryption speedup comes from.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise CiphertextFormatError(
                f"expected a (n, d) array of query vectors, got {queries.shape}"
            )
        if queries.shape[1] != self._plain_dim:
            raise DimensionMismatchError(
                self._plain_dim, queries.shape[1], what="query batch"
            )
        bar = self._randomize_queries(self._pad(queries))
        stacked = np.concatenate([bar, -bar], axis=1)
        r_q = self._draw_randomizers((queries.shape[0], 1))
        return r_q * (stacked @ self._key.m3_inv.T) * (self._key.kv2 * self._key.kv4)

    def compare(
        self, cipher_o: DCECiphertext, cipher_p: DCECiphertext, trapdoor: DCETrapdoor
    ) -> float:
        """Instance-method alias of :func:`distance_comp`."""
        return distance_comp(cipher_o, cipher_p, trapdoor)

    def compare_batch(
        self,
        cipher_o: DCECiphertext,
        database: DCEEncryptedDatabase,
        indices: np.ndarray,
        trapdoor: DCETrapdoor,
    ) -> np.ndarray:
        """Compare one *o* ciphertext against many *p* ciphertexts at once.

        Returns the vector of ``Z_{o,p_i,q}`` values for ``p_i`` in
        ``indices``; only the signs are meaningful.
        """
        if cipher_o.key_id != database.key_id or trapdoor.key_id != database.key_id:
            raise KeyMismatchError("ciphertexts and trapdoor come from different keys")
        p_components = database.components[indices]
        combined = cipher_o.components[0] * p_components[:, 2] - (
            cipher_o.components[1] * p_components[:, 3]
        )
        return combined @ trapdoor.vector

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1:
            raise CiphertextFormatError(f"expected a 1-D vector, got shape {vector.shape}")
        if vector.shape[0] != self._plain_dim:
            raise DimensionMismatchError(self._plain_dim, vector.shape[0])
        return self._pad(vector)
