"""The paper's primary contribution: DCE + the PP-ANNS scheme.

Public API:

* :class:`repro.core.dce.DCEScheme` — distance comparison encryption
  (Section IV): exact encrypted distance comparisons at O(d).
* :class:`repro.core.dcpe.DCPEScheme` — Scale-and-Perturb approximate
  DCPE (Algorithm 1), the filter phase's encryption.
* :class:`repro.core.index.EncryptedIndex` — the server-side triplet
  ``(C_SAP, backend(C_SAP), C_DCE)`` (Section V-A).
* :mod:`repro.core.protocol` — the batch-first request/response types:
  :class:`SearchRequest`, :class:`EncryptedQuery` /
  :class:`EncryptedQueryBatch`, :class:`SearchResult` /
  :class:`SearchResultBatch`.
* :mod:`repro.core.backends` — the :class:`FilterBackend` protocol and
  the HNSW / NSG / IVF / brute-force adapters (Section V-A's
  substitutability remark).
* :func:`repro.core.search.filter_and_refine` — Algorithm 2, run as
  the staged pipeline :data:`repro.core.search.PIPELINE_STAGES`
  (resolve → filter → mask → refine → respond over a
  :class:`PipelineContext`); :func:`repro.core.search.execute_batch` —
  the pipelined batch path (queries fan out over
  :mod:`repro.core.executor`'s shared pool), with
  :func:`repro.core.search.execute_batch_settled` as the per-query
  settled form the online serving layer (:mod:`repro.serve`) consumes.
* :mod:`repro.core.refine` — pluggable refine engines behind the
  :class:`RefineEngine` protocol: the ``heap`` comparison-oracle
  reference and the batched ``vectorized`` default.
* :class:`repro.core.roles` — DataOwner / QueryUser / CloudServer.
* :class:`repro.core.scheme.PPANNS` — a one-object facade over the whole
  pipeline.
* :mod:`repro.core.sharding` — horizontal partitioning:
  :class:`ShardedEncryptedIndex` with a scatter-gather filter phase
  (``DataOwner.build_index(..., shards=N)``).
* :mod:`repro.core.maintenance` — insert/delete (Section V-D) and
  online tombstone compaction (:func:`compact_index`).
* :mod:`repro.core.journal` — incremental persistence: the v4
  journaled directory store (:class:`IndexJournal`, base + checksummed
  delta segments, atomic write-new-then-rename publication).
* :mod:`repro.core.params` — beta and k' tuning (Section VII-A).
* :mod:`repro.core.build` — the parallel, bit-reproducible index
  construction pipeline (per-shard builds fanned out over the worker
  pool, SeedSequence-spawned shard RNGs, :class:`BuildReport` timing
  split).
"""

from repro.core.backends import (
    BACKENDS,
    BruteForceBackend,
    FilterBackend,
    HNSWBackend,
    IVFBackend,
    NSGBackend,
    available_backends,
    build_backend,
)
from repro.core.build import (
    BUILD_MODES,
    BuildReport,
    ShardBuildTiming,
    build_shard_backends,
    spawn_shard_rngs,
)
from repro.core.dce import (
    DCECiphertext,
    DCEEncryptedDatabase,
    DCEScheme,
    DCETrapdoor,
    dce_keygen,
    distance_comp,
    distance_comp_many,
    sdc_mac_count,
)
from repro.core.dcpe import DCPEScheme, dcpe_keygen, beta_lower_bound, beta_upper_bound
from repro.core.errors import (
    CiphertextFormatError,
    DimensionMismatchError,
    KeyMismatchError,
    ParameterError,
    PPANNSError,
)
from repro.core.index import EncryptedIndex, IndexSizeReport
from repro.core.journal import FileOps, IndexJournal, JournalStats
from repro.core.keys import DCEKey, DCPEKey
from repro.core.maintenance import (
    CompactionReport,
    compact_index,
    delete_vector,
    insert_vector,
)
from repro.core.persistence import load_index, load_keys, save_index, save_keys
from repro.core.refine import (
    DEFAULT_REFINE_ENGINE,
    REFINE_ENGINES,
    HeapRefineEngine,
    RefineEngine,
    RefineOutcome,
    VectorizedRefineEngine,
    available_refine_engines,
    get_refine_engine,
)
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
    ShardTiming,
    resolve_ef_search,
)
from repro.core.roles import CloudServer, DataOwner, QueryUser, SecretKeyBundle
from repro.core.scheme import PPANNS
from repro.core.search import (
    PIPELINE_STAGES,
    PipelineContext,
    execute_batch,
    execute_batch_settled,
    filter_and_refine,
    filter_only,
    run_pipeline,
)
from repro.core.sharding import (
    SHARD_STRATEGIES,
    Shard,
    ShardedEncryptedIndex,
    build_sharded_index,
)


def __getattr__(name: str):
    """Forward deprecated names to their owning module (warn on access)."""
    if name == "SearchReport":
        # Triggers repro.core.protocol's DeprecationWarning.
        from repro.core import protocol

        return protocol.SearchReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DCEScheme",
    "DCECiphertext",
    "DCETrapdoor",
    "DCEEncryptedDatabase",
    "dce_keygen",
    "distance_comp",
    "distance_comp_many",
    "sdc_mac_count",
    "DCPEScheme",
    "dcpe_keygen",
    "beta_lower_bound",
    "beta_upper_bound",
    "DCEKey",
    "DCPEKey",
    "EncryptedIndex",
    "IndexSizeReport",
    "ShardedEncryptedIndex",
    "Shard",
    "ShardTiming",
    "SHARD_STRATEGIES",
    "build_sharded_index",
    "SearchRequest",
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchResult",
    "SearchResultBatch",
    "SearchReport",  # noqa: F822  (module __getattr__, deprecated alias)
    "resolve_ef_search",
    "FilterBackend",
    "HNSWBackend",
    "NSGBackend",
    "IVFBackend",
    "BruteForceBackend",
    "BACKENDS",
    "available_backends",
    "build_backend",
    "filter_and_refine",
    "filter_only",
    "execute_batch",
    "execute_batch_settled",
    "PipelineContext",
    "PIPELINE_STAGES",
    "run_pipeline",
    "RefineEngine",
    "RefineOutcome",
    "HeapRefineEngine",
    "VectorizedRefineEngine",
    "REFINE_ENGINES",
    "DEFAULT_REFINE_ENGINE",
    "available_refine_engines",
    "get_refine_engine",
    "BUILD_MODES",
    "BuildReport",
    "ShardBuildTiming",
    "build_shard_backends",
    "spawn_shard_rngs",
    "DataOwner",
    "QueryUser",
    "CloudServer",
    "SecretKeyBundle",
    "PPANNS",
    "insert_vector",
    "delete_vector",
    "compact_index",
    "CompactionReport",
    "IndexJournal",
    "JournalStats",
    "FileOps",
    "save_index",
    "load_index",
    "save_keys",
    "load_keys",
    "PPANNSError",
    "DimensionMismatchError",
    "KeyMismatchError",
    "CiphertextFormatError",
    "ParameterError",
]
