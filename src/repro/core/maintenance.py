"""Index maintenance: insertion and deletion (Section V-D).

**Insertion** needs the data owner: they encrypt the new vector ``u`` into
``C_SAP(u)`` and ``C_DCE(u)`` and send both to the server, which inserts
``C_SAP(u)`` into the filter backend (for HNSW: exactly like a native
insertion — k-ANNS for the new point, diverse-neighbor selection,
bidirectional links) and appends ``C_DCE(u)`` to the DCE store.

**Deletion** is server-only: the backend drops the vector (for HNSW,
Section V-D: each *in*-neighbor is "re-inserted" — its out-edges are
rebuilt with a fresh k-ANN search over the current graph) and the
vector's ciphertexts are tombstoned, so ids stay stable for the aligned
``C_SAP`` / backend / ``C_DCE`` arrays.

Both operations go through the :class:`~repro.core.backends.FilterBackend`
protocol, so they work identically for every backend kind — and through
the index's ``backend_insert`` / ``backend_mark_deleted`` routing layer,
so they work identically for a monolithic
:class:`~repro.core.index.EncryptedIndex` and a
:class:`~repro.core.sharding.ShardedEncryptedIndex` (where the operation
lands on the shard that owns the vector's global id).

Both also accept a ``journal`` — an
:class:`~repro.core.journal.IndexJournal` — and record the mutation as a
delta segment after applying it, so the on-disk store tracks the live
index without full rewrites.

**Compaction** (:func:`compact_index`) rebuilds the filter structures
without their tombstoned rows — per shard for a sharded index, behind a
swap readers never observe half-done — and folds the journal into a
fresh base generation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import ParameterError
from repro.core.index import EncryptedIndex
from repro.core.roles import DataOwner
from repro.core.sharding import ShardedEncryptedIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.journal import IndexJournal

__all__ = ["insert_vector", "delete_vector", "compact_index", "CompactionReport"]


def insert_vector(
    owner: DataOwner,
    index: "EncryptedIndex | ShardedEncryptedIndex",
    vector: np.ndarray,
    journal: "IndexJournal | None" = None,
) -> int:
    """Insert a new plaintext vector into an existing encrypted index.

    Parameters
    ----------
    owner:
        The data owner (provides the two encryptions of ``vector``).
    index:
        The server's index, updated in place.
    vector:
        The new plaintext vector ``u``.
    journal:
        When given, the applied insertion is appended to this journal as
        a delta segment (including the HNSW level the insert drew, so a
        replay reproduces the graph bit-identically).

    Returns
    -------
    int
        The id assigned to the new vector (consistent across ``C_SAP``,
        the graph and ``C_DCE``).
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1 or vector.shape[0] != index.dim:
        raise ParameterError(
            f"expected a vector of dimension {index.dim}, got shape {vector.shape}"
        )
    sap_row, dce_ct = owner.encrypt_vector(vector)
    new_id = index.backend_insert(sap_row)
    index._append(sap_row, index.dce_database.append(dce_ct))
    if journal is not None:
        journal.append_insert(
            sap_row, dce_ct, new_id, index.replay_level(new_id)
        )
    return new_id


def delete_vector(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    vector_id: int,
    journal: "IndexJournal | None" = None,
) -> None:
    """Delete a vector from the index, server-side only.

    The backend performs its substrate-specific removal (for HNSW,
    Section V-D's in-neighbor repair) and the ciphertexts are tombstoned.
    On a sharded index the removal is routed to the owning shard.  When
    ``journal`` is given, the deletion is appended as a delta segment.
    """
    if not index.is_live(vector_id):
        raise ParameterError(f"vector {vector_id} is not a live index entry")
    index.backend_mark_deleted(vector_id)
    index._mark_deleted(vector_id)
    if journal is not None:
        journal.append_delete(vector_id)


@dataclass(frozen=True)
class CompactionReport:
    """What one :func:`compact_index` pass accomplished."""

    shards_compacted: int
    tombstones_dropped: int
    seconds: float


def compact_index(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    rng: np.random.Generator | None = None,
    journal: "IndexJournal | None" = None,
) -> CompactionReport:
    """Rebuild the filter structures without their tombstoned rows.

    Shards (or the monolithic backend) holding no tombstones are left
    untouched.  Each rebuilt structure is published by an atomic swap —
    a concurrent filter search sees either the old or the new backend,
    both internally consistent — and dropped ids move to the index's
    ``retired`` set so global ids are never reassigned.

    When ``journal`` is given, the journal's delta segments are folded
    into a fresh base generation afterwards (write-new-then-rename, so
    a crash mid-compaction keeps the previous generation loadable).

    Serving note: callers owning
    :class:`~repro.serve.frontend.ServingFrontend` instances should
    flush their result caches after compacting
    (:meth:`~repro.core.scheme.PPANNS.compact` does) — cached answers
    may carry ids whose ranking the rebuilt backend no longer produces.
    """
    start = time.perf_counter()
    if isinstance(index, ShardedEncryptedIndex):
        shards_compacted = 0
        dropped = 0
        for shard in index.shards:
            shard_dropped = index.compact_shard(shard.shard_id, rng=rng)
            if shard_dropped:
                shards_compacted += 1
                dropped += shard_dropped
    else:
        dropped = index.compact(rng=rng)
        shards_compacted = 1 if dropped else 0
    if journal is not None and (dropped or journal.num_segments):
        # Fold the journal into a fresh base — unless this was a no-op
        # compaction over an empty journal, where rewriting would only
        # burn a generation republishing identical bytes.
        journal.rewrite_base(index)
    return CompactionReport(
        shards_compacted=shards_compacted,
        tombstones_dropped=dropped,
        seconds=time.perf_counter() - start,
    )
