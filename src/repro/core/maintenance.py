"""Index maintenance: insertion and deletion (Section V-D).

**Insertion** needs the data owner: they encrypt the new vector ``u`` into
``C_SAP(u)`` and ``C_DCE(u)`` and send both to the server, which inserts
``C_SAP(u)`` into the filter backend (for HNSW: exactly like a native
insertion — k-ANNS for the new point, diverse-neighbor selection,
bidirectional links) and appends ``C_DCE(u)`` to the DCE store.

**Deletion** is server-only: the backend drops the vector (for HNSW,
Section V-D: each *in*-neighbor is "re-inserted" — its out-edges are
rebuilt with a fresh k-ANN search over the current graph) and the
vector's ciphertexts are tombstoned, so ids stay stable for the aligned
``C_SAP`` / backend / ``C_DCE`` arrays.

Both operations go through the :class:`~repro.core.backends.FilterBackend`
protocol, so they work identically for every backend kind — and through
the index's ``backend_insert`` / ``backend_mark_deleted`` routing layer,
so they work identically for a monolithic
:class:`~repro.core.index.EncryptedIndex` and a
:class:`~repro.core.sharding.ShardedEncryptedIndex` (where the operation
lands on the shard that owns the vector's global id).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ParameterError
from repro.core.index import EncryptedIndex
from repro.core.roles import DataOwner
from repro.core.sharding import ShardedEncryptedIndex

__all__ = ["insert_vector", "delete_vector"]


def insert_vector(
    owner: DataOwner,
    index: "EncryptedIndex | ShardedEncryptedIndex",
    vector: np.ndarray,
) -> int:
    """Insert a new plaintext vector into an existing encrypted index.

    Parameters
    ----------
    owner:
        The data owner (provides the two encryptions of ``vector``).
    index:
        The server's index, updated in place.
    vector:
        The new plaintext vector ``u``.

    Returns
    -------
    int
        The id assigned to the new vector (consistent across ``C_SAP``,
        the graph and ``C_DCE``).
    """
    vector = np.asarray(vector, dtype=np.float64)
    if vector.ndim != 1 or vector.shape[0] != index.dim:
        raise ParameterError(
            f"expected a vector of dimension {index.dim}, got shape {vector.shape}"
        )
    sap_row, dce_ct = owner.encrypt_vector(vector)
    new_id = index.backend_insert(sap_row)
    index._append(sap_row, index.dce_database.append(dce_ct))
    return new_id


def delete_vector(
    index: "EncryptedIndex | ShardedEncryptedIndex", vector_id: int
) -> None:
    """Delete a vector from the index, server-side only.

    The backend performs its substrate-specific removal (for HNSW,
    Section V-D's in-neighbor repair) and the ciphertexts are tombstoned.
    On a sharded index the removal is routed to the owning shard.
    """
    if not index.is_live(vector_id):
        raise ParameterError(f"vector {vector_id} is not a live index entry")
    index.backend_mark_deleted(vector_id)
    index._mark_deleted(vector_id)
