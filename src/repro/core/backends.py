"""Pluggable filter-phase backends (Section V-A's substitutability remark).

The paper builds its privacy-preserving index over HNSW but notes the
filter phase "can leverage other proximity graph-based approaches"; the
repo already carries NSG, IVF-Flat and a linear scan as parallel code
paths.  This module turns those substrates into interchangeable
:class:`FilterBackend` implementations so :class:`~repro.core.index.EncryptedIndex`
and :class:`~repro.core.roles.CloudServer` never care which one they run
on — the backend becomes a scenario knob (``--backend`` in the CLI,
``backend=`` in :class:`~repro.core.scheme.PPANNS`).

Every backend operates purely on DCPE ciphertext geometry, exactly like
the HNSW original, so the privacy argument is unchanged.

Contract (the :class:`FilterBackend` protocol):

* ``build(sap_vectors, rng=..., params=...)`` — class-level constructor
  over the DCPE ciphertext matrix;
* ``search(sap_query, k_prime, ef_search=..., stats=...)`` — k'-ANNS on
  ciphertexts, returning ``(ids, squared_distances)`` nearest-first;
* ``search_vectorized(...)`` — same contract, bit-identical results,
  served from the substrate's flat (CSR) search mode where one exists
  (graph backends) — the ``vectorized`` filter engine's per-query path;
* ``search_batch(sap_queries, k_prime, ...)`` — multi-query filtering;
  the default loops ``search`` per query, while brute-force and IVF
  override it with genuinely batched GEMM kernels (``batched_kernel``
  advertises the override, and results stay bit-identical to the loop);
* ``insert(sap_row)`` / ``mark_deleted(vector_id)`` — maintenance
  (Section V-D), keeping ids aligned with ``C_SAP`` / ``C_DCE``;
* ``state_arrays()`` / ``from_state(...)`` — persistence hooks.

The persistence hooks define each backend's on-disk payload, embedded
into the index file by :mod:`repro.core.persistence` — at the top level
for format v2 (monolithic) and under ``shard{i}_`` prefixes for format
v3 (sharded).  The exact key set per backend kind (``graph_*``,
``nsg_*``, ``ivf_*``, ``bruteforce_*``) is specified in
``docs/FORMATS.md``; ``state_arrays`` never persists the vectors
themselves, which ``from_state`` reloads from the caller's ``C_SAP``
slice.  In a sharded index every shard owns a full, independent backend
instance of the same kind, built over only its slice of ``C_SAP`` and
addressed by shard-local ids.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.core.errors import ParameterError
from repro.hnsw.bruteforce import BruteForceIndex
from repro.hnsw.graph import HNSWIndex, HNSWParams, SearchStats, _Node
from repro.hnsw.ivf import IVFFlatIndex, IVFParams
from repro.hnsw.nsg import NSGIndex, NSGParams

__all__ = [
    "FilterBackend",
    "HNSWBackend",
    "NSGBackend",
    "IVFBackend",
    "BruteForceBackend",
    "BACKENDS",
    "available_backends",
    "build_backend",
    "backend_from_state",
]


@runtime_checkable
class FilterBackend(Protocol):
    """What the encrypted index needs from a filter-phase substrate."""

    kind: ClassVar[str]

    #: Whether ``search_batch`` is a genuinely batched kernel (GEMM per
    #: micro-batch) rather than the default per-query loop.
    batched_kernel: ClassVar[bool]

    @property
    def substrate(self):  # pragma: no cover - trivial accessor
        """The wrapped index object."""
        ...

    @property
    def vectors(self) -> np.ndarray:
        """Indexed vectors in id order, including deleted slots."""
        ...

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k'-ANNS over DCPE ciphertexts: ``(ids, dists)`` nearest-first."""
        ...

    def search_vectorized(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Same contract and bit-identical results as :meth:`search`,
        served from the substrate's flat search mode where one exists."""
        ...

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Multi-query filtering, bit-identical to looping :meth:`search`."""
        ...

    def insert(self, sap_row: np.ndarray) -> int:
        """Insert one DCPE ciphertext row; returns the assigned id."""
        ...

    def mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` from the substrate (Section V-D)."""
        ...

    def edge_count(self) -> int:
        """Directed edges in the substrate (0 for non-graph backends)."""
        ...

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist alongside the index."""
        ...


class HNSWBackend:
    """The paper's default: an HNSW graph over ``C_SAP`` (Section V-A)."""

    kind: ClassVar[str] = "hnsw"
    batched_kernel: ClassVar[bool] = True

    def __init__(self, graph: HNSWIndex) -> None:
        self._graph = graph

    @classmethod
    def build(
        cls,
        sap_vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        params: HNSWParams | None = None,
        build_mode: str = "sequential",
    ) -> "HNSWBackend":
        """Build a fresh HNSW graph over the DCPE ciphertext matrix.

        ``build_mode`` selects the construction path (one of
        :data:`repro.hnsw.graph.BUILD_MODES`): the seed's ``sequential``
        insert loop or the ``bulk`` vectorized path, which produces a
        bit-identical graph from the same seed.
        """
        graph = HNSWIndex(
            sap_vectors.shape[1],
            params if params is not None else HNSWParams(),
            rng=rng,
        ).build(sap_vectors, mode=build_mode)
        return cls(graph)

    @property
    def substrate(self) -> HNSWIndex:
        """The wrapped HNSWIndex instance."""
        return self._graph

    @property
    def vectors(self) -> np.ndarray:
        """Indexed vectors in id order, including deleted slots."""
        return self._graph.vectors

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k'-ANNS over DCPE ciphertexts: ``(ids, dists)`` nearest-first."""
        return self._graph.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_vectorized(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bit-identical :meth:`search` over the graph's CSR search mode."""
        return self._graph.search_vectorized(
            sap_query, k_prime, ef_search=ef_search, stats=stats
        )

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Lockstep multi-query beam search, bit-identical per query.

        The whole micro-batch marches over the CSR snapshot together
        and each round's distance blocks are fused into one gather +
        einsum (see :meth:`repro.hnsw.graph.HNSWIndex.search_batch`).
        """
        return self._graph.search_batch(
            sap_queries, k_prime, ef_search=ef_search, stats_list=stats_list
        )

    def search_mode_arrays(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer CSR ``(indptr, indices)`` pairs (shm publishing)."""
        return self._graph.search_mode_arrays()

    def adopt_search_mode(self, layers) -> None:
        """Install externally provided CSR layers (zero-copy attach)."""
        self._graph.adopt_search_mode(layers)

    def insert(self, sap_row: np.ndarray, level: int | None = None) -> int:
        """Insert one DCPE ciphertext row; returns the assigned id.

        ``level`` forces the HNSW level draw (journal replay — see
        :meth:`repro.hnsw.graph.HNSWIndex.insert`); ``None`` draws from
        the graph's RNG as usual.
        """
        return self._graph.insert(sap_row, level=level)

    def node_level(self, vector_id: int) -> int:
        """The node's top HNSW level (recorded for journal replay)."""
        return self._graph.node_level(vector_id)

    def rebuild(
        self, sap_vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "HNSWBackend":
        """Fresh build over ``sap_vectors`` with this backend's parameters.

        The compactor (:mod:`repro.core.maintenance`) uses this to drop
        tombstoned rows without re-deriving construction knobs.
        """
        return type(self).build(sap_vectors, rng=rng, params=self._graph.params)

    def mark_deleted(self, vector_id: int) -> None:
        """Section V-D deletion: unlink, tombstone, repair in-neighbors."""
        graph = self._graph
        in_neighbors = graph.in_neighbors(vector_id)
        graph.remove_edges_to(vector_id)
        graph.mark_deleted(vector_id)
        for neighbor in in_neighbors:
            if not graph.is_deleted(neighbor):
                graph.repair_node(neighbor)

    def edge_count(self) -> int:
        """Directed edges in the substrate (0 for non-graph backends)."""
        return self._graph.edge_count(0)

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist alongside the index (see docs/FORMATS.md)."""
        graph = self._graph
        # Flat array assembly (graph.adjacency_arrays) — the export used
        # to walk a nodes x levels x neighbors Python loop per edge.
        levels, edge_array = graph.adjacency_arrays()
        # The graph's vectors are exactly the C_SAP rows save_index already
        # writes, so they are not duplicated here; from_state reloads them
        # from the sap_vectors argument.
        return {
            "graph_levels": levels,
            "graph_edges": edge_array,
            "graph_deleted": graph.deleted_ids(),
            "graph_entry_point": np.array(
                [-1 if graph.entry_point is None else graph.entry_point],
                dtype=np.int64,
            ),
            "graph_params": np.array(
                [graph.params.m, graph.params.ef_construction], dtype=np.int64
            ),
        }

    @classmethod
    def from_state(
        cls,
        sap_vectors: np.ndarray,
        data: Mapping[str, np.ndarray],
        copy: bool = True,
    ) -> "HNSWBackend":
        """Rebuild the backend from its persisted state arrays.

        ``copy=False`` aliases the caller's ``sap_vectors`` buffer
        instead of copying it — the zero-copy attach path of the
        process data plane (:mod:`repro.core.plane`), whose workers
        read the vectors out of shared memory.  Safe because search
        never writes the buffer and an insert reallocates it rather
        than growing in place.
        """
        # v1 files carried the vectors under graph_vectors; v2 dedups them
        # into the sap_vectors array the caller already loaded.
        vectors = data["graph_vectors"] if "graph_vectors" in data else sap_vectors
        vectors = np.asarray(vectors, dtype=np.float64)
        levels = data["graph_levels"]
        m, ef_construction = (int(x) for x in data["graph_params"])
        graph = HNSWIndex(
            vectors.shape[1], HNSWParams(m=m, ef_construction=ef_construction)
        )
        # Reconstruct internal state directly; going through insert() would
        # re-run construction and change the edges.
        count = vectors.shape[0]
        graph._buffer = vectors.copy() if copy else vectors
        graph._nodes = [
            _Node(
                level=int(levels[i]),
                neighbors=[[] for _ in range(int(levels[i]) + 1)],
            )
            for i in range(count)
        ]
        for node, level, neighbor in data["graph_edges"]:
            graph._nodes[int(node)].neighbors[int(level)].append(int(neighbor))
        graph._deleted = set(int(i) for i in data["graph_deleted"])
        entry = int(data["graph_entry_point"][0])
        graph._entry_point = None if entry < 0 else entry
        graph._max_level = int(levels.max()) if count else -1
        return cls(graph)


class NSGBackend:
    """Flat NSG-style proximity graph backend."""

    kind: ClassVar[str] = "nsg"
    batched_kernel: ClassVar[bool] = True

    def __init__(self, index: NSGIndex) -> None:
        self._index = index

    @classmethod
    def build(
        cls,
        sap_vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        params: NSGParams | None = None,
        build_mode: str = "sequential",
    ) -> "NSGBackend":
        """Build a fresh NSG-style graph over the DCPE ciphertext matrix.

        ``build_mode`` is accepted for knob parity and ignored: the NSG
        build has a single, already array-oriented path.
        """
        return cls(NSGIndex(sap_vectors, params))

    @property
    def substrate(self) -> NSGIndex:
        """The wrapped NSGIndex instance."""
        return self._index

    @property
    def vectors(self) -> np.ndarray:
        """Indexed vectors in id order, including deleted slots."""
        return self._index.vectors

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k'-ANNS over DCPE ciphertexts: ``(ids, dists)`` nearest-first."""
        return self._index.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_vectorized(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bit-identical :meth:`search` over the graph's CSR search mode."""
        return self._index.search_vectorized(
            sap_query, k_prime, ef_search=ef_search, stats=stats
        )

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Lockstep multi-query beam search, bit-identical per query.

        The whole micro-batch marches over the CSR snapshot together
        and each round's distance blocks are fused into one gather +
        einsum (see :meth:`repro.hnsw.nsg.NSGIndex.search_batch`).
        """
        return self._index.search_batch(
            sap_queries, k_prime, ef_search=ef_search, stats_list=stats_list
        )

    def search_mode_arrays(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer CSR ``(indptr, indices)`` pairs (shm publishing)."""
        return self._index.search_mode_arrays()

    def adopt_search_mode(self, layers) -> None:
        """Install externally provided CSR layers (zero-copy attach)."""
        self._index.adopt_search_mode(layers)

    def insert(self, sap_row: np.ndarray) -> int:
        """Insert one DCPE ciphertext row; returns the assigned id."""
        return self._index.insert(sap_row)

    def rebuild(
        self, sap_vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "NSGBackend":
        """Fresh build over ``sap_vectors`` with this backend's parameters."""
        return type(self).build(sap_vectors, rng=rng, params=self._index.params)

    def mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` from the substrate (Section V-D)."""
        self._index.mark_deleted(vector_id)

    def edge_count(self) -> int:
        """Directed edges in the substrate (0 for non-graph backends)."""
        return self._index.edge_count()

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist alongside the index (see docs/FORMATS.md)."""
        index = self._index
        return {
            "nsg_edges": index.adjacency_arrays(),
            "nsg_deleted": index.deleted_ids(),
            "nsg_medoid": np.array([index.medoid], dtype=np.int64),
            "nsg_params": np.array(
                [index.params.knn, index.params.max_degree], dtype=np.int64
            ),
        }

    @classmethod
    def from_state(
        cls, sap_vectors: np.ndarray, data: Mapping[str, np.ndarray]
    ) -> "NSGBackend":
        """Rebuild the backend from its persisted state arrays."""
        knn, max_degree = (int(x) for x in data["nsg_params"])
        neighbors: list[list[int]] = [[] for _ in range(sap_vectors.shape[0])]
        for node, neighbor in data["nsg_edges"]:
            neighbors[int(node)].append(int(neighbor))
        index = NSGIndex.from_state(
            sap_vectors,
            NSGParams(knn=knn, max_degree=max_degree),
            neighbors,
            int(data["nsg_medoid"][0]),
            deleted=set(int(i) for i in data["nsg_deleted"]),
        )
        return cls(index)


class IVFBackend:
    """IVF-Flat backend; ``ef_search`` scales the probe count.

    IVF's recall knob is ``nprobe``, not a beam width, so the shared
    ``ef_search`` parameter is mapped onto it: the backend probes at least
    ``default_nprobe`` lists, plus enough lists that the expected number
    of scanned vectors (``ef_search``-many, assuming balanced lists) is
    covered.
    """

    kind: ClassVar[str] = "ivf"
    batched_kernel: ClassVar[bool] = True

    def __init__(self, index: IVFFlatIndex, default_nprobe: int = 4) -> None:
        if default_nprobe < 1:
            raise ParameterError(f"nprobe must be >= 1, got {default_nprobe}")
        self._index = index
        self._default_nprobe = default_nprobe

    @classmethod
    def build(
        cls,
        sap_vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        params: IVFParams | None = None,
        default_nprobe: int = 4,
        build_mode: str = "sequential",
    ) -> "IVFBackend":
        """Build a fresh IVF-Flat index over the DCPE ciphertext matrix.

        ``build_mode`` is accepted for knob parity and ignored: k-means
        training has a single, already array-oriented path.
        """
        return cls(IVFFlatIndex(sap_vectors, params, rng=rng), default_nprobe)

    @property
    def substrate(self) -> IVFFlatIndex:
        """The wrapped IVFFlatIndex instance."""
        return self._index

    @property
    def vectors(self) -> np.ndarray:
        """Indexed vectors in id order, including deleted slots."""
        return self._index.vectors

    def _nprobe_for(self, ef_search: int | None) -> int:
        if ef_search is None:
            return self._default_nprobe
        per_list = max(1.0, self._index.size / max(1, self._index.num_lists))
        return max(self._default_nprobe, math.ceil(ef_search / per_list))

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k'-ANNS over DCPE ciphertexts: ``(ids, dists)`` nearest-first."""
        return self._index.search(
            sap_query, k_prime, nprobe=self._nprobe_for(ef_search), stats=stats
        )

    def search_vectorized(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search` — the IVF scan is already array code."""
        return self.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched probe-and-rerank (norm-cached GEMV preselect)."""
        return self._index.search_batch(
            sap_queries,
            k_prime,
            nprobe=self._nprobe_for(ef_search),
            stats_list=stats_list,
        )

    def insert(self, sap_row: np.ndarray) -> int:
        """Insert one DCPE ciphertext row; returns the assigned id."""
        return self._index.insert(sap_row)

    def rebuild(
        self, sap_vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "IVFBackend":
        """Fresh build over ``sap_vectors`` with this backend's parameters."""
        return type(self).build(
            sap_vectors,
            rng=rng,
            params=self._index.params,
            default_nprobe=self._default_nprobe,
        )

    def mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` from the substrate (Section V-D)."""
        self._index.mark_deleted(vector_id)

    def edge_count(self) -> int:
        """Directed edges in the substrate (0 for non-graph backends)."""
        return 0

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist alongside the index (see docs/FORMATS.md)."""
        index = self._index
        return {
            "ivf_centroids": index.centroids,
            "ivf_assignments": index.assignments(),
            "ivf_deleted": index.deleted_ids(),
            "ivf_params": np.array(
                [
                    index.params.num_lists,
                    index.params.train_iterations,
                    self._default_nprobe,
                ],
                dtype=np.int64,
            ),
        }

    @classmethod
    def from_state(
        cls, sap_vectors: np.ndarray, data: Mapping[str, np.ndarray]
    ) -> "IVFBackend":
        """Rebuild the backend from its persisted state arrays."""
        num_lists, train_iterations, default_nprobe = (
            int(x) for x in data["ivf_params"]
        )
        index = IVFFlatIndex.from_state(
            sap_vectors,
            IVFParams(num_lists=num_lists, train_iterations=train_iterations),
            data["ivf_centroids"],
            np.asarray(data["ivf_assignments"], dtype=np.int64),
            deleted=set(int(i) for i in data["ivf_deleted"]),
        )
        return cls(index, default_nprobe)


class BruteForceBackend:
    """Exact linear scan — the no-index reference backend."""

    kind: ClassVar[str] = "bruteforce"
    batched_kernel: ClassVar[bool] = True

    def __init__(self, index: BruteForceIndex) -> None:
        self._index = index

    @classmethod
    def build(
        cls,
        sap_vectors: np.ndarray,
        rng: np.random.Generator | None = None,
        params: None = None,
        build_mode: str = "sequential",
    ) -> "BruteForceBackend":
        """Build a linear-scan index over the DCPE ciphertext matrix.

        ``build_mode`` is accepted for knob parity and ignored: a linear
        scan has no construction work at all.
        """
        return cls(BruteForceIndex(sap_vectors))

    @property
    def substrate(self) -> BruteForceIndex:
        """The wrapped BruteForceIndex instance."""
        return self._index

    @property
    def vectors(self) -> np.ndarray:
        """Indexed vectors in id order, including deleted slots."""
        return self._index.vectors

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k'-ANNS over DCPE ciphertexts: ``(ids, dists)`` nearest-first."""
        return self._index.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_vectorized(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`search` — the linear scan is already array code."""
        return self.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched exact scan: one GEMM for the whole micro-batch."""
        return self._index.search_batch(
            sap_queries, k_prime, ef_search=ef_search, stats_list=stats_list
        )

    def insert(self, sap_row: np.ndarray) -> int:
        """Insert one DCPE ciphertext row; returns the assigned id."""
        return self._index.insert(sap_row)

    def rebuild(
        self, sap_vectors: np.ndarray, rng: np.random.Generator | None = None
    ) -> "BruteForceBackend":
        """Fresh build over ``sap_vectors`` (a linear scan has no knobs)."""
        return type(self).build(sap_vectors, rng=rng)

    def mark_deleted(self, vector_id: int) -> None:
        """Delete ``vector_id`` from the substrate (Section V-D)."""
        self._index.mark_deleted(vector_id)

    def edge_count(self) -> int:
        """Directed edges in the substrate (0 for non-graph backends)."""
        return 0

    def state_arrays(self) -> dict[str, np.ndarray]:
        """Arrays to persist alongside the index (see docs/FORMATS.md)."""
        return {"bruteforce_deleted": self._index.deleted_ids()}

    @classmethod
    def from_state(
        cls, sap_vectors: np.ndarray, data: Mapping[str, np.ndarray]
    ) -> "BruteForceBackend":
        """Rebuild the backend from its persisted state arrays."""
        return cls(
            BruteForceIndex.from_state(
                sap_vectors, set(int(i) for i in data["bruteforce_deleted"])
            )
        )


#: Registry of the shipped backend kinds.
BACKENDS: dict[str, type] = {
    HNSWBackend.kind: HNSWBackend,
    NSGBackend.kind: NSGBackend,
    IVFBackend.kind: IVFBackend,
    BruteForceBackend.kind: BruteForceBackend,
}


def available_backends() -> tuple[str, ...]:
    """The registered backend kinds, stable order."""
    return tuple(BACKENDS)


def build_backend(
    kind: str,
    sap_vectors: np.ndarray,
    rng: np.random.Generator | None = None,
    params=None,
    build_mode: str = "sequential",
) -> FilterBackend:
    """Build a filter backend of ``kind`` over the DCPE ciphertexts.

    ``build_mode`` selects the HNSW construction path (one of
    :data:`repro.hnsw.graph.BUILD_MODES`); the other backend kinds have
    a single build path and ignore it.
    """
    try:
        backend_cls = BACKENDS[kind]
    except KeyError:
        raise ParameterError(
            f"unknown backend {kind!r}; available: {', '.join(BACKENDS)}"
        ) from None
    return backend_cls.build(sap_vectors, rng=rng, params=params, build_mode=build_mode)


def backend_from_state(
    kind: str,
    sap_vectors: np.ndarray,
    data: Mapping[str, np.ndarray],
    copy: bool = True,
) -> FilterBackend:
    """Rebuild a persisted backend of ``kind`` from its state arrays.

    ``copy=False`` requests the zero-copy vector attach: the rebuilt
    backend aliases ``sap_vectors`` instead of duplicating it.  Only
    the HNSW backend copies in the first place — the other substrates
    already store vectors by reference — so the flag is forwarded
    where it matters and a no-op elsewhere.
    """
    try:
        backend_cls = BACKENDS[kind]
    except KeyError:
        raise ParameterError(
            f"unknown backend {kind!r}; available: {', '.join(BACKENDS)}"
        ) from None
    if backend_cls is HNSWBackend:
        return backend_cls.from_state(sap_vectors, data, copy=copy)
    return backend_cls.from_state(sap_vectors, data)
