"""Horizontal partitioning of the encrypted corpus (scatter-gather serving).

The monolithic :class:`~repro.core.index.EncryptedIndex` holds one filter
backend over the whole ``C_SAP`` matrix, so build time, memory, and
per-query filter latency all grow with a single unpartitioned structure.
This module splits the corpus across ``N`` shards — each shard owning its
own :class:`~repro.core.backends.FilterBackend` over its slice of the
DCPE ciphertexts — and answers the filter phase by **scatter-gather**:

* **scatter** — the query's DCPE ciphertext fans out to every shard
  (the process-wide worker pool of :mod:`repro.core.executor`; numpy
  kernels release the GIL, so shards overlap on multi-core hosts);
* **gather** — per-shard candidate heaps come back as ``(global id,
  approximate distance)`` pairs and are merged into one global top-k'
  by distance (ties broken by id);
* **refine** — runs once, globally, over the merged candidates, exactly
  as in the unsharded pipeline.  ``C_DCE`` is never partitioned.

The decomposition is privacy-neutral: every shard sees only DCPE
ciphertexts — the same view the single server already had — and the
merge works on ciphertext-space distances the server could compute
anyway.  Shard assignment (:data:`SHARD_STRATEGIES`) keys on the public
vector id, never on plaintext content.

Global ids stay the single currency of the system: vector ``i`` is row
``i`` of ``C_SAP`` and entry ``i`` of ``C_DCE``; each shard keeps a
``global_ids`` map from its local backend ids back to the global space.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backends import FilterBackend, HNSWBackend, build_backend
from repro.core.build import BuildReport, build_shard_backends
from repro.core.dce import DCEEncryptedDatabase
from repro.core.errors import CiphertextFormatError, ParameterError
from repro.core.executor import map_ordered
from repro.core.filterengine import get_filter_engine
from repro.core.index import IndexSizeReport
from repro.core.protocol import ShardTiming
from repro.hnsw.graph import HNSWIndex, HNSWParams, SearchStats

__all__ = [
    "SHARD_STRATEGIES",
    "assign_shards",
    "shard_of",
    "Shard",
    "ShardedEncryptedIndex",
    "build_sharded_index",
]

#: Registered shard-assignment strategies: ``round_robin`` (id modulo N,
#: perfectly balanced) and ``hash`` (splitmix64 of the id modulo N,
#: balanced in expectation and stable under arbitrary id growth).
SHARD_STRATEGIES = ("round_robin", "hash")

_MASK64 = (1 << 64) - 1


def _splitmix64(value: int) -> int:
    """One splitmix64 mixing round — a cheap, high-quality integer hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (value ^ (value >> 31)) & _MASK64


def shard_of(strategy: str, global_id: int, num_shards: int) -> int:
    """The shard that owns ``global_id`` under ``strategy``."""
    if strategy == "round_robin":
        return global_id % num_shards
    if strategy == "hash":
        return _splitmix64(global_id) % num_shards
    raise ParameterError(
        f"unknown shard strategy {strategy!r}; available: {', '.join(SHARD_STRATEGIES)}"
    )


def _splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_splitmix64` over a uint64 array (wrapping mul)."""
    values = (values + np.uint64(0x9E3779B97F4A7C15)).astype(np.uint64)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def assign_shards(num_vectors: int, num_shards: int, strategy: str) -> np.ndarray:
    """Shard assignment for ids ``0..num_vectors-1`` as an int64 array.

    Vectorized — the assignment sits on the build path of every sharded
    index, so it must not cost interpreter time per id.
    """
    if num_shards < 1:
        raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
    if strategy == "round_robin":
        return np.arange(num_vectors, dtype=np.int64) % num_shards
    if strategy == "hash":
        with np.errstate(over="ignore"):
            hashes = _splitmix64_array(np.arange(num_vectors, dtype=np.uint64))
        return (hashes % np.uint64(num_shards)).astype(np.int64)
    raise ParameterError(
        f"unknown shard strategy {strategy!r}; available: {', '.join(SHARD_STRATEGIES)}"
    )


# The scatter step draws from the process-wide worker pool in
# repro.core.executor — the same pool the pipelined batch executor fans
# queries out on.  map_ordered keeps the gather deterministic and runs
# the scatter inline when the caller is already a pool worker (a batch
# query scattering from inside the batch fan-out), so nesting the two
# parallel layers can never deadlock the bounded pool.


class Shard:
    """One horizontal partition: a filter backend plus its id map.

    Attributes
    ----------
    shard_id:
        Position of this shard in the index's shard list.
    backend:
        The shard's :class:`FilterBackend` over its slice of ``C_SAP``,
        or ``None`` while the shard is empty (a backend is built lazily
        on the first insert).
    global_ids:
        ``global_ids[local]`` is the global vector id of the backend's
        local id ``local``; the inverse of the index's routing tables.
    """

    __slots__ = ("shard_id", "backend", "global_ids")

    def __init__(
        self,
        shard_id: int,
        backend: FilterBackend | None,
        global_ids: np.ndarray,
    ) -> None:
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if backend is None and global_ids.size:
            raise CiphertextFormatError(
                f"shard {shard_id} maps {global_ids.size} ids but has no backend"
            )
        if backend is not None and backend.vectors.shape[0] != global_ids.size:
            raise CiphertextFormatError(
                f"shard {shard_id} backend indexes {backend.vectors.shape[0]} "
                f"vectors but maps {global_ids.size} global ids"
            )
        self.shard_id = shard_id
        self.backend = backend
        self.global_ids = global_ids

    def __len__(self) -> int:
        return int(self.global_ids.size)

    def search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None,
        stats: SearchStats,
        engine=None,
    ) -> tuple[np.ndarray, np.ndarray, ShardTiming]:
        """Local k'-ANNS, mapped to global ids, with wall-clock timing."""
        start = time.perf_counter()
        if self.backend is None:
            ids = np.empty(0, dtype=np.int64)
            dists = np.empty(0)
        else:
            local_ids, dists = get_filter_engine(engine).search(
                self.backend, sap_query, k_prime, ef_search=ef_search, stats=stats
            )
            ids = self.global_ids[local_ids]
        timing = ShardTiming(
            shard_id=self.shard_id,
            seconds=time.perf_counter() - start,
            candidates=int(ids.shape[0]),
        )
        return ids, dists, timing

    def search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None,
        stats_list: "list[SearchStats] | None",
        engine=None,
    ) -> tuple[list[tuple[np.ndarray, np.ndarray]], list[ShardTiming]]:
        """Local k'-ANNS for a micro-batch, mapped to global ids.

        One ``(ids, dists)`` pair and one :class:`ShardTiming` per
        query; the shard's wall clock is smeared evenly across the
        batch (a batched kernel answers all queries in one call).
        """
        start = time.perf_counter()
        count = int(np.asarray(sap_queries).shape[0])
        if self.backend is None:
            results = [
                (np.empty(0, dtype=np.int64), np.empty(0)) for _ in range(count)
            ]
        else:
            results = [
                (self.global_ids[ids], dists)
                for ids, dists in get_filter_engine(engine).search_batch(
                    self.backend,
                    sap_queries,
                    k_prime,
                    ef_search=ef_search,
                    stats_list=stats_list,
                )
            ]
        share = (time.perf_counter() - start) / max(1, count)
        timings = [
            ShardTiming(
                shard_id=self.shard_id, seconds=share, candidates=int(ids.shape[0])
            )
            for ids, _ in results
        ]
        return results, timings


class ShardedEncryptedIndex:
    """A sharded server-side index: ``(C_SAP, [shard backends], C_DCE)``.

    Duck-types :class:`~repro.core.index.EncryptedIndex` for everything
    the search engine, maintenance, and persistence layers need — the
    difference is that the filter phase scatter-gathers across shards
    instead of consulting one backend.  ``C_SAP`` and ``C_DCE`` remain
    global and id-aligned; only the filter structures are partitioned.

    Instances are produced by :func:`build_sharded_index` (via
    :meth:`repro.core.roles.DataOwner.build_index` with ``shards >= 2``)
    or loaded from a format-v3 file.
    """

    def __init__(
        self,
        sap_vectors: np.ndarray,
        shards: list[Shard],
        dce_database: DCEEncryptedDatabase,
        strategy: str = "round_robin",
        backend_params=None,
        rng: np.random.Generator | None = None,
        retired: "frozenset[int] | set[int] | tuple[int, ...]" = (),
        kind_hint: str | None = None,
    ) -> None:
        sap_vectors = np.asarray(sap_vectors, dtype=np.float64)
        if sap_vectors.ndim != 2:
            raise CiphertextFormatError(
                f"C_SAP must be a (n, d) array, got shape {sap_vectors.shape}"
            )
        if strategy not in SHARD_STRATEGIES:
            raise ParameterError(
                f"unknown shard strategy {strategy!r}; "
                f"available: {', '.join(SHARD_STRATEGIES)}"
            )
        if not shards:
            raise ParameterError("a sharded index needs at least one shard")
        num_vectors = sap_vectors.shape[0]
        if num_vectors != len(dce_database):
            raise CiphertextFormatError(
                f"C_SAP has {num_vectors} rows but C_DCE has "
                f"{len(dce_database)} entries"
            )
        kinds = {shard.backend.kind for shard in shards if shard.backend is not None}
        if len(kinds) > 1:
            raise CiphertextFormatError(
                f"shards mix backend kinds: {sorted(kinds)}"
            )
        retired = frozenset(int(i) for i in retired)
        # Routing tables: global id -> (owning shard, local backend id).
        # Retired ids (compacted away) legitimately map to -1; any other
        # unowned id is a corruption.
        shard_map = np.full(num_vectors, -1, dtype=np.int64)
        local_map = np.full(num_vectors, -1, dtype=np.int64)
        for shard in shards:
            shard_map[shard.global_ids] = shard.shard_id
            local_map[shard.global_ids] = np.arange(len(shard), dtype=np.int64)
        unowned = (
            set(int(i) for i in np.nonzero(shard_map < 0)[0]) if num_vectors else set()
        )
        if unowned != retired:
            raise CiphertextFormatError(
                f"{len(unowned.symmetric_difference(retired))} vector ids "
                f"disagree between shard ownership and the retired set"
            )
        self._sap = sap_vectors
        self._shards = shards
        self._dce = dce_database
        self._strategy = strategy
        self._backend_params = backend_params
        self._rng = rng if rng is not None else np.random.default_rng()
        self._shard_map = shard_map
        self._local_map = local_map
        self._tombstones: set[int] = set()
        self._retired: set[int] = set(retired)
        self._kind_hint = next(iter(kinds)) if kinds else kind_hint
        #: Optional :class:`~repro.core.build.BuildReport` attached by the
        #: construction pipeline (build_sharded_index / DataOwner) and by
        #: persistence when the on-disk file carried build metadata.
        self.build_report = None

    # -- accessors -------------------------------------------------------------

    @property
    def sap_vectors(self) -> np.ndarray:
        """The DCPE ciphertexts (``C_SAP``), global and id-aligned."""
        return self._sap

    @property
    def shards(self) -> tuple[Shard, ...]:
        """The shard list (read-only view)."""
        return tuple(self._shards)

    @property
    def num_shards(self) -> int:
        """Number of shards the corpus is partitioned into."""
        return len(self._shards)

    @property
    def strategy(self) -> str:
        """The recorded shard-assignment strategy."""
        return self._strategy

    @property
    def backend_kind(self) -> str:
        """The registry kind shared by every shard backend."""
        for shard in self._shards:
            if shard.backend is not None:
                return shard.backend.kind
        # Every shard may be empty (e.g. all rows compacted out of a
        # shard, or a fresh load of such an index) — fall back to the
        # kind recorded at construction / load time.
        if self._kind_hint is not None:
            return self._kind_hint
        raise CiphertextFormatError("index has no built shard backends")

    @property
    def dce_database(self) -> DCEEncryptedDatabase:
        """The DCE ciphertexts (``C_DCE``), global — refine is unsharded."""
        return self._dce

    @property
    def dim(self) -> int:
        """Plaintext / DCPE-ciphertext dimensionality."""
        return int(self._sap.shape[1])

    @property
    def tombstones(self) -> frozenset[int]:
        """Ids deleted by :mod:`repro.core.maintenance` but not yet
        compacted away — still occupying backend slots."""
        return frozenset(self._tombstones)

    @property
    def retired(self) -> frozenset[int]:
        """Ids a compaction removed from their shard backend for good
        (see :attr:`EncryptedIndex.retired`); never reassigned."""
        return frozenset(self._retired)

    def __len__(self) -> int:
        return (
            int(self._sap.shape[0]) - len(self._retired) - len(self._tombstones)
        )

    def shard_assignment(self) -> np.ndarray:
        """``assignment[i]`` is the shard owning global id ``i`` (``-1``
        for retired ids)."""
        return self._shard_map.copy()

    def is_live(self, vector_id: int) -> bool:
        """Whether ``vector_id`` is present and not deleted."""
        return (
            0 <= vector_id < self._sap.shape[0]
            and vector_id not in self._tombstones
            and vector_id not in self._retired
        )

    def live_mask(self) -> np.ndarray:
        """Boolean liveness per global id slot (see ``EncryptedIndex``)."""
        mask = np.ones(self._sap.shape[0], dtype=bool)
        for dead in (self._tombstones, self._retired):
            if dead:
                mask[np.fromiter(dead, dtype=np.int64)] = False
        return mask

    # -- the scatter-gather filter phase ----------------------------------------

    def filter_search(
        self,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
        engine=None,
    ) -> tuple[np.ndarray, np.ndarray, tuple[ShardTiming, ...]]:
        """Scatter the filter phase across shards and merge to global top-k'.

        Every shard runs its own k'-ANNS (so the merged pool always
        contains each shard's best candidates) and the gather step keeps
        the ``k_prime`` globally closest by approximate distance, ties
        broken by global id.  Returns ``(ids, dists, shard_timings)``
        nearest-first.  ``engine`` selects the filter engine each shard
        runs (see :mod:`repro.core.filterengine`); results are
        engine-independent.
        """
        shard_stats = [SearchStats() for _ in self._shards]
        outcomes = map_ordered(
            lambda pair: pair[0].search(sap_query, k_prime, ef_search, pair[1], engine),
            zip(self._shards, shard_stats),
        )
        if stats is not None:
            for local in shard_stats:
                stats.merge(local)
        timings = tuple(timing for _, _, timing in outcomes)
        all_ids = np.concatenate([ids for ids, _, _ in outcomes])
        all_dists = np.concatenate([dists for _, dists, _ in outcomes])
        order = np.lexsort((all_ids, all_dists))[:k_prime]
        return all_ids[order], all_dists[order], timings

    def filter_search_batch(
        self,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list=None,
        engine=None,
    ) -> list[tuple[np.ndarray, np.ndarray, tuple[ShardTiming, ...]]]:
        """Scatter a whole micro-batch across shards, merge per query.

        Each shard answers the full batch in one call (batched kernels
        amortize within the shard), then every query's per-shard pools
        are merged exactly as in :meth:`filter_search` — so the results
        are bit-identical to looping it.
        """
        queries = np.asarray(sap_queries)
        count = int(queries.shape[0])
        per_shard_stats = [
            [SearchStats() for _ in range(count)] for _ in self._shards
        ]
        outcomes = map_ordered(
            lambda pair: pair[0].search_batch(
                queries, k_prime, ef_search, pair[1], engine
            ),
            zip(self._shards, per_shard_stats),
        )
        out: list[tuple[np.ndarray, np.ndarray, tuple[ShardTiming, ...]]] = []
        for row in range(count):
            if stats_list is not None and stats_list[row] is not None:
                for shard_stats in per_shard_stats:
                    stats_list[row].merge(shard_stats[row])
            all_ids = np.concatenate([results[row][0] for results, _ in outcomes])
            all_dists = np.concatenate([results[row][1] for results, _ in outcomes])
            order = np.lexsort((all_ids, all_dists))[:k_prime]
            timings = tuple(shard_timings[row] for _, shard_timings in outcomes)
            out.append((all_ids[order], all_dists[order], timings))
        return out

    # -- maintenance routing (used by repro.core.maintenance) --------------------

    def _lazy_build_params(self):
        """Construction parameters for a backend built on first insert.

        Falls back to a non-empty sibling shard's substrate parameters
        when none were configured (e.g. after a v3 load, which persists
        backend state but not the original construction params), so the
        lazily built shard matches its siblings instead of silently
        using library defaults.
        """
        if self._backend_params is not None:
            return self._backend_params
        for shard in self._shards:
            if shard.backend is not None:
                return getattr(shard.backend.substrate, "params", None)
        return None

    def backend_insert(self, sap_row: np.ndarray, level: int | None = None) -> int:
        """Insert one DCPE row into the shard its new global id maps to.

        ``level`` forces the HNSW level draw during journal replay
        (:mod:`repro.core.journal`); other backend kinds ignore it.
        """
        global_id = int(self._sap.shape[0])
        target = shard_of(self._strategy, global_id, len(self._shards))
        shard = self._shards[target]
        row = np.asarray(sap_row, dtype=np.float64)
        kind = self.backend_kind
        if shard.backend is None:
            # First vector ever routed here: build the backend over it.
            # The HNSW path goes empty-graph-then-insert so a forced
            # replay level applies to the founding node too.
            if kind == "hnsw":
                params = self._lazy_build_params()
                graph = HNSWIndex(
                    row.shape[0],
                    params if params is not None else HNSWParams(),
                    rng=self._rng,
                )
                graph.insert(row, level=level)
                shard.backend = HNSWBackend(graph)
            else:
                shard.backend = build_backend(
                    kind,
                    row[np.newaxis],
                    rng=self._rng,
                    params=self._lazy_build_params(),
                )
            local_id = 0
        elif kind == "hnsw":
            local_id = shard.backend.insert(row, level=level)
        else:
            local_id = shard.backend.insert(row)
        shard.global_ids = np.append(shard.global_ids, global_id)
        self._shard_map = np.append(self._shard_map, target)
        self._local_map = np.append(self._local_map, local_id)
        return global_id

    def backend_mark_deleted(self, vector_id: int) -> None:
        """Route a deletion to the owning shard's backend (local id)."""
        shard = self._shards[int(self._shard_map[vector_id])]
        shard.backend.mark_deleted(int(self._local_map[vector_id]))

    def replay_level(self, vector_id: int) -> int:
        """The HNSW level assigned to ``vector_id``, or ``-1``
        (see :meth:`EncryptedIndex.replay_level`)."""
        if self.backend_kind != "hnsw":
            return -1
        shard = self._shards[int(self._shard_map[vector_id])]
        return int(shard.backend.node_level(int(self._local_map[vector_id])))

    # -- compaction (used by repro.core.maintenance) -----------------------------

    def compact_shard(
        self, shard_id: int, rng: np.random.Generator | None = None
    ) -> int:
        """Rebuild one shard's backend without its tombstoned rows.

        Returns the number of tombstones dropped from this shard.  The
        shard object is replaced wholesale — a concurrent filter search
        holding the old :class:`Shard` keeps a consistent
        (backend, global_ids) pair; the next search picks up the new
        one.  Tombstones move to :attr:`retired` before the swap so a
        deleted id can never be observed as live mid-compaction.
        """
        shard = self._shards[shard_id]
        tomb = {
            int(g)
            for g in self._tombstones
            if int(self._shard_map[int(g)]) == shard.shard_id
        }
        if shard.backend is None or not tomb:
            return 0
        current = shard.global_ids
        keep = current[~np.isin(current, np.fromiter(tomb, dtype=np.int64))]
        if keep.size:
            new_backend = shard.backend.rebuild(
                self._sap[keep], rng=rng if rng is not None else self._rng
            )
        else:
            new_backend = None
        new_shard = Shard(shard.shard_id, new_backend, keep)
        self._retired |= tomb
        self._shards[shard_id] = new_shard
        if tomb:
            dead = np.fromiter(tomb, dtype=np.int64)
            self._shard_map[dead] = -1
            self._local_map[dead] = -1
        if keep.size:
            self._local_map[keep] = np.arange(keep.size, dtype=np.int64)
        self._tombstones -= tomb
        return len(tomb)

    # -- mutation (used by repro.core.maintenance only) --------------------------

    def _append(self, sap_row: np.ndarray, dce_db: DCEEncryptedDatabase) -> None:
        self._sap = np.vstack([self._sap, sap_row[np.newaxis]])
        self._dce = dce_db

    def _mark_deleted(self, vector_id: int) -> None:
        self._tombstones.add(vector_id)

    # -- reporting ----------------------------------------------------------------

    def size_report(self) -> IndexSizeReport:
        """Storage accounting; graph edges sum over every shard."""
        return IndexSizeReport(
            num_vectors=self._sap.shape[0],
            dim=self.dim,
            sap_floats=int(self._sap.size),
            dce_floats=int(self._dce.components.size),
            graph_edges=sum(
                shard.backend.edge_count()
                for shard in self._shards
                if shard.backend is not None
            ),
        )


def build_sharded_index(
    sap_vectors: np.ndarray,
    dce_database: DCEEncryptedDatabase,
    backend: str = "hnsw",
    num_shards: int = 2,
    strategy: str = "round_robin",
    rng: np.random.Generator | None = None,
    params=None,
    build_workers: int | None = None,
    build_mode: str = "sequential",
) -> ShardedEncryptedIndex:
    """Partition encrypted data into shards and build a backend per shard.

    Shard backends build **in parallel** over the process-wide worker
    pool (:mod:`repro.core.build`), capped at ``build_workers``.

    Parameters
    ----------
    sap_vectors:
        The global ``(n, d)`` DCPE ciphertext matrix.
    dce_database:
        The global DCE ciphertexts (stays unsharded).
    backend:
        Filter-backend kind built inside every shard.
    num_shards:
        Number of partitions; must be >= 1.
    strategy:
        Shard-assignment strategy (one of :data:`SHARD_STRATEGIES`).
    rng:
        Randomness for backend construction.  Every shard builds from
        its own child generator derived via
        ``np.random.SeedSequence.spawn`` — a shard's backend is a pure
        function of its ciphertext slice and its child seed, so the
        built index is **bit-identical at any** ``build_workers``
        **setting** (parallel against sequential, for every backend
        kind; brute-force shards are additionally seed-independent).
        Two builds from the same generator still differ, as the spawn
        counter advances between calls.
    params:
        Backend construction parameters, shared by every shard.
    build_workers:
        Concurrency cap for the shard-build fan-out (``None`` = the
        full shared pool, ``1`` = build shards sequentially).
    build_mode:
        HNSW construction path (one of
        :data:`repro.core.build.BUILD_MODES`); non-HNSW backends have a
        single build path and ignore it.

    The returned index carries a
    :class:`~repro.core.build.BuildReport` (``build_report``) with the
    construction wall clock and per-shard timings;
    :meth:`repro.core.roles.DataOwner.build_index` fills in the
    encryption half of the split.
    """
    sap_vectors = np.asarray(sap_vectors, dtype=np.float64)
    assignment = assign_shards(sap_vectors.shape[0], num_shards, strategy)
    owned = [
        np.nonzero(assignment == shard_id)[0].astype(np.int64)
        for shard_id in range(num_shards)
    ]
    start = time.perf_counter()
    backends, timings = build_shard_backends(
        backend,
        sap_vectors,
        owned,
        rng=rng,
        params=params,
        build_workers=build_workers,
        build_mode=build_mode,
    )
    build_seconds = time.perf_counter() - start
    shards = [
        Shard(shard_id, shard_backend, ids)
        for shard_id, (shard_backend, ids) in enumerate(zip(backends, owned))
    ]
    index = ShardedEncryptedIndex(
        sap_vectors,
        shards,
        dce_database,
        strategy=strategy,
        backend_params=params,
        rng=rng,
    )
    index.build_report = BuildReport(
        backend=backend,
        num_vectors=int(sap_vectors.shape[0]),
        dim=int(sap_vectors.shape[1]) if sap_vectors.ndim == 2 else 0,
        shards=num_shards,
        build_mode=build_mode,
        build_workers=build_workers,
        build_seconds=build_seconds,
        shard_timings=timings,
    )
    return index
