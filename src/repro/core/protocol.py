"""The request/response message protocol between query user and server.

The paper's system model (Figure 1, Algorithm 2) is a message exchange:
the user sends ``(C_SAP(q), T_q, k)``, the server answers with k ids.
This module gives that protocol explicit, batch-first types:

* :class:`SearchRequest` — the plaintext search parameters a query
  carries (``k``, ``ratio_k``, ``ef_search``, ``mode``).  Frozen, so a
  request resolved once can be shared across a whole batch.
* :class:`EncryptedQuery` / :class:`EncryptedQueryBatch` — the encrypted
  query message(s).  The batch form stores the DCPE ciphertexts and DCE
  trapdoors as two matrices so user-side encryption and server-side
  parameter resolution amortize across queries.
* :class:`SearchResult` / :class:`SearchResultBatch` — the answer(s),
  with per-query and aggregate instrumentation plus byte accounting:
  the per-stage wall-clock split (``filter_seconds`` /
  ``mask_seconds`` / ``refine_seconds``) and the refine-engine fields
  (``refine_engine`` name, ``refine_kernel_seconds``).
  ``SearchReport`` remains as a deprecated alias of
  :class:`SearchResult` for the seed API; accessing it emits a
  :class:`DeprecationWarning` (module-level ``__getattr__``, matching
  the ``EncryptedIndex.graph`` precedent).
* :class:`ShardTiming` — per-shard instrumentation attached to results
  answered by a :class:`~repro.core.sharding.ShardedEncryptedIndex`:
  each shard's filter wall clock, candidate count, and gather payload
  (12 bytes per candidate: an 8-byte id plus a 4-byte float32 distance).

The wire layout of every message — field order, dtypes, and the byte
accounting rules implemented by ``upload_bytes`` / ``download_bytes`` —
is specified normatively in ``docs/FORMATS.md``; this module is its
executable counterpart.

``ef_search`` clamping lives here, in :func:`resolve_ef_search`, so the
full and filter-only paths cannot drift apart again.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

from repro.core.dce import DCETrapdoor
from repro.core.errors import KeyMismatchError, ParameterError
from repro.hnsw.graph import SearchStats

__all__ = [
    "MODES",
    "SearchRequest",
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchResult",
    "SearchResultBatch",
    "SearchReport",  # noqa: F822  (module __getattr__, deprecated alias)
    "ShardTiming",
    "resolve_ef_search",
]

#: Valid search modes: the full filter-and-refine pipeline (Algorithm 2)
#: or the filter phase alone (the paper's HNSW(filter) reference method).
MODES = ("full", "filter_only")


def resolve_ef_search(ef_search: int | None, k_prime: int) -> int | None:
    """The single ``ef_search`` clamping authority.

    A beam narrower than the candidate count ``k'`` cannot produce ``k'``
    candidates, so an explicit ``ef_search`` below ``k'`` is raised to
    ``k'``.  ``None`` keeps the backend's own default.  Both the full and
    filter-only paths must call this — historically only one of them
    clamped, which made the two modes disagree for small ``ef_search``.
    """
    if ef_search is not None and ef_search < k_prime:
        return k_prime
    return ef_search


@dataclass(frozen=True)
class SearchRequest:
    """Plaintext search parameters carried inside an encrypted query.

    Attributes
    ----------
    k:
        Number of neighbors requested.
    ratio_k:
        ``k' = ratio_k * k`` filter-phase multiplier; ``None`` defers to
        the server's default.
    ef_search:
        Filter-phase beam width; ``None`` defers to the backend default.
    mode:
        ``"full"`` (Algorithm 2) or ``"filter_only"`` (filter phase only).
    """

    k: int
    ratio_k: int | None = None
    ef_search: int | None = None
    mode: str = "full"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ParameterError(f"k must be positive, got {self.k}")
        if self.ratio_k is not None and self.ratio_k < 1:
            raise ParameterError(f"ratio_k must be >= 1, got {self.ratio_k}")
        if self.ef_search is not None and self.ef_search < 1:
            raise ParameterError(f"ef_search must be >= 1, got {self.ef_search}")
        if self.mode not in MODES:
            raise ParameterError(f"mode must be one of {MODES}, got {self.mode!r}")

    def resolve(
        self,
        default_ratio_k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
        mode: str | None = None,
    ) -> "SearchRequest":
        """Fill server-side defaults / per-call overrides into a concrete request.

        Precedence per field: explicit override argument, then the value
        carried by the request, then the server default.  The returned
        request always has a concrete ``ratio_k``.
        """
        resolved_ratio = ratio_k if ratio_k is not None else self.ratio_k
        if resolved_ratio is None:
            resolved_ratio = default_ratio_k
        if resolved_ratio < 1:
            raise ParameterError(f"ratio_k must be >= 1, got {resolved_ratio}")
        return replace(
            self,
            ratio_k=resolved_ratio,
            ef_search=ef_search if ef_search is not None else self.ef_search,
            mode=mode if mode is not None else self.mode,
        )

    @property
    def k_prime(self) -> int:
        """``k' = ratio_k * k``; requires a resolved ``ratio_k``."""
        if self.ratio_k is None:
            raise ParameterError("k_prime is undefined until ratio_k is resolved")
        return self.ratio_k * self.k


@dataclass(frozen=True, init=False)
class EncryptedQuery:
    """One encrypted query message: ``(C_SAP(q), T_q, request)`` (Figure 1).

    Attributes
    ----------
    sap_vector:
        The DCPE ciphertext of the query (filter phase).
    trapdoor:
        The DCE trapdoor of the query (refine phase).
    request:
        The plaintext search parameters.
    """

    sap_vector: np.ndarray
    trapdoor: DCETrapdoor
    request: SearchRequest

    def __init__(
        self,
        sap_vector: np.ndarray,
        trapdoor: DCETrapdoor,
        request: SearchRequest | None = None,
        k: int | None = None,
    ) -> None:
        # Seed callers passed a bare ``k``; fold it into a SearchRequest.
        if request is None:
            if k is None:
                raise ParameterError("EncryptedQuery needs a request (or legacy k)")
            request = SearchRequest(k=k)
        elif k is not None:
            raise ParameterError("pass either a request or a legacy k, not both")
        object.__setattr__(self, "sap_vector", sap_vector)
        object.__setattr__(self, "trapdoor", trapdoor)
        object.__setattr__(self, "request", request)

    @property
    def k(self) -> int:
        """Number of neighbors requested (from the carried request)."""
        return self.request.k

    def upload_bytes(self) -> int:
        """Size of the query message.

        ``C_SAP(q)`` travels as float32 (d * 4 bytes), the trapdoor as
        float64 ((2d+16) * 8 bytes) and the request as a 4-byte integer
        (the optional knobs ride in the same word).
        """
        d = int(self.sap_vector.shape[0])
        return 4 * d + 8 * self.trapdoor.ciphertext_dim + 4


@dataclass(frozen=True, init=False)
class EncryptedQueryBatch:
    """A batch of encrypted queries sharing one :class:`SearchRequest`.

    The DCPE ciphertexts and DCE trapdoors are stored as two matrices —
    ``(n, d)`` and ``(n, 2d+16)`` — which is what lets the user encrypt a
    whole workload with two BLAS matrix products and the server amortize
    per-batch setup.

    Attributes
    ----------
    sap_vectors:
        DCPE ciphertexts, one row per query.
    trapdoor_vectors:
        DCE trapdoor vectors, one row per query.
    key_id:
        The DCE key tag shared by every trapdoor in the batch.
    request:
        The search parameters shared by every query in the batch.
    """

    sap_vectors: np.ndarray
    trapdoor_vectors: np.ndarray
    key_id: int
    request: SearchRequest

    def __init__(
        self,
        sap_vectors: np.ndarray,
        trapdoor_vectors: np.ndarray,
        key_id: int,
        request: SearchRequest,
    ) -> None:
        sap_vectors = np.asarray(sap_vectors, dtype=np.float64)
        trapdoor_vectors = np.asarray(trapdoor_vectors, dtype=np.float64)
        if sap_vectors.ndim != 2:
            raise ParameterError(
                f"sap_vectors must be a (n, d) matrix, got shape {sap_vectors.shape}"
            )
        if trapdoor_vectors.ndim != 2:
            raise ParameterError(
                "trapdoor_vectors must be a (n, 2d+16) matrix, got shape "
                f"{trapdoor_vectors.shape}"
            )
        if sap_vectors.shape[0] != trapdoor_vectors.shape[0]:
            raise ParameterError(
                f"{sap_vectors.shape[0]} SAP rows but "
                f"{trapdoor_vectors.shape[0]} trapdoor rows"
            )
        object.__setattr__(self, "sap_vectors", sap_vectors)
        object.__setattr__(self, "trapdoor_vectors", trapdoor_vectors)
        object.__setattr__(self, "key_id", int(key_id))
        object.__setattr__(self, "request", request)

    @classmethod
    def from_queries(cls, queries: Sequence[EncryptedQuery]) -> "EncryptedQueryBatch":
        """Stack individually encrypted queries into a batch.

        All queries must share the same request and DCE key.
        """
        if not queries:
            raise ParameterError("cannot build a batch from zero queries")
        request = queries[0].request
        key_id = queries[0].trapdoor.key_id
        for query in queries[1:]:
            if query.request != request:
                raise ParameterError("all queries in a batch must share one request")
            if query.trapdoor.key_id != key_id:
                raise KeyMismatchError("queries in a batch come from different keys")
        return cls(
            np.stack([q.sap_vector for q in queries]),
            np.stack([q.trapdoor.vector for q in queries]),
            key_id,
            request,
        )

    def __len__(self) -> int:
        return int(self.sap_vectors.shape[0])

    def __getitem__(self, index: int) -> EncryptedQuery:
        return EncryptedQuery(
            self.sap_vectors[index],
            DCETrapdoor(self.trapdoor_vectors[index], self.key_id),
            request=self.request,
        )

    def __iter__(self) -> Iterator[EncryptedQuery]:
        for index in range(len(self)):
            yield self[index]

    @property
    def dim(self) -> int:
        """DCPE-ciphertext (= plaintext) dimensionality."""
        return int(self.sap_vectors.shape[1])

    def upload_bytes(self) -> int:
        """Total size of the batched query message (per-query size * n)."""
        if len(self) == 0:
            return 0
        return len(self) * self[0].upload_bytes()


@dataclass(frozen=True)
class ShardTiming:
    """Per-shard filter instrumentation of one scatter-gather answer.

    Attributes
    ----------
    shard_id:
        Position of the shard in the index's shard list.
    seconds:
        Wall-clock of the shard's local k'-ANNS (including the local ->
        global id mapping).
    candidates:
        Candidates the shard contributed to the gather step.
    """

    shard_id: int
    seconds: float
    candidates: int

    @property
    def gather_bytes(self) -> int:
        """Bytes the shard ships to the merger: ``(id8, dist4)`` per candidate."""
        return 12 * self.candidates


@dataclass
class SearchResult:
    """Instrumented answer to one query (formerly ``SearchReport``).

    Attributes
    ----------
    ids:
        The returned neighbor ids (server-side ids; the user maps them
        back to records).
    filter_stats:
        Graph-search instrumentation (distance computations, hops).
    refine_comparisons:
        DCE ``DistanceComp`` decisions in the refine phase — real oracle
        calls for the ``heap`` engine, the equivalent-oracle-call count
        for the ``vectorized`` engine.
    k_prime:
        The number of filter-phase candidates refined.
    filter_seconds / mask_seconds / refine_seconds:
        Wall-clock split of the pipeline stages (filter k'-ANNS,
        liveness masking, refine); the three sum to ``total_seconds``.
    refine_engine:
        Name of the :class:`~repro.core.refine.RefineEngine` that ran
        the refine stage (``None`` for filter-only / legacy results).
    refine_kernel_seconds:
        Wall clock inside the refine engine's batched numeric kernels
        (candidate gather + sign matrix); 0.0 for the scalar ``heap``
        engine.  Always <= ``refine_seconds``.
    filter_engine:
        Name of the :class:`~repro.core.filterengine.FilterEngine` that
        ran the filter stage (``None`` on legacy paths).
    filter_kernel_seconds:
        Wall clock inside the filter engine's flat/batched kernels
        (CSR traversal, batched GEMM scans); 0.0 for the ``heap``
        engine.  Mirrors ``SearchStats.kernel_seconds``.
    request:
        The resolved request this result answers (None on legacy paths).
    shard_timings:
        Per-shard filter timings when the index is sharded, else None.
    """

    ids: np.ndarray
    filter_stats: SearchStats = field(default_factory=SearchStats)
    refine_comparisons: int = 0
    k_prime: int = 0
    filter_seconds: float = 0.0
    mask_seconds: float = 0.0
    refine_seconds: float = 0.0
    refine_engine: str | None = None
    refine_kernel_seconds: float = 0.0
    filter_engine: str | None = None
    filter_kernel_seconds: float = 0.0
    request: SearchRequest | None = None
    shard_timings: tuple[ShardTiming, ...] | None = None

    @property
    def total_seconds(self) -> float:
        """Wall-clock total across the filter, mask and refine stages."""
        return self.filter_seconds + self.mask_seconds + self.refine_seconds

    def download_bytes(self) -> int:
        """Result message size: 4 bytes per returned id (Section V-C)."""
        return 4 * int(self.ids.shape[0])

    def gather_bytes(self) -> int:
        """Shard-to-merger traffic for this answer (0 when unsharded)."""
        if not self.shard_timings:
            return 0
        return sum(timing.gather_bytes for timing in self.shard_timings)


def __getattr__(name: str):
    """Deprecated module attributes (warn on access, once per call site).

    ``SearchReport`` is the seed era's name for :class:`SearchResult`;
    the alias still resolves — including via ``from repro.core.protocol
    import SearchReport`` — but every access emits a
    :class:`DeprecationWarning`, exactly like the
    ``EncryptedIndex.graph`` accessor it postdates.
    """
    if name == "SearchReport":
        warnings.warn(
            "SearchReport is deprecated; use SearchResult instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return SearchResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class SearchResultBatch:
    """The server's answer to an :class:`EncryptedQueryBatch`.

    Wraps the per-query :class:`SearchResult` objects and aggregates their
    instrumentation, so batch callers get both the ids matrix and the
    totals without re-deriving them.

    Two timing views coexist: the per-query stage timings (and their
    sums below) are **thread-local** wall clocks — with the pipelined
    executor they include time a worker spends descheduled behind
    sibling queries, so their sum can exceed real elapsed time on a
    busy pool.  ``wall_seconds`` is the batch's actual start-to-finish
    wall clock as measured by the executor (``None`` on hand-built
    batches), and it is what :attr:`qps` prefers.
    """

    results: list[SearchResult]
    request: SearchRequest | None = None
    wall_seconds: float | None = None

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SearchResult:
        return self.results[index]

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def ids_matrix(self, fill: int = -1) -> np.ndarray:
        """The ``(n, k)`` id matrix; short rows are padded with ``fill``.

        A row can be short when tombstoned candidates reduced the live
        result set below ``k``.
        """
        if not self.results:
            return np.empty((0, 0), dtype=np.int64)
        width = max(int(r.ids.shape[0]) for r in self.results)
        matrix = np.full((len(self.results), width), fill, dtype=np.int64)
        for row, result in enumerate(self.results):
            matrix[row, : result.ids.shape[0]] = result.ids
        return matrix

    @property
    def ids(self) -> np.ndarray:
        """Alias of :meth:`ids_matrix` with the default fill."""
        return self.ids_matrix()

    @property
    def filter_seconds(self) -> float:
        """Total filter-phase wall clock across the batch."""
        return sum(r.filter_seconds for r in self.results)

    @property
    def mask_seconds(self) -> float:
        """Total liveness-masking wall clock across the batch."""
        return sum(r.mask_seconds for r in self.results)

    @property
    def refine_seconds(self) -> float:
        """Total refine-phase wall clock across the batch."""
        return sum(r.refine_seconds for r in self.results)

    @property
    def refine_kernel_seconds(self) -> float:
        """Total refine-engine kernel wall clock across the batch."""
        return sum(r.refine_kernel_seconds for r in self.results)

    @property
    def refine_engines(self) -> tuple[str, ...]:
        """Distinct refine-engine names across the batch (usually one)."""
        return tuple(
            sorted({r.refine_engine for r in self.results if r.refine_engine})
        )

    @property
    def filter_kernel_seconds(self) -> float:
        """Total filter-engine kernel wall clock across the batch."""
        return sum(r.filter_kernel_seconds for r in self.results)

    @property
    def filter_engines(self) -> tuple[str, ...]:
        """Distinct filter-engine names across the batch (usually one)."""
        return tuple(
            sorted({r.filter_engine for r in self.results if r.filter_engine})
        )

    @property
    def total_seconds(self) -> float:
        """Total wall clock across the batch."""
        return sum(r.total_seconds for r in self.results)

    @property
    def mean_seconds(self) -> float:
        """Mean per-query wall clock."""
        if not self.results:
            return 0.0
        return self.total_seconds / len(self.results)

    @property
    def qps(self) -> float:
        """Observed batch throughput.

        Prefers the executor-measured ``wall_seconds`` (queries may have
        run concurrently); falls back to the single-thread throughput
        implied by the mean per-query latency when no wall clock was
        recorded.
        """
        if self.wall_seconds is not None:
            if self.wall_seconds <= 0:
                return float("inf")
            return len(self.results) / self.wall_seconds
        mean = self.mean_seconds
        if mean <= 0:
            return float("inf")
        return 1.0 / mean

    @property
    def refine_comparisons(self) -> int:
        """Total DCE comparisons across the batch."""
        return sum(r.refine_comparisons for r in self.results)

    @property
    def filter_stats(self) -> SearchStats:
        """Merged graph-search instrumentation across the batch."""
        merged = SearchStats()
        for result in self.results:
            merged.merge(result.filter_stats)
        return merged

    def download_bytes(self) -> int:
        """Total result message size across the batch."""
        return sum(r.download_bytes() for r in self.results)

    def gather_bytes(self) -> int:
        """Total shard-to-merger traffic across the batch (0 if unsharded)."""
        return sum(r.gather_bytes() for r in self.results)

    def shard_seconds(self) -> dict[int, float]:
        """Total filter wall clock per shard id across the batch.

        Empty when the answering index was unsharded.
        """
        totals: dict[int, float] = {}
        for result in self.results:
            for timing in result.shard_timings or ():
                totals[timing.shard_id] = (
                    totals.get(timing.shard_id, 0.0) + timing.seconds
                )
        return totals
