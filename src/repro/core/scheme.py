"""Single-object facade over the full PP-ANNS scheme.

:class:`PPANNS` wires a :class:`DataOwner`, a :class:`QueryUser` and a
:class:`CloudServer` together in one process so experiments and examples
can exercise the complete pipeline (Figure 1) in a few lines::

    scheme = PPANNS(dim=128, beta=2.0, rng=rng)
    scheme.fit(database)
    ids = scheme.query(q, k=10, ratio_k=8)
    batch = scheme.query_batch(queries, k=10)     # batch-first path

The facade preserves the trust boundaries in spirit — the server object
only ever receives ciphertexts — while keeping everything addressable for
instrumentation.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.core.errors import ParameterError
from repro.core.executor import resolve_executor
from repro.core.maintenance import compact_index, delete_vector, insert_vector
from repro.core.protocol import SearchResult, SearchResultBatch
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.hnsw.graph import HNSWParams

__all__ = ["PPANNS"]


class PPANNS:
    """The complete privacy-preserving k-ANNS scheme, end to end.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    beta:
        DCPE perturbation budget.  The paper tunes this per dataset so the
        filter-only recall ceiling is about 0.5; see
        :func:`repro.core.params.tune_beta`.
    scale:
        DCPE scaling factor (paper default 1024).
    hnsw_params:
        Graph construction parameters (for the default ``hnsw`` backend).
    backend:
        Filter-backend kind (``hnsw``, ``nsg``, ``ivf``, ``bruteforce``).
    backend_params:
        Construction parameters for non-HNSW backends.
    shards:
        Horizontal partition count for the filter structures (``None``
        or ``1`` keeps the monolithic index; ``>= 2`` scatter-gathers
        the filter phase — see :mod:`repro.core.sharding`).
    shard_strategy:
        Shard-assignment strategy (``round_robin`` or ``hash``).
    build_workers:
        Concurrency cap for the parallel shard-build fan-out (``None``
        = the full shared pool; bit-identical output at any setting —
        see :mod:`repro.core.build`).
    build_mode:
        HNSW construction path (``"sequential"`` — the seed's insert
        loop — or ``"bulk"``, the vectorized path, bit-identical from
        the same seed).
    default_ratio_k:
        Default ``k'/k`` for queries.
    refine_engine:
        Refine-stage engine the server runs (``"heap"`` or
        ``"vectorized"``; ``None`` selects the default — see
        :mod:`repro.core.refine`).
    filter_engine:
        Filter-stage engine the server runs (``"heap"`` — the seed's
        per-query beam search — or ``"vectorized"`` — the flat CSR /
        batched-kernel path, bit-identical; ``None`` selects the
        default — see :mod:`repro.core.filterengine`).
    executor:
        Server-side batch execution mode: ``"threads"`` (default) or
        ``"processes"`` — the shared-memory data plane
        (:mod:`repro.core.plane`); answers are bit-identical either
        way.  The scheme is a context manager; ``close()`` (or the
        ``with`` exit) releases the plane's worker processes and
        shared-memory arena.
    workers:
        Process-plane worker count (``None`` = the executor pool
        width).
    rng:
        Randomness for every component.
    """

    def __init__(
        self,
        dim: int,
        beta: float,
        scale: float = 1024.0,
        hnsw_params: HNSWParams | None = None,
        backend: str = "hnsw",
        backend_params=None,
        shards: int | None = None,
        shard_strategy: str = "round_robin",
        build_workers: int | None = None,
        build_mode: str = "sequential",
        default_ratio_k: int = 8,
        refine_engine: str | None = None,
        filter_engine: str | None = None,
        executor: str | None = None,
        workers: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng if rng is not None else np.random.default_rng()
        self._owner = DataOwner(
            dim,
            beta=beta,
            scale=scale,
            hnsw_params=hnsw_params,
            backend=backend,
            backend_params=backend_params,
            shards=shards,
            shard_strategy=shard_strategy,
            build_workers=build_workers,
            build_mode=build_mode,
            rng=rng,
        )
        self._user = QueryUser(self._owner.authorize_user(), rng=rng)
        self._server: CloudServer | None = None
        self._default_ratio_k = default_ratio_k
        self._refine_engine = refine_engine
        self._filter_engine = filter_engine
        self._executor = resolve_executor(executor)
        self._workers = workers
        # Frontends created through serve(); held weakly so an
        # abandoned frontend doesn't outlive its callers, and flushed
        # on maintenance (cached results go stale on mutation).
        self._frontends: "weakref.WeakSet" = weakref.WeakSet()
        # Optional incremental-persistence journal (enable_journal);
        # mutations through insert()/delete() append delta segments.
        self._journal = None

    # -- lifecycle ---------------------------------------------------------------

    @property
    def owner(self) -> DataOwner:
        """The data owner (holds all secret keys)."""
        return self._owner

    @property
    def user(self) -> QueryUser:
        """The authorized query user."""
        return self._user

    @property
    def server(self) -> CloudServer:
        """The cloud server; available after :meth:`fit`."""
        if self._server is None:
            raise ParameterError("call fit() before using the server")
        return self._server

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._server is not None

    def fit(self, vectors: np.ndarray) -> "PPANNS":
        """Encrypt ``vectors`` and outsource the index to the server.

        Re-fitting replaces the server's index; a journal enabled for
        the previous index is detached (it describes state this index
        never had) — call :meth:`enable_journal` again to track the new
        one — and any process data plane attached to the old server is
        released.
        """
        if self._server is not None:
            self._server.close()
        index = self._owner.build_index(vectors)
        self._server = CloudServer(
            index,
            default_ratio_k=self._default_ratio_k,
            refine_engine=self._refine_engine,
            filter_engine=self._filter_engine,
            executor=self._executor,
            workers=self._workers,
        )
        self._journal = None
        return self

    def close(self) -> None:
        """Release server-held resources — the process data plane's
        worker fleet and shared-memory arena (idempotent; a no-op for
        the thread executor and before :meth:`fit`)."""
        if self._server is not None:
            self._server.close()

    def __enter__(self) -> "PPANNS":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def enable_journal(self, path: str | os.PathLike) -> "PPANNS":
        """Persist the fitted index at ``path`` as a journaled v4 store.

        Writes the base snapshot now; every subsequent :meth:`insert` /
        :meth:`delete` appends a delta segment instead of rewriting the
        file, and :meth:`compact` folds the deltas into a fresh base.
        ``repro.core.persistence.load_index(path)`` restores the exact
        live state.
        """
        from repro.core.journal import IndexJournal

        self._journal = IndexJournal.create(path, self.server.index)
        return self

    @property
    def journal(self):
        """The active :class:`~repro.core.journal.IndexJournal`, or None."""
        return self._journal

    # -- querying -------------------------------------------------------------------

    def query(
        self,
        vector: np.ndarray,
        k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
    ) -> np.ndarray:
        """Full round trip: encrypt, search, return neighbor ids."""
        return self.query_with_report(vector, k, ratio_k, ef_search).ids

    def query_with_report(
        self,
        vector: np.ndarray,
        k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
    ) -> SearchResult:
        """Like :meth:`query` but returns the instrumented result."""
        encrypted = self._user.encrypt_query(vector, k)
        return self.server.answer(encrypted, ratio_k=ratio_k, ef_search=ef_search)

    def query_batch(
        self,
        vectors: np.ndarray,
        k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
        mode: str = "full",
    ) -> SearchResultBatch:
        """Batch round trip: vectorized encryption, amortized answering.

        This is the throughput path — the user encrypts the whole
        workload with matrix products and the server amortizes per-batch
        setup (see :func:`repro.core.search.execute_batch`).
        """
        encrypted = self._user.encrypt_queries(
            vectors, k, ratio_k=ratio_k, ef_search=ef_search, mode=mode
        )
        return self.server.answer(encrypted)

    def serve(
        self,
        max_batch_size: int = 32,
        batch_window_seconds: float = 0.002,
        max_queue_depth: int = 1024,
        cache_size: int = 0,
        refine_engine: str | None = None,
        filter_engine: str | None = None,
    ):
        """An online serving frontend over the fitted server.

        Returns a :class:`~repro.serve.frontend.ServingFrontend`:
        submit encrypted queries one at a time and the server forms the
        micro-batches that amortize per-batch setup (size cap /
        latency window, bounded queue with
        :class:`~repro.serve.frontend.QueueFullError` backpressure,
        optional LRU result cache, live
        :class:`~repro.serve.metrics.ServerMetrics`)::

            with scheme.serve(batch_window_seconds=0.002) as frontend:
                future = frontend.submit(scheme.user.encrypt_query(q, k=10))
                ids = future.result().ids

        Frontends created here are tracked (weakly) by the facade:
        :meth:`insert` / :meth:`delete` flush their result caches
        automatically, since a cached answer can go stale on any index
        mutation.
        """
        frontend = self.server.serving_frontend(
            max_batch_size=max_batch_size,
            batch_window_seconds=batch_window_seconds,
            max_queue_depth=max_queue_depth,
            cache_size=cache_size,
            refine_engine=refine_engine,
            filter_engine=filter_engine,
        )
        self._frontends.add(frontend)
        return frontend

    def query_filter_only(
        self,
        vector: np.ndarray,
        k: int,
        ef_search: int | None = None,
        k_prime: int | None = None,
    ) -> SearchResult:
        """Filter-phase-only query (Figure 4 / HNSW(filter) reference)."""
        encrypted = self._user.encrypt_query(vector, k)
        return self.server.answer_filter_only(
            encrypted, ef_search=ef_search, k_prime=k_prime
        )

    # -- maintenance -------------------------------------------------------------------

    def _flush_serving_caches(self) -> None:
        """Flush tracked frontends serving the *current* server.

        Only frontends attached to the mutated index go stale; a
        frontend created before a re-``fit`` still answers over the old
        server object and its cache is untouched by mutations here.
        """
        for frontend in list(self._frontends):
            if frontend.server is self._server:
                frontend.cache_clear()
        # The process data plane serves an immutable snapshot; any
        # mutation makes it stale, so release it eagerly (the next
        # batch rebuilds from the mutated index).
        self._server.invalidate_data_plane()

    def insert(self, vector: np.ndarray) -> int:
        """Insert one vector (owner encrypts, server links); returns its id.

        Flushes the result caches of frontends serving the mutated
        index — an insert can change any cached top-k — and appends a
        delta segment when a journal is enabled.
        """
        inserted = insert_vector(
            self._owner, self.server.index, vector, journal=self._journal
        )
        self._flush_serving_caches()
        return inserted

    def delete(self, vector_id: int) -> None:
        """Delete a vector server-side (Section V-D).

        Flushes the result caches of frontends serving the mutated
        index — cached answers may carry the tombstoned id — and
        appends a delta segment when a journal is enabled.
        """
        delete_vector(self.server.index, vector_id, journal=self._journal)
        self._flush_serving_caches()

    def compact(self):
        """Drop every tombstone from the filter structures (online).

        Rebuilds the backend (per shard when sharded) behind an atomic
        swap while tracked frontends keep answering, then flushes their
        result caches — the generation bump guarantees in-flight
        pre-compaction answers cannot repopulate them.  With a journal
        enabled the delta segments are folded into a fresh base
        generation.  Returns a
        :class:`~repro.core.maintenance.CompactionReport`.
        """
        report = compact_index(
            self.server.index, rng=self._owner.rng, journal=self._journal
        )
        self._flush_serving_caches()
        return report
