"""Pluggable filter-phase execution engines (Algorithm 1's k'-ANNS).

The filter phase runs k'-ANNS over the DCPE ciphertexts; after the
refine phase went vectorized it dominates the server's wall clock, and
the seed implementation is a per-query Python beam search (list-of-list
adjacency, a ``set`` for visited, one small distance call per node
expansion).  This module mirrors the :class:`~repro.core.refine.RefineEngine`
precedent so the search substrate can be swapped per request:

* :class:`HeapFilterEngine` (``"heap"``) — the oracle-faithful
  reference: every query runs the seed's per-query ``backend.search``
  loop, byte for byte.  ``SearchStats.kernel_seconds`` stays 0.0.
* :class:`VectorizedFilterEngine` (``"vectorized"``, the default) —
  per-query traffic goes to ``backend.search_vectorized`` (graph
  backends serve it from a flat CSR search mode with an epoch-stamped
  visited array — see :class:`repro.hnsw.graph._SearchMode`), and
  micro-batches go to ``backend.search_batch`` when the backend
  advertises a genuinely batched kernel (``batched_kernel`` — the
  brute-force and IVF GEMM paths, and the graph backends' lockstep
  multi-query beam search).  Results are **bit-identical** to
  the heap engine — ids, distances, ``distance_computations`` and
  ``hops`` — because the flat traversal replays the oracle's decisions
  exactly and the batched kernels verify their selections against the
  oracle's own distance kernel, falling back on any tie
  (property-tested in ``tests/strategies/test_filter_engine_properties.py``).
  Wall time inside the backend call is accumulated into
  ``SearchStats.kernel_seconds`` and surfaces as
  ``SearchResult.filter_kernel_seconds``.

Engines are looked up by name through :func:`get_filter_engine`; the
knob threads through :class:`~repro.core.roles.CloudServer`,
:class:`~repro.core.scheme.PPANNS`, ``repro.core.search.execute_batch``
and the CLI's ``--filter-engine`` flag.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.errors import ParameterError
from repro.hnsw.graph import SearchStats

__all__ = [
    "DEFAULT_FILTER_ENGINE",
    "FILTER_ENGINES",
    "FilterEngine",
    "HeapFilterEngine",
    "VectorizedFilterEngine",
    "available_filter_engines",
    "get_filter_engine",
]


@runtime_checkable
class FilterEngine(Protocol):
    """The filter-phase contract: k'-ANNS over a filter backend."""

    name: str

    def search(
        self,
        backend,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One query against ``backend``: ``(ids, dists)`` nearest-first."""
        ...

    def search_batch(
        self,
        backend,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """A micro-batch against ``backend``, one result tuple per query."""
        ...


class HeapFilterEngine:
    """The oracle-faithful reference: the seed's per-query beam search.

    Every query takes the exact code path the seed shipped —
    ``backend.search`` — so its results and stats are the ground truth
    the vectorized engine is property-tested against.
    """

    name = "heap"

    def search(
        self,
        backend,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One oracle query (``SearchStats.kernel_seconds`` stays 0)."""
        return backend.search(sap_query, k_prime, ef_search=ef_search, stats=stats)

    def search_batch(
        self,
        backend,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-query oracle loop — no batched kernels on this engine."""
        queries = np.asarray(sap_queries)
        return [
            backend.search(
                queries[row],
                k_prime,
                ef_search=ef_search,
                stats=stats_list[row] if stats_list is not None else None,
            )
            for row in range(queries.shape[0])
        ]


class VectorizedFilterEngine:
    """Flat-search-mode traversal plus batched multi-query kernels.

    Per-query traffic runs ``backend.search_vectorized`` — for graph
    backends a CSR snapshot of the adjacency (compiled lazily per graph
    generation) walked with an epoch-stamped visited array and block
    distance gathers, replaying the oracle beam's decisions exactly.
    Micro-batches go to ``backend.search_batch`` whenever the backend
    advertises ``batched_kernel``: brute-force and IVF run one GEMM /
    norm-cached GEMV per batch (verified against the oracle kernel with
    a tie-safe fallback), and the graph backends run a lockstep beam
    search that fuses each round's distance blocks across the batch
    (:func:`repro.hnsw.graph.lockstep_beam_search`).  Either way the
    results are bit-identical to :class:`HeapFilterEngine`.

    Wall time spent inside the backend call is accumulated into
    ``SearchStats.kernel_seconds`` (smeared evenly across a batched
    kernel's queries) so instrumentation can separate kernel time from
    pipeline overhead.
    """

    name = "vectorized"

    def search(
        self,
        backend,
        sap_query: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One query over the flat search mode, timed into the stats."""
        start = time.perf_counter()
        out = backend.search_vectorized(
            sap_query, k_prime, ef_search=ef_search, stats=stats
        )
        if stats is not None:
            stats.kernel_seconds += time.perf_counter() - start
        return out

    def search_batch(
        self,
        backend,
        sap_queries: np.ndarray,
        k_prime: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched kernel when the backend has one, else a vectorized loop."""
        queries = np.asarray(sap_queries)
        if getattr(backend, "batched_kernel", False):
            start = time.perf_counter()
            out = backend.search_batch(
                queries, k_prime, ef_search=ef_search, stats_list=stats_list
            )
            if stats_list is not None and queries.shape[0]:
                share = (time.perf_counter() - start) / queries.shape[0]
                for stats in stats_list:
                    if stats is not None:
                        stats.kernel_seconds += share
            return out
        return [
            self.search(
                backend,
                queries[row],
                k_prime,
                ef_search=ef_search,
                stats=stats_list[row] if stats_list is not None else None,
            )
            for row in range(queries.shape[0])
        ]


#: Registered filter engines by name.
FILTER_ENGINES: dict[str, FilterEngine] = {
    HeapFilterEngine.name: HeapFilterEngine(),
    VectorizedFilterEngine.name: VectorizedFilterEngine(),
}

#: The serving default: the flat/batched kernels (bit-identical to ``heap``).
DEFAULT_FILTER_ENGINE = VectorizedFilterEngine.name


def available_filter_engines() -> tuple[str, ...]:
    """Registered engine names, stable order (reference first)."""
    return tuple(FILTER_ENGINES)


def get_filter_engine(engine: "str | FilterEngine | None") -> FilterEngine:
    """Resolve an engine name (or pass an instance through).

    ``None`` resolves to :data:`DEFAULT_FILTER_ENGINE`.
    """
    if engine is None:
        return FILTER_ENGINES[DEFAULT_FILTER_ENGINE]
    if isinstance(engine, str):
        try:
            return FILTER_ENGINES[engine]
        except KeyError:
            raise ParameterError(
                f"unknown filter engine {engine!r}; "
                f"available: {', '.join(available_filter_engines())}"
            ) from None
    if isinstance(engine, FilterEngine):
        return engine
    raise ParameterError(
        f"filter engine must be a name or FilterEngine, got {type(engine)!r}"
    )
