"""DCPE — approximate distance-comparison-preserving encryption.

Section III-B / V-A of the paper: the privacy-preserving index is built
over vectors encrypted with the *Scale-and-Perturb* (SAP) instance of
beta-approximate distance-comparison-preserving encryption (Fuchsbauer,
Ghosal, Hauke, O'Neill, SCN 2022).  Algorithm 1 of the paper::

    u   <- N(0_d, I_d)                  # random direction
    x'  <- U(0, 1)
    x   <- (s * beta / 4) * x'^(1/d)    # radius, ball-uniform after x^(1/d)
    lam <- x * u / ||u||
    C   <- s * p + lam

The ciphertext keeps the plaintext's dimensionality, and
``dist(C_p, C_q)`` approximates ``s * dist(p, q)`` to within ``s*beta/2``
in norm, which yields the beta-DCP guarantee (Definition 3): whenever
``dist(o,q) < dist(p,q) - beta`` the encrypted comparison agrees with the
plaintext one.

The paper intentionally drops SAP's decryption tail — ciphertexts stored on
the server are never decrypted — and so do we.

The key tension reproduced in Figure 4: larger ``beta`` means more noise,
stronger privacy, lower filter-phase recall ceiling.  The paper tunes
``beta`` so the filter-only recall ceiling is ~0.5 per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.core.keys import DCPEKey

__all__ = [
    "DCPEScheme",
    "dcpe_keygen",
    "beta_upper_bound",
    "beta_lower_bound",
]

#: Scaling factor recommended by Bogatov (2022), used throughout Section VII.
DEFAULT_SCALE = 1024.0


def beta_lower_bound(max_abs_coordinate: float) -> float:
    """Paper's lower end of the valid ``beta`` range: ``sqrt(M)``."""
    if max_abs_coordinate < 0:
        raise ParameterError(f"max |coordinate| must be non-negative, got {max_abs_coordinate}")
    return float(np.sqrt(max_abs_coordinate))


def beta_upper_bound(max_abs_coordinate: float, dim: int) -> float:
    """Paper's upper end of the valid ``beta`` range: ``2 M sqrt(d)``."""
    if dim <= 0:
        raise ParameterError(f"dimension must be positive, got {dim}")
    return float(2.0 * max_abs_coordinate * np.sqrt(dim))


def dcpe_keygen(
    beta: float,
    scale: float = DEFAULT_SCALE,
    rng: np.random.Generator | None = None,
) -> DCPEKey:
    """Sample a DCPE secret key ``(s, beta)``.

    Parameters
    ----------
    beta:
        Perturbation budget; 0 disables noise (Figure 4's reference curve).
    scale:
        Scaling factor ``s``; defaults to the paper's 1024.
    rng:
        Used only to draw the key identity tag.
    """
    rng = rng if rng is not None else np.random.default_rng()
    return DCPEKey(scale=scale, beta=beta, key_id=int(rng.integers(0, 2**62)))


class DCPEScheme:
    """The Scale-and-Perturb DCPE instance (Algorithm 1).

    Both database vectors and queries are encrypted the same way, and
    encrypted distances are computed with the ordinary Euclidean metric on
    ciphertexts — at exactly the cost of a plaintext distance, which is why
    the filter phase of the PP-ANNS scheme is cheap.

    Parameters
    ----------
    dim:
        Plaintext dimensionality.
    key:
        The ``(s, beta)`` secret key.
    rng:
        Randomness for the perturbation vectors.
    """

    def __init__(
        self,
        dim: int,
        key: DCPEKey,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._key = key
        self._rng = rng if rng is not None else np.random.default_rng()

    @property
    def dim(self) -> int:
        """Plaintext (and ciphertext) dimensionality."""
        return self._dim

    @property
    def key(self) -> DCPEKey:
        """The secret key."""
        return self._key

    @property
    def noise_radius(self) -> float:
        """Radius ``s * beta / 4`` of the perturbation ball."""
        return self._key.scale * self._key.beta / 4.0

    def _perturbations(self, count: int) -> np.ndarray:
        """Draw ``count`` vectors uniformly from the ball B(0, noise_radius).

        Implements lines 1-4 of Algorithm 1 vectorized: a Gaussian direction
        normalized to the sphere, scaled by ``R * U(0,1)^(1/d)`` which makes
        the samples uniform in the ball's volume.
        """
        radius = self.noise_radius
        if radius == 0.0:
            return np.zeros((count, self._dim))
        directions = self._rng.standard_normal((count, self._dim))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        # A Gaussian draw is never exactly zero in practice, but guard the
        # division anyway.
        norms[norms == 0] = 1.0
        radii = radius * self._rng.uniform(0.0, 1.0, size=(count, 1)) ** (1.0 / self._dim)
        return directions / norms * radii

    def encrypt(self, vector: np.ndarray) -> np.ndarray:
        """``EncSAP(s, beta, p) -> C_p = s*p + lambda_p`` for one vector."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        return self._key.scale * vector + self._perturbations(1)[0]

    def encrypt_database(self, vectors: np.ndarray) -> np.ndarray:
        """Encrypt an ``(n, d)`` database in one vectorized pass."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="database")
        return self._key.scale * vectors + self._perturbations(vectors.shape[0])

    def comparison_margin(self) -> float:
        """The beta-DCP margin: encrypted comparisons are guaranteed correct
        whenever the plaintext distance gap exceeds ``beta`` (Definition 3)."""
        return self._key.beta
