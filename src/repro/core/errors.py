"""Typed exceptions raised by the PP-ANNS core.

Keeping a small exception hierarchy lets callers distinguish misuse (wrong
dimensionality, mismatched keys) from integrity problems (tampered
ciphertexts) without string-matching messages.
"""

from __future__ import annotations

__all__ = [
    "PPANNSError",
    "DimensionMismatchError",
    "KeyMismatchError",
    "CiphertextFormatError",
    "ParameterError",
]


class PPANNSError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class DimensionMismatchError(PPANNSError, ValueError):
    """A vector's dimensionality does not match the scheme's."""

    def __init__(self, expected: int, actual: int, what: str = "vector") -> None:
        super().__init__(f"{what} has dimension {actual}, expected {expected}")
        self.expected = expected
        self.actual = actual


class KeyMismatchError(PPANNSError, ValueError):
    """Ciphertexts produced under different keys were combined."""


class CiphertextFormatError(PPANNSError, ValueError):
    """A ciphertext object has the wrong shape or is otherwise malformed."""


class ParameterError(PPANNSError, ValueError):
    """An out-of-range scheme parameter (k, k', beta, ef, ...)."""
