"""The index-construction pipeline: parallel, reproducible, instrumented.

Serving got fast in three steps (batch encryption, sharded filtering,
vectorized refine) — this module does the same for **building**.  At the
million-vector scale the ROADMAP targets, build time is the binding
constraint: the seed constructed every shard backend one after another on
a single core, which defeats the point of sharding at build time.

Three pieces:

* **Parallel shard builds** — :func:`build_shard_backends` fans the
  per-shard backend constructions out over the process-wide pool of
  :mod:`repro.core.executor` (``map_ordered`` with the ``build_workers``
  cap).  Backend builds spend their time in numpy kernels (pairwise
  distances, k-means, beam-search distance blocks) that release the GIL,
  so shard builds overlap on multi-core hosts.
* **Reproducibility by construction** — each shard builds from its own
  child generator derived via ``np.random.SeedSequence.spawn``
  (:func:`spawn_shard_rngs`), never from a generator shared across
  shards.  A shard's build is then a pure function of its slice and its
  child seed, so the result is **bit-identical at any worker count** —
  parallel against sequential, for every backend kind (the brute-force
  backend is additionally bit-identical regardless of seed, having no
  randomness at all).
* **Instrumentation** — :class:`BuildReport` records the owner-side cost
  split (``encrypt_seconds`` vs ``build_seconds``) plus per-shard
  :class:`ShardBuildTiming` rows; it rides on the index object, is
  persisted with it (optional metadata keys, ``docs/FORMATS.md``), and
  surfaces through ``repro build --json`` and
  :func:`repro.eval.runner.sweep_build`.

The ``build_mode`` knob (:data:`BUILD_MODES`, from
:mod:`repro.hnsw.graph`) selects the HNSW construction path —
``sequential`` (the seed's insert loop, the oracle reference) or
``bulk`` (vectorized, bit-identical from the same seed).  Non-HNSW
backends have a single, already array-oriented build path and ignore it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.backends import build_backend
from repro.core.errors import ParameterError
from repro.core.executor import map_ordered, pool_width
from repro.hnsw.graph import BUILD_MODES

__all__ = [
    "BUILD_MODES",
    "ShardBuildTiming",
    "BuildReport",
    "resolve_build_workers",
    "spawn_shard_rngs",
    "build_shard_backends",
]


@dataclass(frozen=True)
class ShardBuildTiming:
    """Wall-clock accounting of one shard's backend construction.

    Attributes
    ----------
    shard_id:
        Position of the shard in the index's shard list.
    seconds:
        Wall clock of the shard's backend build (0.0 for empty shards,
        whose backend is built lazily on first insert).
    num_vectors:
        Vectors the shard owns.
    """

    shard_id: int
    seconds: float
    num_vectors: int


@dataclass
class BuildReport:
    """The owner-side cost split of one index build.

    ``encrypt_seconds`` (DCPE + DCE database encryption) and
    ``build_seconds`` (filter-structure construction) are kept separate
    so cost attributions in the style of the paper's Figure 9 can charge
    encryption and indexing to the right column — the seed lumped both
    into one number.  Mutable because the encryption split is filled in
    by :meth:`repro.core.roles.DataOwner.build_index` after the shard
    builder produced the construction half.

    Attributes
    ----------
    backend:
        Filter-backend kind that was built.
    num_vectors / dim:
        Shape of the indexed database.
    shards:
        Shard count (1 for a monolithic index).
    build_mode:
        HNSW construction path used (one of :data:`BUILD_MODES`).
    build_workers:
        Configured build concurrency (``None`` = the full shared pool).
    encrypt_seconds:
        Wall clock of database encryption (0.0 when the index was built
        directly from ciphertexts).
    build_seconds:
        Wall clock of filter-structure construction — for a sharded
        build, the scatter-gather total, not the per-shard sum.
    shard_timings:
        Per-shard :class:`ShardBuildTiming` rows (empty for monolithic).
    """

    backend: str
    num_vectors: int
    dim: int
    shards: int = 1
    build_mode: str = "sequential"
    build_workers: int | None = None
    encrypt_seconds: float = 0.0
    build_seconds: float = 0.0
    shard_timings: tuple[ShardBuildTiming, ...] = field(default_factory=tuple)

    @property
    def total_seconds(self) -> float:
        """End-to-end owner-side build wall clock."""
        return self.encrypt_seconds + self.build_seconds

    def as_dict(self) -> dict:
        """JSON-ready form (used by ``repro build --json``)."""
        return {
            "backend": self.backend,
            "num_vectors": self.num_vectors,
            "dim": self.dim,
            "shards": self.shards,
            "build_mode": self.build_mode,
            "build_workers": self.build_workers,
            "encrypt_seconds": self.encrypt_seconds,
            "build_seconds": self.build_seconds,
            "total_seconds": self.total_seconds,
            "shard_timings": [
                {
                    "shard_id": timing.shard_id,
                    "seconds": timing.seconds,
                    "num_vectors": timing.num_vectors,
                }
                for timing in self.shard_timings
            ],
        }


def resolve_build_workers(build_workers: int | None) -> int:
    """Concrete build concurrency: ``None`` means the full shared pool."""
    if build_workers is None:
        return pool_width()
    if build_workers < 1:
        raise ParameterError(f"build_workers must be >= 1, got {build_workers}")
    return build_workers


def spawn_shard_rngs(
    rng: np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent child generators via ``SeedSequence.spawn``.

    The children are a deterministic function of the parent's seed
    sequence and its spawn counter: the same freshly seeded parent
    always yields the same children (so builds are reproducible), while
    successive calls on one parent yield fresh, non-overlapping streams
    (so two builds from one owner differ, as they did when shards
    consumed the shared generator sequentially).  The parent's own
    random stream is never advanced.
    """
    if count < 0:
        raise ParameterError(f"count must be >= 0, got {count}")
    if rng is None:
        rng = np.random.default_rng()
    try:
        return list(rng.spawn(count))
    except AttributeError:  # numpy < 1.25: spawn via the seed sequence
        seed_seq = rng.bit_generator.seed_seq
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def build_shard_backends(
    kind: str,
    sap_vectors: np.ndarray,
    owned: "list[np.ndarray]",
    rng: np.random.Generator | None = None,
    params=None,
    build_workers: int | None = None,
    build_mode: str = "sequential",
):
    """Build one filter backend per shard, in parallel, reproducibly.

    Parameters
    ----------
    kind:
        Filter-backend kind to build inside every shard.
    sap_vectors:
        The global ``(n, d)`` DCPE ciphertext matrix.
    owned:
        One int64 id array per shard: the global ids it owns, in local
        id order.  Empty arrays produce ``None`` backends (built lazily
        on first insert, as before).
    rng:
        Parent randomness; every shard receives its own child generator
        (:func:`spawn_shard_rngs`), so the output is bit-identical at
        any ``build_workers`` setting.
    params:
        Backend construction parameters, shared by every shard.
    build_workers:
        Concurrency cap for the fan-out (``None`` = full shared pool,
        ``1`` = sequential on the calling thread).
    build_mode:
        HNSW construction path (one of :data:`BUILD_MODES`).

    Returns ``(backends, timings)``: the per-shard backend list (``None``
    entries for empty shards) and a tuple of :class:`ShardBuildTiming`.
    """
    if build_mode not in BUILD_MODES:
        raise ParameterError(
            f"unknown build mode {build_mode!r}; available: {', '.join(BUILD_MODES)}"
        )
    resolve_build_workers(build_workers)  # validate; see below
    child_rngs = spawn_shard_rngs(rng, len(owned))

    def build_one(task):
        shard_id, ids, child = task
        if not ids.size:
            # Empty shards build lazily on first insert — no work here.
            return None, ShardBuildTiming(shard_id, 0.0, 0)
        start = time.perf_counter()
        backend = build_backend(
            kind,
            sap_vectors[ids],
            rng=child,
            params=params,
            build_mode=build_mode,
        )
        timing = ShardBuildTiming(
            shard_id=shard_id,
            seconds=time.perf_counter() - start,
            num_vectors=int(ids.size),
        )
        return backend, timing

    # None passes through uncapped: map_ordered then submits everything
    # in one wave and the pool schedules greedily — resolving None to
    # pool_width() here would impose wave barriers the full-pool path
    # doesn't need (one slow shard would idle the rest of its wave).
    outcomes = map_ordered(
        build_one,
        [(i, ids, child_rngs[i]) for i, ids in enumerate(owned)],
        max_workers=build_workers,
    )
    backends = [backend for backend, _ in outcomes]
    timings = tuple(timing for _, timing in outcomes)
    return backends, timings
