"""Parameter selection procedures from Section VII-A.

Two knobs dominate the accuracy/efficiency/privacy trade-off:

* ``beta`` (DCPE noise).  The paper's rule: choose the largest ``beta``
  such that the *filter-only* recall ceiling stays around 0.5 — then "the
  attacker's probability of guessing the true neighbor correctly is only
  50%" — giving the strongest privacy that refinement can still repair.
  :func:`tune_beta` implements that rule by bisection over candidate
  betas, measuring filter-only recall with a wide beam.

* ``k'`` (filter candidate count, expressed as ``ratio_k = k'/k``).  The
  paper uses grid search; :func:`grid_search_ratio_k` measures the
  recall/throughput frontier over a ratio grid and returns the smallest
  ratio reaching a recall target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ParameterError
from repro.core.scheme import PPANNS
from repro.eval.metrics import recall_at_k
from repro.hnsw.bruteforce import exact_knn
from repro.hnsw.graph import HNSWParams

__all__ = [
    "BetaTuningResult",
    "RatioKResult",
    "measure_filter_recall_ceiling",
    "tune_beta",
    "grid_search_ratio_k",
]


@dataclass(frozen=True)
class BetaTuningResult:
    """Outcome of :func:`tune_beta`.

    Attributes
    ----------
    beta:
        The chosen perturbation budget.
    recall_ceiling:
        Measured filter-only recall at that beta.
    trace:
        Every ``(beta, recall)`` pair evaluated along the way.
    """

    beta: float
    recall_ceiling: float
    trace: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class RatioKResult:
    """Outcome of :func:`grid_search_ratio_k`.

    Attributes
    ----------
    ratio_k:
        The smallest grid ratio whose recall met the target (or the best
        available if none did).
    recall:
        The measured recall at that ratio.
    frontier:
        ``(ratio, recall, mean_query_seconds)`` for every grid point.
    """

    ratio_k: int
    recall: float
    frontier: tuple[tuple[int, float, float], ...]


def measure_filter_recall_ceiling(
    database: np.ndarray,
    queries: np.ndarray,
    beta: float,
    k: int = 10,
    scale: float = 1024.0,
    hnsw_params: HNSWParams | None = None,
    ef_search: int | None = None,
    rng: np.random.Generator | None = None,
) -> float:
    """Filter-only Recall@k at a given beta (one point on Figure 4).

    Builds a fresh scheme at ``beta``, runs every query through the filter
    phase only with a generous beam, and averages Recall@k against exact
    plaintext neighbors.
    """
    rng = rng if rng is not None else np.random.default_rng()
    scheme = PPANNS(
        database.shape[1], beta=beta, scale=scale, hnsw_params=hnsw_params, rng=rng
    ).fit(database)
    ef = ef_search if ef_search is not None else max(4 * k, 100)
    recalls = []
    for query in queries:
        truth, _ = exact_knn(database, query, k)
        report = scheme.query_filter_only(query, k, ef_search=ef)
        recalls.append(recall_at_k(report.ids, truth, k))
    return float(np.mean(recalls))


def tune_beta(
    database: np.ndarray,
    queries: np.ndarray,
    target_ceiling: float = 0.5,
    k: int = 10,
    num_steps: int = 6,
    scale: float = 1024.0,
    hnsw_params: HNSWParams | None = None,
    rng: np.random.Generator | None = None,
) -> BetaTuningResult:
    """Pick beta so the filter-only recall ceiling is ~``target_ceiling``.

    Bisects over ``[0, beta_max]`` where ``beta_max = 2 M sqrt(d)`` (the
    paper's upper bound for valid betas), evaluating the measured ceiling
    at each midpoint.  Recall decreases monotonically in beta (more noise,
    worse candidates), so bisection converges.

    Parameters
    ----------
    database, queries:
        Plaintext workload used for measurement.
    target_ceiling:
        Desired filter-only recall (paper: 0.5).
    k:
        Neighbors per query during measurement.
    num_steps:
        Bisection iterations; each builds one index, so keep modest.
    """
    if not 0.0 < target_ceiling <= 1.0:
        raise ParameterError(
            f"target_ceiling must be in (0, 1], got {target_ceiling}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    max_abs = float(np.max(np.abs(database)))
    high = 2.0 * max_abs * float(np.sqrt(database.shape[1]))
    low = 0.0
    trace: list[tuple[float, float]] = []
    best_beta = 0.0
    best_recall = 1.0
    for _ in range(num_steps):
        mid = (low + high) / 2.0
        recall = measure_filter_recall_ceiling(
            database,
            queries,
            beta=mid,
            k=k,
            scale=scale,
            hnsw_params=hnsw_params,
            rng=rng,
        )
        trace.append((mid, recall))
        if recall >= target_ceiling:
            # Can afford more noise: remember this beta, push higher.
            best_beta, best_recall = mid, recall
            low = mid
        else:
            high = mid
    return BetaTuningResult(
        beta=best_beta, recall_ceiling=best_recall, trace=tuple(trace)
    )


def grid_search_ratio_k(
    scheme: PPANNS,
    database: np.ndarray,
    queries: np.ndarray,
    k: int = 10,
    recall_target: float = 0.9,
    ratio_grid: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    ef_search: int | None = None,
) -> RatioKResult:
    """Grid-search ``ratio_k`` for the smallest ratio hitting a recall target.

    Parameters
    ----------
    scheme:
        A fitted :class:`PPANNS` instance.
    database, queries:
        Plaintext workload (database only used for ground truth).
    recall_target:
        Required mean Recall@k.
    ratio_grid:
        Candidate ``k'/k`` ratios, ascending (the paper sweeps 1..128).
    """
    if not scheme.is_fitted:
        raise ParameterError("scheme must be fitted before grid search")
    frontier: list[tuple[int, float, float]] = []
    chosen: tuple[int, float] | None = None
    for ratio in ratio_grid:
        recalls = []
        seconds = []
        for query in queries:
            truth, _ = exact_knn(database, query, k)
            report = scheme.query_with_report(
                query, k, ratio_k=ratio, ef_search=ef_search
            )
            recalls.append(recall_at_k(report.ids, truth, k))
            seconds.append(report.total_seconds)
        mean_recall = float(np.mean(recalls))
        frontier.append((ratio, mean_recall, float(np.mean(seconds))))
        if chosen is None and mean_recall >= recall_target:
            chosen = (ratio, mean_recall)
    if chosen is None:
        # None reached the target; fall back to the most accurate ratio.
        best = max(frontier, key=lambda item: item[1])
        chosen = (best[0], best[1])
    return RatioKResult(
        ratio_k=chosen[0], recall=chosen[1], frontier=tuple(frontier)
    )
