"""Shared-memory ciphertext arena for the multi-process data plane.

The process executor (:mod:`repro.core.plane`) must hand each worker
process the server-side ciphertext matrices — the ``C_SAP`` slices the
filter backends walk and the ``C_DCE`` block the refine engines compare
on — without copying them through a pipe per batch.  This module is the
transport: the parent packs the arrays into **one**
:class:`multiprocessing.shared_memory.SharedMemory` segment (the
*arena*) and ships only tiny :class:`ShmArrayRef` descriptors — segment
name, dtype, shape, byte offset — which pickle in a few dozen bytes and
reconstruct worker-side as zero-copy numpy views over the attached
segment.

Layout: arrays are packed back to back at 64-byte-aligned offsets
(cache-line alignment keeps worker-side views on friendly boundaries)::

    arena "repro-arena-<pid>-<seq>"
    ┌─────────────┬──────┬─────────────┬──────┬───────────────┐
    │ C_SAP shard0│ pad  │ C_SAP shard1│ pad  │ C_DCE (n,4,w) │
    └─────────────┴──────┴─────────────┴──────┴───────────────┘
      ref[0]               ref[1]               ref[2]

Views are handed out **read-only** on both sides: the arena holds the
data plane's immutable snapshot of the ciphertexts, and an accidental
in-place write by a worker would silently corrupt every sibling's
answers — a readonly view turns that bug into an immediate
``ValueError``.

Lifecycle: the creating process owns the segment and must
:meth:`ShmArena.unlink` it; every owner arena is tracked in a module
registry with an ``atexit`` backstop, so even an abandoned plane cannot
leak a segment past interpreter exit.  :func:`active_arenas` exposes
the registry so the test suite can assert leak-freedom after close,
including on error paths.  Workers only ever :meth:`ShmArena.attach`
and :meth:`ShmArena.close` — unlinking is the owner's job.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ParameterError

__all__ = [
    "ShmArrayRef",
    "ShmArena",
    "active_arenas",
    "shared_memory_available",
]

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None

#: Pack offsets to cache-line boundaries.
_ALIGN = 64

_registry_lock = threading.Lock()
#: Owner-side arenas that have not been unlinked yet, by segment name.
_owned: "dict[str, ShmArena]" = {}
_sequence = itertools.count()
_atexit_registered = False


def shared_memory_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform.

    The data plane degrades to thread execution when it doesn't
    (:func:`repro.core.plane.process_plane_available` folds this into
    its overall gate).
    """
    return _shared_memory is not None


def _cleanup_registry() -> None:
    """``atexit`` backstop: unlink every still-owned arena."""
    with _registry_lock:
        leaked = list(_owned.values())
    for arena in leaked:
        arena.close()
        arena.unlink()


def active_arenas() -> tuple[str, ...]:
    """Names of owner-side arenas not yet unlinked (leak-test hook)."""
    with _registry_lock:
        return tuple(_owned)


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable descriptor of one array inside a shared arena.

    Attributes
    ----------
    segment:
        Name of the :class:`~multiprocessing.shared_memory.SharedMemory`
        segment holding the bytes.
    dtype:
        Numpy dtype string (``"float64"``, ...).
    shape:
        Array shape.
    offset:
        Byte offset of the array's first element inside the segment.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        """Size of the referenced array in bytes."""
        count = 1
        for extent in self.shape:
            count *= int(extent)
        return count * np.dtype(self.dtype).itemsize

    def resolve(self, buf) -> np.ndarray:
        """A read-only numpy view of the referenced bytes in ``buf``."""
        view = np.ndarray(
            self.shape, dtype=np.dtype(self.dtype), buffer=buf, offset=self.offset
        )
        view.flags.writeable = False
        return view


def _aligned(offset: int) -> int:
    """Round ``offset`` up to the next :data:`_ALIGN` boundary."""
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmArena:
    """One shared-memory segment packing a set of ciphertext arrays.

    Create via :meth:`publish` (owner side) or :meth:`attach` (worker
    side); never via the constructor directly.  ``close`` releases this
    process's mapping, ``unlink`` destroys the segment (owner only).
    Both are idempotent — double-close and double-unlink are explicit
    no-ops, because teardown runs from ``finally`` blocks, context
    managers, *and* the ``atexit`` backstop, in any order.
    """

    def __init__(self, shm, refs: tuple[ShmArrayRef, ...], owner: bool) -> None:
        self._shm = shm
        self._refs = refs
        self._owner = owner
        self._closed = False
        self._unlinked = False

    # -- construction ------------------------------------------------------------

    @classmethod
    def publish(cls, arrays: Sequence[np.ndarray]) -> "ShmArena":
        """Pack ``arrays`` into a fresh owned segment; copies them once.

        The returned arena's :attr:`refs` align with ``arrays`` by
        position.  This is the only copy the data plane ever makes of
        the ciphertexts — workers attach the same physical pages.
        """
        if not shared_memory_available():  # pragma: no cover - platform gate
            raise ParameterError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        arrays = [np.ascontiguousarray(array) for array in arrays]
        total = 0
        offsets = []
        for array in arrays:
            offset = _aligned(total)
            offsets.append(offset)
            total = offset + array.nbytes
        name = f"repro-arena-{os.getpid()}-{next(_sequence)}"
        shm = _shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
        refs = []
        for array, offset in zip(arrays, offsets):
            target = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf, offset=offset
            )
            target[...] = array
            refs.append(
                ShmArrayRef(
                    segment=shm.name,
                    dtype=array.dtype.name,
                    shape=tuple(int(extent) for extent in array.shape),
                    offset=offset,
                )
            )
        arena = cls(shm, tuple(refs), owner=True)
        global _atexit_registered
        with _registry_lock:
            _owned[shm.name] = arena
            if not _atexit_registered:
                atexit.register(_cleanup_registry)
                _atexit_registered = True
        return arena

    @classmethod
    def attach(cls, name: str) -> "ShmArena":
        """Map an existing segment into this process (worker side)."""
        if not shared_memory_available():  # pragma: no cover - platform gate
            raise ParameterError(
                "multiprocessing.shared_memory is unavailable on this platform"
            )
        try:
            shm = _shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            # Python < 3.13 has no track= and registers the attach with
            # the resource tracker (bpo-39959).  Our attachers are always
            # spawn children sharing the owner's tracker process, where
            # that register is a set no-op — the owner's unlink performs
            # the single matching unregister, so nothing to undo here.
            shm = _shared_memory.SharedMemory(name=name)
        return cls(shm, (), owner=False)

    # -- accessors ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The segment name workers attach by."""
        return self._shm.name

    @property
    def refs(self) -> tuple[ShmArrayRef, ...]:
        """Descriptors of the published arrays, in publish order."""
        return self._refs

    @property
    def owner(self) -> bool:
        """Whether this process created (and must unlink) the segment."""
        return self._owner

    @property
    def closed(self) -> bool:
        """Whether this process's mapping has been released."""
        return self._closed

    def resolve(self, ref: ShmArrayRef) -> np.ndarray:
        """A read-only view of ``ref`` over this arena's mapping."""
        if self._closed:
            raise ParameterError(f"arena {self.name!r} is closed")
        if ref.segment != self.name:
            raise ParameterError(
                f"ref names segment {ref.segment!r}, arena is {self.name!r}"
            )
        return ref.resolve(self._shm.buf)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side; idempotent)."""
        if self._unlinked or not self._owner:
            return
        self._unlinked = True
        with _registry_lock:
            _owned.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        self.unlink()
